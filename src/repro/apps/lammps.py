"""LAMMPS molecular-dynamics workflow models (paper §4.2, §4.5).

The resilience experiment couples the MD simulation with three tightly
coupled, co-located analyses — radial distribution function, common
neighbor analysis, and central symmetry.  Table 3 pairs 1000 simulation
steps with 100 analysis steps, i.e. the simulation publishes every 10th
step.  The simulation checkpoints periodically; after the injected node
failure DYFLOW restarts everything excluding the failed node, and the
simulation "resumes from the last checkpoint (i.e., timestep 412)".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import IterativeApp
from repro.apps.scaling import AmdahlModel, ConstantModel

# Summit-reference step time calibrated so the §4.5 failure at 10 minutes
# lands just past simulation step 414, making checkpoint 412 the restart
# point (checkpoints every 4 steps).
LAMMPS_STEP_TIME = 1.4475
LAMMPS_CHECKPOINT_EVERY = 4
LAMMPS_PUBLISH_EVERY = 10

ANALYSIS_TASKS = ("CS_Calc", "CNA_Calc", "RDF_Calc")

# §4.5 priorities, high to low: Simulation, CS_Calc, CNA_Calc, RDF_Calc.
TASK_PRIORITIES = {
    "LAMMPS": 0,
    "CS_Calc": 1,
    "CNA_Calc": 2,
    "RDF_Calc": 3,
}


@dataclass(frozen=True)
class LammpsConfig:
    """Initial configuration (Table 3 defaults are per machine)."""

    machine: str = "summit"
    sim_procs: int = 1500
    sim_procs_per_node: int = 30
    analysis_procs: int = 200
    analysis_procs_per_node: int = 4
    total_atoms: int = 65_536_000
    total_steps: int = 1000
    analysis_steps: int = 100
    noise_cv: float = 0.0  # deterministic pacing keeps the checkpoint story exact

    @classmethod
    def summit(cls) -> "LammpsConfig":
        return cls()

    @classmethod
    def deepthought2(cls) -> "LammpsConfig":
        # Table 3 lists 14 sim procs/node, but 14 + 3×2 analysis procs
        # exceeds a 20-core Deepthought2 node; we use 10/node so the four
        # tasks co-locate on every node (10+2+2+2 = 16 ≤ 20), preserving
        # the §4.5 property that one node failure kills the whole
        # workflow (see EXPERIMENTS.md).
        return cls(
            machine="deepthought2",
            sim_procs=100,
            sim_procs_per_node=10,
            analysis_procs=20,
            analysis_procs_per_node=2,
            total_atoms=8_192_000,
            total_steps=1000,
            analysis_steps=50,
        )

    @property
    def publish_every(self) -> int:
        """Simulation steps per staged analysis frame (Table 3: 1000/100)."""
        return max(1, self.total_steps // max(1, self.analysis_steps))


def make_lammps_app(config: LammpsConfig) -> IterativeApp:
    """The MD simulation: checkpoints, publishes every 10th step."""
    # Reference time scaled so the *actual* pace is machine-independent in
    # shape; Deepthought2's smaller atom count offsets its slower cores.
    speed = 1.0 if config.machine == "summit" else 0.55
    return IterativeApp(
        step_model=ConstantModel(LAMMPS_STEP_TIME * speed),
        total_steps=config.total_steps,
        publish_every=config.publish_every,
        checkpoint_every=LAMMPS_CHECKPOINT_EVERY,
        resume_from_checkpoint=True,
        output_every=0,
        noise_cv=config.noise_cv,
    )


# Analysis cost models (Summit-reference seconds per analysis step; one
# analysis step digests 10 simulation steps' staged data).
_ANALYSIS_MODELS = {
    "RDF_Calc": AmdahlModel(serial=1.0, parallel=800.0),   # 5 s at 200 procs
    "CNA_Calc": AmdahlModel(serial=2.0, parallel=1600.0),  # 10 s at 200 procs
    "CS_Calc": AmdahlModel(serial=1.0, parallel=1200.0),   # 7 s at 200 procs
}


def make_md_analysis_app(task: str, config: LammpsConfig) -> IterativeApp:
    """One of the three coupled analyses; consumes staged MD frames."""
    if task not in ANALYSIS_TASKS:
        raise ValueError(f"unknown LAMMPS analysis {task!r}")
    speed = 1.0 if config.machine == "summit" else 0.55
    model = _ANALYSIS_MODELS[task]
    return IterativeApp(
        step_model=AmdahlModel(serial=model.serial * speed, parallel=model.parallel * speed),
        total_steps=None,
        noise_cv=config.noise_cv,
    )
