"""Real numerical kernels behind the workflow models.

These are genuine (small-scale) implementations of the science codes the
paper's workflows run: a Gray-Scott reaction–diffusion solver, its four
analyses, a Lennard-Jones molecular-dynamics mini-simulator, and the
three MD analyses.  The live examples execute them for real under DYFLOW
orchestration; the discrete-event models in the sibling modules use
step-time calibrations consistent with their scaling behaviour.
"""

from repro.apps.kernels.gray_scott import GrayScottSolver
from repro.apps.kernels.analysis import (
    fft_power_spectrum,
    isosurface_cell_count,
    pdf_norms,
    render_projection,
)
from repro.apps.kernels.lj_md import LjMdSimulator
from repro.apps.kernels.md_analysis import (
    centro_symmetry,
    common_neighbor_counts,
    radial_distribution,
)

__all__ = [
    "GrayScottSolver",
    "fft_power_spectrum",
    "pdf_norms",
    "isosurface_cell_count",
    "render_projection",
    "LjMdSimulator",
    "radial_distribution",
    "common_neighbor_counts",
    "centro_symmetry",
]
