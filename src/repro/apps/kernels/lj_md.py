"""Lennard-Jones molecular-dynamics mini-simulator (the LAMMPS stand-in).

NVE velocity-Verlet dynamics of an LJ fluid/solid in a periodic cubic
box, with neighbor search via :class:`scipy.spatial.cKDTree` (rebuilt
each force call — adequate at example scale).  Reduced units throughout
(σ = ε = m = 1).  Supports checkpoint/restore, which the §4.5 resilience
experiment exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.util.validation import check_positive


@dataclass
class MdState:
    """Checkpointable simulator state."""

    positions: np.ndarray
    velocities: np.ndarray
    step: int
    box: float


class LjMdSimulator:
    """A small NVE Lennard-Jones simulator."""

    def __init__(
        self,
        n_per_side: int = 5,
        density: float = 0.8,
        temperature: float = 1.0,
        dt: float = 0.005,
        cutoff: float = 2.5,
        seed: int = 0,
    ) -> None:
        check_positive(n_per_side, "n_per_side")
        check_positive(density, "density")
        check_positive(dt, "dt")
        self.n_atoms = n_per_side**3
        self.box = (self.n_atoms / density) ** (1.0 / 3.0)
        self.dt = float(dt)
        self.cutoff = float(cutoff)
        self.step_count = 0
        rng = np.random.default_rng(seed)
        # Simple-cubic lattice scaled into the box.
        grid = np.linspace(0, self.box, n_per_side, endpoint=False)
        self.positions = np.array(
            [(x, y, z) for x in grid for y in grid for z in grid], dtype=float
        )
        self.velocities = rng.normal(0.0, np.sqrt(temperature), (self.n_atoms, 3))
        self.velocities -= self.velocities.mean(axis=0)  # zero net momentum
        self._forces = self._compute_forces(self.positions)

    # -- physics ----------------------------------------------------------------
    def _minimum_image(self, dr: np.ndarray) -> np.ndarray:
        return dr - self.box * np.round(dr / self.box)

    def _compute_forces(self, pos: np.ndarray) -> np.ndarray:
        wrapped = pos % self.box
        tree = cKDTree(wrapped, boxsize=self.box)
        pairs = tree.query_pairs(self.cutoff, output_type="ndarray")
        forces = np.zeros_like(pos)
        if len(pairs) == 0:
            return forces
        i, j = pairs[:, 0], pairs[:, 1]
        dr = self._minimum_image(wrapped[i] - wrapped[j])
        r2 = (dr**2).sum(axis=1)
        inv_r2 = 1.0 / r2
        inv_r6 = inv_r2**3
        # F = 24ε (2 (σ/r)^12 − (σ/r)^6) / r² · dr
        fmag = 24.0 * (2.0 * inv_r6**2 - inv_r6) * inv_r2
        fvec = fmag[:, None] * dr
        np.add.at(forces, i, fvec)
        np.add.at(forces, j, -fvec)
        return forces

    def potential_energy(self) -> float:
        wrapped = self.positions % self.box
        tree = cKDTree(wrapped, boxsize=self.box)
        pairs = tree.query_pairs(self.cutoff, output_type="ndarray")
        if len(pairs) == 0:
            return 0.0
        dr = self._minimum_image(wrapped[pairs[:, 0]] - wrapped[pairs[:, 1]])
        r2 = (dr**2).sum(axis=1)
        inv_r6 = (1.0 / r2) ** 3
        return float((4.0 * (inv_r6**2 - inv_r6)).sum())

    def kinetic_energy(self) -> float:
        return float(0.5 * (self.velocities**2).sum())

    def total_energy(self) -> float:
        return self.kinetic_energy() + self.potential_energy()

    def temperature(self) -> float:
        return 2.0 * self.kinetic_energy() / (3.0 * self.n_atoms)

    # -- integration -------------------------------------------------------------
    def step(self, nsteps: int = 1) -> int:
        """Velocity-Verlet integration for *nsteps*; returns the new count."""
        check_positive(nsteps, "nsteps")
        dt = self.dt
        for _ in range(int(nsteps)):
            self.velocities += 0.5 * dt * self._forces
            self.positions += dt * self.velocities
            new_forces = self._compute_forces(self.positions)
            self.velocities += 0.5 * dt * new_forces
            self._forces = new_forces
            self.step_count += 1
        return self.step_count

    # -- checkpointing ------------------------------------------------------------
    def checkpoint(self) -> MdState:
        return MdState(
            positions=self.positions.copy(),
            velocities=self.velocities.copy(),
            step=self.step_count,
            box=self.box,
        )

    def restore(self, state: MdState) -> None:
        if state.positions.shape != self.positions.shape:
            raise ValueError("checkpoint shape mismatch")
        self.positions = state.positions.copy()
        self.velocities = state.velocities.copy()
        self.step_count = state.step
        self.box = state.box
        self._forces = self._compute_forces(self.positions)

    def wrapped_positions(self) -> np.ndarray:
        return self.positions % self.box
