"""Gray-Scott reaction–diffusion solver.

The model couples two chemical species U and V:

    du/dt = Du ∇²u − u v² + F (1 − u)
    dv/dt = Dv ∇²v + u v² − (F + k) v

integrated with forward Euler on a periodic grid.  Parameter pairs
(F, k) select the classic pattern families (spots, stripes, mitosis)
the paper's workflow analyses study.  Fully vectorized: the Laplacian is
a sum of `np.roll` views, so no Python-level loops run per step.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive

# Named parameter sets producing well-known pattern regimes.
PRESETS: dict[str, tuple[float, float]] = {
    "spots": (0.035, 0.065),
    "stripes": (0.035, 0.060),
    "mitosis": (0.028, 0.062),
    "worms": (0.058, 0.065),
}


class GrayScottSolver:
    """Periodic 2D/3D Gray-Scott integrator."""

    def __init__(
        self,
        shape: tuple[int, ...] = (64, 64),
        du: float = 0.16,
        dv: float = 0.08,
        feed: float = 0.035,
        kill: float = 0.065,
        dt: float = 1.0,
        seed: int = 0,
    ) -> None:
        if len(shape) not in (2, 3):
            raise ValueError(f"shape must be 2D or 3D, got {shape}")
        for n in shape:
            check_positive(n, "grid extent")
        check_positive(dt, "dt")
        self.shape = tuple(int(n) for n in shape)
        self.du, self.dv = float(du), float(dv)
        self.feed, self.kill = float(feed), float(kill)
        self.dt = float(dt)
        self.step_count = 0
        rng = np.random.default_rng(seed)
        self.u = np.ones(self.shape)
        self.v = np.zeros(self.shape)
        self._seed_square(rng)

    @classmethod
    def preset(cls, name: str, shape: tuple[int, ...] = (64, 64), seed: int = 0) -> "GrayScottSolver":
        """Build a solver from a named (F, k) pattern regime."""
        if name not in PRESETS:
            raise ValueError(f"unknown preset {name!r}; known: {sorted(PRESETS)}")
        feed, kill = PRESETS[name]
        return cls(shape=shape, feed=feed, kill=kill, seed=seed)

    def _seed_square(self, rng: np.random.Generator) -> None:
        """Perturb a central block so patterns nucleate."""
        slices = tuple(slice(n // 2 - max(1, n // 8), n // 2 + max(1, n // 8)) for n in self.shape)
        self.u[slices] = 0.50
        self.v[slices] = 0.25
        self.u += 0.02 * rng.random(self.shape)
        self.v += 0.02 * rng.random(self.shape)

    @staticmethod
    def _laplacian(field: np.ndarray) -> np.ndarray:
        """Nearest-neighbour periodic Laplacian (sum of rolled views)."""
        out = -2.0 * field.ndim * field
        for axis in range(field.ndim):
            out += np.roll(field, 1, axis=axis)
            out += np.roll(field, -1, axis=axis)
        return out

    def step(self, nsteps: int = 1) -> int:
        """Advance *nsteps* Euler steps; returns the new step count."""
        check_positive(nsteps, "nsteps")
        u, v = self.u, self.v
        for _ in range(int(nsteps)):
            uvv = u * v * v
            u += self.dt * (self.du * self._laplacian(u) - uvv + self.feed * (1.0 - u))
            v += self.dt * (self.dv * self._laplacian(v) + uvv - (self.feed + self.kill) * v)
            self.step_count += 1
        np.clip(u, 0.0, 1.5, out=u)
        np.clip(v, 0.0, 1.5, out=v)
        return self.step_count

    def snapshot(self) -> dict[str, np.ndarray]:
        """Copies of both fields, for analyses / staging."""
        return {"u": self.u.copy(), "v": self.v.copy()}

    def total_mass(self) -> tuple[float, float]:
        """Conserved-ish diagnostics (bounded by the clip limits)."""
        return float(self.u.sum()), float(self.v.sum())
