"""MD analysis kernels: RDF, common-neighbor counts, centro-symmetry.

These are the three analyses the LAMMPS workflow couples in situ
(§4.2): ``RDF_Calc`` (radial distribution function), ``CNA_Calc``
(common neighbor analysis) and ``CS_Calc`` (central symmetry), used
together to study "solids as they break and melt under stress".
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree


def _pair_distances(positions: np.ndarray, box: float, rmax: float) -> np.ndarray:
    wrapped = positions % box
    tree = cKDTree(wrapped, boxsize=box)
    pairs = tree.query_pairs(rmax, output_type="ndarray")
    if len(pairs) == 0:
        return np.empty(0)
    dr = wrapped[pairs[:, 0]] - wrapped[pairs[:, 1]]
    dr -= box * np.round(dr / box)
    return np.sqrt((dr**2).sum(axis=1))


def radial_distribution(
    positions: np.ndarray, box: float, rmax: float | None = None, nbins: int = 64
) -> dict[str, np.ndarray]:
    """g(r) of a periodic configuration.

    Normalized against the ideal-gas shell counts so a random gas gives
    g(r) ≈ 1 and a crystal shows sharp coordination peaks.
    """
    n = len(positions)
    if n < 2:
        raise ValueError("need at least two atoms")
    rmax = rmax if rmax is not None else box / 2.0
    dists = _pair_distances(positions, box, rmax)
    hist, edges = np.histogram(dists, bins=nbins, range=(0.0, rmax))
    r_lo, r_hi = edges[:-1], edges[1:]
    shell_volumes = 4.0 / 3.0 * np.pi * (r_hi**3 - r_lo**3)
    density = n / box**3
    ideal_counts = 0.5 * n * density * shell_volumes  # pair counts, not per-atom
    g = np.divide(hist, ideal_counts, out=np.zeros(nbins), where=ideal_counts > 0)
    return {"r": 0.5 * (r_lo + r_hi), "g": g}


def common_neighbor_counts(
    positions: np.ndarray, box: float, cutoff: float = 1.5
) -> np.ndarray:
    """Per-bond common-neighbor counts (the core CNA signature).

    For each bonded pair, counts neighbors shared by both atoms.  FCC
    nearest-neighbor bonds have 4 common neighbors, HCP a 4/3 mix, BCC
    differs again — the histogram of these counts is what classifies
    local structure in full CNA.
    """
    wrapped = positions % box
    tree = cKDTree(wrapped, boxsize=box)
    neighbor_lists = tree.query_ball_point(wrapped, cutoff)
    neighbor_sets = [set(lst) - {i} for i, lst in enumerate(neighbor_lists)]
    pairs = tree.query_pairs(cutoff, output_type="ndarray")
    if len(pairs) == 0:
        return np.empty(0, dtype=int)
    return np.array(
        [len(neighbor_sets[i] & neighbor_sets[j]) for i, j in pairs], dtype=int
    )


def centro_symmetry(
    positions: np.ndarray, box: float, n_neighbors: int = 12
) -> np.ndarray:
    """Centro-symmetry parameter per atom (Kelchner et al. form).

    CSP = Σ over N/2 opposite-neighbor pairs of |r_i + r_j|², pairing
    greedily by most-opposite bond vectors.  Near zero in a perfect
    centrosymmetric lattice (FCC/BCC); large at defects, surfaces, and in
    the melt — the "solids as they break and melt" signal.
    """
    n = len(positions)
    if n <= n_neighbors:
        raise ValueError(f"need more than {n_neighbors} atoms")
    wrapped = positions % box
    tree = cKDTree(wrapped, boxsize=box)
    _dists, idx = tree.query(wrapped, k=n_neighbors + 1)
    csp = np.zeros(n)
    for a in range(n):
        neighbors = idx[a, 1:]
        vecs = wrapped[neighbors] - wrapped[a]
        vecs -= box * np.round(vecs / box)
        remaining = list(range(n_neighbors))
        total = 0.0
        while len(remaining) >= 2:
            i = remaining[0]
            # Most-opposite partner: minimal |v_i + v_j|².
            sums = ((vecs[i] + vecs[remaining[1:]]) ** 2).sum(axis=1)
            j_rel = int(np.argmin(sums))
            total += float(sums[j_rel])
            j = remaining[1 + j_rel]
            remaining.remove(i)
            remaining.remove(j)
        csp[a] = total
    return csp
