"""Gray-Scott analysis kernels: FFT, PDF, isosurface, rendering (§4.2).

The paper's analyses in decreasing cost: a 3D FFT of the output arrays
(most computationally intensive), isosurface extraction and rendering
(data-dependent cost), and PDF/norm computation (inexpensive).
"""

from __future__ import annotations

import numpy as np


def fft_power_spectrum(field: np.ndarray, nbins: int = 32) -> dict[str, np.ndarray]:
    """Radially binned power spectrum of an n-D field.

    Returns ``k`` (bin centers, cycles per grid length) and ``power``
    (mean squared FFT magnitude per bin) — the *FFT* analysis task.
    """
    if field.ndim < 1:
        raise ValueError("field must be at least 1-D")
    spectrum = np.abs(np.fft.fftn(field)) ** 2
    freqs = np.meshgrid(*(np.fft.fftfreq(n) for n in field.shape), indexing="ij")
    kmag = np.sqrt(sum(f**2 for f in freqs))
    kmax = float(kmag.max()) or 1.0
    edges = np.linspace(0.0, kmax, nbins + 1)
    which = np.clip(np.digitize(kmag.ravel(), edges) - 1, 0, nbins - 1)
    power = np.bincount(which, weights=spectrum.ravel(), minlength=nbins)
    counts = np.bincount(which, minlength=nbins).clip(min=1)
    return {"k": 0.5 * (edges[:-1] + edges[1:]), "power": power / counts}


def pdf_norms(field: np.ndarray, nbins: int = 64) -> dict[str, float | np.ndarray]:
    """The *PDF_Calc* analysis: value histogram plus L1/L2/Linf norms."""
    flat = np.asarray(field, dtype=float).ravel()
    hist, edges = np.histogram(flat, bins=nbins)
    return {
        "hist": hist,
        "edges": edges,
        "l1": float(np.abs(flat).sum()),
        "l2": float(np.sqrt((flat**2).sum())),
        "linf": float(np.abs(flat).max()) if flat.size else 0.0,
    }


def isosurface_cell_count(field: np.ndarray, isovalue: float = 0.25) -> int:
    """Count grid cells straddling the isovalue (marching-cubes actives).

    This is the cost driver of the *Isosurface* task: the number of
    active cells — cells whose corners are not all on one side of the
    isovalue — is exactly the number of cells that would emit triangles,
    and it changes with the evolving pattern ("can change in
    computational complexity based on the data").
    """
    above = np.asarray(field) > isovalue
    active = np.zeros(tuple(n - 1 for n in above.shape), dtype=bool)
    if active.size == 0:
        return 0
    inner = tuple(slice(0, n - 1) for n in above.shape)
    base = above[inner]
    # A cell is active iff any corner differs from the base corner.
    for offsets in np.ndindex(*(2,) * above.ndim):
        if not any(offsets):
            continue
        shifted = above[tuple(slice(o, n - 1 + o) for o, n in zip(offsets, above.shape))]
        active |= shifted != base
    return int(active.sum())


def render_projection(field: np.ndarray, axis: int = 0) -> np.ndarray:
    """The *Rendering* task: a maximum-intensity projection image.

    Collapses one axis with max(), normalizes to [0, 1] — a cheap stand-in
    for volume rendering with the same data-access pattern.
    """
    if field.ndim < 2:
        raise ValueError("rendering needs at least a 2-D field")
    image = np.asarray(field, dtype=float).max(axis=axis)
    lo, hi = float(image.min()), float(image.max())
    if hi > lo:
        image = (image - lo) / (hi - lo)
    else:
        image = np.zeros_like(image)
    return image
