"""Gray-Scott workflow models (paper §4.2, §4.4).

The workflow couples a reaction-diffusion simulation with four in-situ
analyses of very different cost profiles — "very regular and highly
variable analyses" that make it "easy for a user to make poor resource
allocation decisions".  Step-time models are calibrated so the §4.4
under-provisioning experiment reproduces:

* initial Isosurface pace at 20 procs drives the workflow to ≈40 s per
  timestep (above the INC threshold of 36 s; a static run would need
  ≈10–12 % more than the 30-minute limit),
* after ADDCPU to 40 procs the instantaneous pace falls to ≈30 s but the
  10-value sliding average remains above 36 s (old values + restart
  losses) — triggering the paper's second adjustment,
* at 60 procs every pace settles inside the desired [24, 36] s band.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import IterativeApp
from repro.apps.scaling import AmdahlModel, ConstantModel, StepTimeModel

GS_TOTAL_STEPS = 50

# Summit-reference calibration (seconds; actual = reference / speed_factor).
SUMMIT_MODELS: dict[str, StepTimeModel] = {
    "GrayScott": ConstantModel(26.0),
    "Isosurface": AmdahlModel(serial=18.0, parallel=440.0),   # 40 / 29 / 25.3 s at 20/40/60
    "Rendering": AmdahlModel(serial=10.0, parallel=240.0),    # 22 s at 20
    # FFT at 20 procs paces just above the 36 s threshold: after the first
    # adjustment fixes Isosurface, FFT is what still gates the workflow —
    # which is why the paper's second adjustment takes FFT's resources.
    "FFT": AmdahlModel(serial=2.0, parallel=710.0),           # 37.5 s at 20
    "PDF_Calc": AmdahlModel(serial=2.0, parallel=200.0),      # 12 s at 20
}

# Deepthought2 runs a smaller per-process grid (Table 2); reference times
# are scaled so actual times land in the machine's 35-min/50-step budget.
_DT2_SPEED = 0.55
DEEPTHOUGHT2_MODELS: dict[str, StepTimeModel] = {
    "GrayScott": ConstantModel(34.0 * _DT2_SPEED),
    "Isosurface": AmdahlModel(serial=20.0 * _DT2_SPEED, parallel=540.0 * _DT2_SPEED),  # 47 / 29 s at 20/60
    "Rendering": AmdahlModel(serial=12.0 * _DT2_SPEED, parallel=280.0 * _DT2_SPEED),   # 26 s at 20
    "FFT": AmdahlModel(serial=3.0 * _DT2_SPEED, parallel=700.0 * _DT2_SPEED),          # 38 s at 20
    "PDF_Calc": AmdahlModel(serial=2.0 * _DT2_SPEED, parallel=280.0 * _DT2_SPEED),     # 16 s at 20
}

MODELS_BY_MACHINE = {"summit": SUMMIT_MODELS, "deepthought2": DEEPTHOUGHT2_MODELS}

ANALYSIS_TASKS = ("Isosurface", "Rendering", "FFT", "PDF_Calc")

# Task priorities from §4.4, high to low: GrayScott, Isosurface,
# Rendering, FFT, PDF_Calc.
TASK_PRIORITIES = {
    "GrayScott": 0,
    "Isosurface": 1,
    "Rendering": 2,
    "FFT": 3,
    "PDF_Calc": 4,
}


@dataclass(frozen=True)
class GrayScottConfig:
    """Initial configuration (Table 2 defaults are per machine)."""

    machine: str = "summit"
    gs_procs: int = 340
    gs_procs_per_node: int = 34
    analysis_procs: int = 20
    total_steps: int = GS_TOTAL_STEPS
    noise_cv: float = 0.03
    analysis_procs_per_node: dict[str, int] = field(default_factory=dict)

    @classmethod
    def summit(cls) -> "GrayScottConfig":
        # Table 2: GS 340 (34/node); Isosurface, Rendering, FFT, PDF 20 (2/node).
        return cls(
            machine="summit",
            gs_procs=340,
            gs_procs_per_node=34,
            analysis_procs=20,
            analysis_procs_per_node={t: 2 for t in ANALYSIS_TASKS},
        )

    @classmethod
    def deepthought2(cls) -> "GrayScottConfig":
        # Table 2: GS 320 (16/node) on 20 nodes.  The paper lists 1/node
        # for Rendering/FFT/PDF, which cannot pack with GS into 20-core
        # nodes; we use 2/node for every analysis so the allocation packs
        # exactly (16+2+2 = 20 per node), preserving the co-location the
        # experiment depends on (see EXPERIMENTS.md).
        return cls(
            machine="deepthought2",
            gs_procs=320,
            gs_procs_per_node=16,
            analysis_procs=20,
            analysis_procs_per_node={t: 2 for t in ANALYSIS_TASKS},
        )


def make_gray_scott_app(config: GrayScottConfig) -> IterativeApp:
    """The simulation task: 50 steps, streams every step, closes at EOS."""
    return IterativeApp(
        step_model=MODELS_BY_MACHINE[config.machine]["GrayScott"],
        total_steps=config.total_steps,
        output_every=1,
        noise_cv=config.noise_cv,
        close_output_on_complete=True,
    )


def make_analysis_app(task: str, config: GrayScottConfig) -> IterativeApp:
    """An analysis task: consumes the simulation stream until EOS."""
    if task not in ANALYSIS_TASKS:
        raise ValueError(f"unknown Gray-Scott analysis {task!r}")
    return IterativeApp(
        step_model=MODELS_BY_MACHINE[config.machine][task],
        total_steps=None,
        noise_cv=config.noise_cv,
    )
