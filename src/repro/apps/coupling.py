"""In-situ coupling flow control between producers and consumers.

Tightly coupled tasks "run concurrently with input/output dependencies,
potentially affecting performance across workflow tasks" (paper §1).  The
mechanism behind that mutual influence is staging backpressure: a
producer may only run a bounded number of steps ahead of its slowest
*active* consumer.  When the Isosurface analysis is under-provisioned,
Gray-Scott stalls behind it and every task's observed pace rises — the
exact signal the PACE policies react to in §4.4.

Stopped consumers (victims, restarts) deregister so the producer never
blocks on a task that is gone; restarted consumers re-register and catch
up from the newest staged step.
"""

from __future__ import annotations

from repro.util.validation import check_positive


class CouplingRegistry:
    """Tracks, per workflow, who consumes whom and how far each has read."""

    def __init__(self, max_inflight: int = 2) -> None:
        """
        Args:
            max_inflight: steps a producer may run ahead of its slowest
                active consumer (the staging buffer depth).
        """
        check_positive(max_inflight, "max_inflight")
        self.max_inflight = int(max_inflight)
        # (producer, consumer) -> last step index the consumer completed
        self._consumed: dict[tuple[str, str], int] = {}
        self._produced: dict[str, int] = {}  # producer -> last published step

    # -- consumer lifecycle ------------------------------------------------------
    def register_consumer(self, producer: str, consumer: str) -> None:
        """Consumer (re)connects; it is caught up to the current frontier."""
        self._consumed[(producer, consumer)] = self._produced.get(producer, -1)

    def deregister_consumer(self, producer: str, consumer: str) -> None:
        self._consumed.pop((producer, consumer), None)

    def deregister_everywhere(self, consumer: str) -> None:
        """Remove *consumer* from every coupling (it stopped)."""
        for key in [k for k in self._consumed if k[1] == consumer]:
            del self._consumed[key]

    def active_consumers(self, producer: str) -> list[str]:
        return sorted(c for (p, c) in self._consumed if p == producer)

    # -- progress -----------------------------------------------------------------
    def mark_produced(self, producer: str, step: int) -> None:
        self._produced[producer] = max(self._produced.get(producer, -1), step)

    def mark_consumed(self, producer: str, consumer: str, step: int) -> None:
        key = (producer, consumer)
        if key in self._consumed:
            self._consumed[key] = max(self._consumed[key], step)

    def last_produced(self, producer: str) -> int:
        return self._produced.get(producer, -1)

    def slowest_consumer_step(self, producer: str) -> int | None:
        """Smallest consumed step among active consumers (None if none)."""
        steps = [s for (p, _c), s in self._consumed.items() if p == producer]
        return min(steps) if steps else None

    def can_publish(self, producer: str, step: int) -> bool:
        """May *producer* publish *step* now, or must it wait?

        Publishing is allowed when every active consumer is within
        ``max_inflight`` steps; with no active consumers there is no
        backpressure (output lands in the staging buffer / on disk).
        """
        slowest = self.slowest_consumer_step(producer)
        if slowest is None:
            return True
        return step - slowest <= self.max_inflight

    def clear(self) -> None:
        self._consumed.clear()
        self._produced.clear()
