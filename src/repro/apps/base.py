"""Task execution model: contexts, signals, and the iterative-app loop.

Every workflow task in the paper — simulations and analyses alike — is an
iterative code: it repeatedly acquires input, computes a step, publishes
output, and occasionally writes files/checkpoints.  :class:`IterativeApp`
implements that loop on the simulation kernel with the semantics the
paper's measurements depend on:

* **graceful termination** — on a stop signal the task finishes its
  current timestep before exiting ("approximately 97% of the response
  time was spent waiting for tasks to terminate after receiving the
  signal", §4.6);
* **tight coupling** — input steps are consumed from the parent's staging
  stream, and producers stall under backpressure when consumers lag
  (the under-provisioning dynamics of §4.4);
* **checkpoint/restart** — periodic checkpoints let a restarted instance
  resume from the last saved step (the §4.5 resilience experiment);
* **profiler emission** — per-step loop times stream out through the
  TAU-like profiler so PACE sensors observe the task's true pace,
  including coupling stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.apps.coupling import CouplingRegistry
from repro.apps.scaling import StepTimeModel
from repro.cluster.machine import MachinePerf
from repro.errors import CheckpointError
from repro.profiler.counters import CounterModel
from repro.profiler.instrument import TaskProfiler
from repro.sim.engine import SimEngine
from repro.sim.events import Interrupt
from repro.staging.hub import DataHub
from repro.staging.stream import StreamReader

if TYPE_CHECKING:  # pragma: no cover
    from repro.staging.stream import StreamChannel


@dataclass(frozen=True)
class Signal:
    """A signal delivered to a running task via process interrupt.

    ``kind`` is ``"term"`` (graceful stop: finish the current timestep)
    or ``"kill"`` (immediate death with ``code``, e.g. 137 when a node
    dies under the task).
    """

    kind: str = "term"
    code: int = 143

    @classmethod
    def term(cls) -> "Signal":
        return cls("term", 143)

    @classmethod
    def kill(cls, code: int = 137) -> "Signal":
        return cls("kill", code)


def _as_signal(cause: Any) -> Signal:
    return cause if isinstance(cause, Signal) else Signal.term()


class _HardKill(Exception):
    """Internal: the task dies immediately with this exit code."""

    def __init__(self, code: int) -> None:
        super().__init__(code)
        self.code = code


class AppExit(Exception):
    """An app may raise this to exit deliberately with a specific code."""

    def __init__(self, code: int, reason: str = "") -> None:
        super().__init__(code, reason)
        self.code = code
        self.reason = reason


@dataclass
class TaskContext:
    """Everything a running task instance can see of its environment.

    Built by the launcher for each task incarnation.
    """

    engine: SimEngine
    hub: DataHub
    coupling: CouplingRegistry
    perf: MachinePerf
    rng: np.random.Generator
    workflow_id: str
    task: str
    incarnation: int
    nprocs: int
    rank_nodes: dict[int, str]
    tight_parents: list[str] = field(default_factory=list)
    params: dict[str, Any] = field(default_factory=dict)
    poll_interval: float = 0.25
    counters: CounterModel | None = None
    notes: dict[str, Any] = field(default_factory=dict)
    # In-place reconfiguration mailbox (paper §6 extension): Actuation
    # delivers parameter updates here; the app applies them between steps.
    control: list[dict[str, Any]] = field(default_factory=list)
    # Resilience hooks: the launcher points heartbeat_cb at the task
    # instance so the watchdog sees per-step liveness; the chaos engine
    # flips hang_injected to freeze the app without killing it.
    heartbeat_cb: Callable[[float], None] | None = None
    hang_injected: bool = False

    # -- naming conventions shared with the Monitor stage -----------------------
    def profiler_channel_name(self, task: str | None = None) -> str:
        return f"tau-{self.workflow_id}-{task or self.task}"

    def data_channel_name(self, task: str | None = None) -> str:
        return f"data-{self.workflow_id}-{task or self.task}"

    def output_store_name(self) -> str:
        return f"{self.workflow_id}/{self.task}.bp"

    def checkpoint_path(self) -> str:
        return f"cp/{self.workflow_id}/{self.task}"

    # -- endpoints ---------------------------------------------------------------
    def make_profiler(self) -> TaskProfiler:
        ch = self.hub.channel(self.profiler_channel_name())
        if ch.closed:
            ch.reopen()
        return TaskProfiler(
            workflow_id=self.workflow_id,
            task=self.task,
            channel=ch,
            rank_nodes=self.rank_nodes,
            counters=self.counters,
        )

    def output_channel(self) -> "StreamChannel":
        ch = self.hub.channel(self.data_channel_name())
        if ch.closed:
            ch.reopen()
        return ch

    def open_input(self, parent: str) -> StreamReader:
        """Reader on the parent's data stream.

        Restarted instances resume from the newest staged step — the
        paper's "losing timestep information when the tasks reset".
        """
        reader = self.hub.channel(self.data_channel_name(parent)).open_reader(
            f"{self.task}#{self.incarnation}"
        )
        if self.incarnation > 0:
            reader.seek_latest()
        return reader

    # -- checkpointing -------------------------------------------------------------
    def save_checkpoint(self, step: int, payload: Any = None) -> None:
        self.hub.filesystem.write(
            self.checkpoint_path(), {"step": step, "payload": payload}, mtime=self.engine.now
        )

    def load_checkpoint(self) -> dict[str, Any] | None:
        fs = self.hub.filesystem
        if not fs.exists(self.checkpoint_path()):
            return None
        data = fs.read(self.checkpoint_path())
        if not isinstance(data, dict) or "step" not in data:
            raise CheckpointError(f"corrupt checkpoint at {self.checkpoint_path()}")
        return data

    def note(self, key: str, value: Any) -> None:
        """Attach run metadata, surfaced on the task instance afterwards."""
        self.notes[key] = value

    # -- resilience hooks ----------------------------------------------------------
    def heartbeat(self) -> None:
        """Report liveness (called by the app at each completed step)."""
        if self.heartbeat_cb is not None:
            self.heartbeat_cb(self.engine.now)

    def inject_hang(self) -> None:
        """Fault injection: freeze the task before its next step."""
        self.hang_injected = True

    # -- in-place reconfiguration (paper §6 extension) ---------------------------
    def deliver_control(self, updates: dict[str, Any]) -> None:
        """Queue a parameter update for the running task (RECONFIG)."""
        self.control.append(dict(updates))

    def drain_control(self) -> dict[str, Any]:
        """Merge and clear pending control updates; applies them to params."""
        merged: dict[str, Any] = {}
        while self.control:
            merged.update(self.control.pop(0))
        if merged:
            self.params.update(merged)
        return merged


class IterativeApp:
    """A configurable iterative application model.

    Args:
        step_model: per-step compute-time model (Summit-reference seconds;
            the machine's ``speed_factor`` is applied at runtime).
        total_steps: steps after which the *experiment* is complete
            (persists across restarts); None = run until input EOS.
        run_steps: steps per invocation before a clean exit (the XGC codes
            run 100 timesteps per run, §4.3); None = unlimited.
        output_every: write a science-output step (store + disk marker)
            every k steps; 0 disables.
        publish_every: publish a data step to the in-situ stream every k
            steps (1 = every step; 0 = never).  LAMMPS publishes every
            10th step — Table 3 pairs 1000 simulation steps with 100
            analysis steps.
        checkpoint_every: save a checkpoint every k steps; 0 disables.
        resume_from_checkpoint: start from the last checkpoint if present.
        noise_cv: coefficient of variation of step-time noise.
        rank_jitter: per-rank relative spread of reported loop times (the
            MAX group-by reduction needs rank-level variation to matter).
        close_output_on_complete: close the data channel when total_steps
            is reached so downstream consumers see end-of-stream.
        on_step: optional hook ``f(ctx, step)`` called after each step.
        start_step_fn: optional hook ``f(ctx) -> int`` overriding the
            start step (used by XGC's restart-script emulation).
        memory_mb_per_rank: when set, each profiler step also carries a
            per-rank ``rss_mb`` variable (base + a slow linear growth) —
            the paper's §2.1 example of one measurement consumed at two
            granularities (per node-task and per task).
        memory_growth_mb_per_step: linear RSS growth per step (models the
            accumulating buffers that make memory policies interesting).
    """

    def __init__(
        self,
        step_model: StepTimeModel,
        total_steps: int | None = None,
        run_steps: int | None = None,
        output_every: int = 0,
        publish_every: int = 1,
        checkpoint_every: int = 0,
        resume_from_checkpoint: bool = False,
        noise_cv: float = 0.0,
        rank_jitter: float = 0.02,
        close_output_on_complete: bool = True,
        on_step: Callable[[TaskContext, int], None] | None = None,
        start_step_fn: Callable[[TaskContext], int] | None = None,
        profile_ranks: int = 16,
        memory_mb_per_rank: float = 0.0,
        memory_growth_mb_per_step: float = 0.0,
    ) -> None:
        self.step_model = step_model
        self.total_steps = total_steps
        self.run_steps = run_steps
        self.output_every = output_every
        self.publish_every = publish_every
        self.checkpoint_every = checkpoint_every
        self.resume_from_checkpoint = resume_from_checkpoint
        self.noise_cv = noise_cv
        self.rank_jitter = rank_jitter
        self.close_output_on_complete = close_output_on_complete
        self.on_step = on_step
        self.start_step_fn = start_step_fn
        self.profile_ranks = profile_ranks
        self.memory_mb_per_rank = memory_mb_per_rank
        self.memory_growth_mb_per_step = memory_growth_mb_per_step

    # -- hooks (overridable) ------------------------------------------------------
    def start_step(self, ctx: TaskContext) -> int:
        """Which step this incarnation starts from.

        ``resume-from-checkpoint`` in the task parameters overrides the
        constructor flag, so the resilience layer can make a *restarted*
        incarnation resume from its last completed checkpoint without
        rebuilding the app.
        """
        if self.start_step_fn is not None:
            return self.start_step_fn(ctx)
        resume = bool(ctx.params.get("resume-from-checkpoint", self.resume_from_checkpoint))
        if resume:
            cp = ctx.load_checkpoint()
            if cp is not None:
                return int(cp["step"])
        return 0

    def step_time(self, ctx: TaskContext, step: int) -> float:
        """Wall seconds of compute for *step* on this machine, this run.

        ``step-scale`` in the task parameters rescales the work per step —
        the hook RECONFIG uses for in-place pace control (e.g. the science
        code lowering its analysis resolution instead of being restarted).
        """
        t = self.step_model.sample(ctx.nprocs, step, ctx.rng, self.noise_cv)
        scale = float(ctx.params.get("step-scale", 1.0))
        return t * scale / ctx.perf.speed_factor

    def write_output(self, ctx: TaskContext, step: int) -> None:
        """Science output: a store step plus a per-step marker file."""
        store = ctx.hub.store(ctx.output_store_name())
        store.write_step(ctx.engine.now, step=step, nsteps=step + 1)
        ctx.hub.filesystem.write(
            f"out/{ctx.workflow_id}/{ctx.task}.out.{step}",
            {"step": step},
            mtime=ctx.engine.now,
            step=step,
        )

    # -- the main loop ----------------------------------------------------------------
    def run(self, ctx: TaskContext):
        """Generator executed as the task's simulated process.

        Returns the exit code.
        """
        eng = ctx.engine
        step = self.start_step(ctx)
        first_step = step
        profiler = ctx.make_profiler()
        out_ch = ctx.output_channel()
        readers = {p: ctx.open_input(p) for p in ctx.tight_parents}
        for parent in ctx.tight_parents:
            ctx.coupling.register_consumer(parent, ctx.task)
        last_complete = eng.now
        steps_this_run = 0
        code = 0
        graceful_stop = False
        input_eos = False
        # The resilience layer may override the checkpoint cadence via
        # task parameters (the XML <resilience><checkpoint> knob).
        checkpoint_every = int(ctx.params.get("checkpoint-every", self.checkpoint_every))
        try:
            while True:
                if ctx.hang_injected:
                    # Injected hang: hold resources, make no progress, emit
                    # nothing — exactly what the watchdog exists to catch.
                    # Only a (kill) interrupt gets the task out of here.
                    yield eng.timeout(ctx.poll_interval)
                    continue
                if self.total_steps is not None and step >= self.total_steps:
                    break
                if self.run_steps is not None and steps_this_run >= self.run_steps:
                    break
                # 1. acquire one step of input from every tight parent
                consumed: dict[str, int] = {}
                for parent, reader in readers.items():
                    record = yield from self._await_input(ctx, reader)
                    if record is None:
                        input_eos = True
                        break
                    consumed[parent] = record.step
                if input_eos:
                    break
                reconfigured = ctx.drain_control()
                if reconfigured:
                    ctx.note("last_reconfig", dict(reconfigured))
                if steps_this_run == 0:
                    # TAU times main-loop iterations: the first iteration
                    # starts once input is connected, not at process spawn
                    # — launch/connection cost must not pollute the PACE
                    # metric with a one-off spike.
                    last_complete = max(last_complete, eng.now - ctx.poll_interval)
                # 2. compute the step (graceful-interrupt aware)
                dt = self.step_time(ctx, step)
                graceful_stop = yield from self._compute(ctx, dt)
                # 3. end-of-step bookkeeping (runs even when stopping)
                if self.publish_every and (step + 1) % self.publish_every == 0:
                    yield from self._publish(ctx, out_ch, step, skip_flow_control=graceful_stop)
                for parent, in_step in consumed.items():
                    ctx.coupling.mark_consumed(parent, ctx.task, in_step)
                if self.output_every and (step + 1) % self.output_every == 0:
                    self.write_output(ctx, step)
                if checkpoint_every and (step + 1) % checkpoint_every == 0:
                    ctx.save_checkpoint(step + 1)
                looptime = eng.now - last_complete
                last_complete = eng.now
                self._emit_pace(ctx, profiler, step, looptime)
                ctx.heartbeat()
                if self.on_step is not None:
                    self.on_step(ctx, step)
                step += 1
                steps_this_run += 1
                if graceful_stop:
                    break
        except _HardKill as k:
            code = k.code
        except AppExit as e:
            code = e.code
        except Interrupt as i:
            # Signal while waiting (input/flow control): nothing half-done.
            sig = _as_signal(i.cause)
            code = sig.code if sig.kind == "kill" else 0
        finally:
            for parent in ctx.tight_parents:
                ctx.coupling.deregister_consumer(parent, ctx.task)
            ctx.note("last_step", step)
            ctx.note("steps_this_run", steps_this_run)
            ctx.note("first_step", first_step)
        completed = self.total_steps is not None and step >= self.total_steps
        ctx.note("completed", completed or input_eos)
        # Propagate end-of-stream downstream: a producer that finished its
        # work — or ran out of input itself — closes its data channel so
        # tight consumers drain and exit instead of waiting forever.
        if (completed or input_eos) and self.close_output_on_complete and not out_ch.closed:
            out_ch.close()
        return code

    # -- loop pieces ---------------------------------------------------------------------
    def _await_input(self, ctx: TaskContext, reader: StreamReader):
        """Poll the parent stream until a step arrives (or EOS / signal)."""
        while True:
            record = reader.try_next()
            if record is not None:
                return record
            if reader.at_eos():
                return None
            yield ctx.engine.timeout(ctx.poll_interval)

    def _compute(self, ctx: TaskContext, dt: float):
        """Run the step's compute; returns True if a graceful stop arrived.

        A ``term`` signal mid-compute lets the step finish (the dominant
        cost in the paper's response times); a second signal or a ``kill``
        aborts immediately.
        """
        t0 = ctx.engine.now
        try:
            yield ctx.engine.timeout(dt)
            return False
        except Interrupt as i:
            sig = _as_signal(i.cause)
            if sig.kind == "kill":
                raise _HardKill(sig.code) from None
            remaining = dt - (ctx.engine.now - t0)
            if remaining > 0:
                try:
                    yield ctx.engine.timeout(remaining)
                except Interrupt as i2:
                    sig2 = _as_signal(i2.cause)
                    raise _HardKill(sig2.code if sig2.kind == "kill" else 143) from None
            return True

    def _publish(self, ctx: TaskContext, out_ch, step: int, skip_flow_control: bool):
        """Publish the step's data under coupling backpressure.

        Coupling bookkeeping uses *channel* step indices (which keep
        counting across task restarts) so producers and consumers agree on
        progress even after one side resets its own step counter.
        """
        if not skip_flow_control:
            while not ctx.coupling.can_publish(ctx.task, out_ch.next_step):
                yield ctx.engine.timeout(ctx.poll_interval)
        if out_ch.closed:
            out_ch.reopen()
        idx = out_ch.put({"task": ctx.task, "step": step}, ctx.engine.now)
        ctx.coupling.mark_produced(ctx.task, idx)

    def _emit_pace(self, ctx: TaskContext, profiler: TaskProfiler, step: int, looptime: float) -> None:
        """Stream per-rank loop times (a bounded rank sample at scale).

        Real TAU emits one record per rank; for 1500-process LAMMPS runs
        that volume adds nothing to the MAX/AVG reductions the sensors
        compute, so emission is capped at ``profile_ranks`` ranks.
        """
        nranks = min(ctx.nprocs, self.profile_ranks) if self.profile_ranks else ctx.nprocs
        jitter = self.rank_jitter
        if jitter > 0 and nranks > 1:
            factors = 1.0 + jitter * ctx.rng.random(nranks)
        else:
            factors = np.ones(nranks)
        loop_times = {rank: looptime * float(factors[rank]) for rank in range(nranks)}
        extra_vars = None
        if self.memory_mb_per_rank > 0:
            base = self.memory_mb_per_rank + self.memory_growth_mb_per_step * step
            extra_vars = {
                "rss_mb": {rank: base * float(factors[rank]) for rank in range(nranks)}
            }
        profiler.emit_step(ctx.engine.now, step, loop_times, extra_vars=extra_vars)
