"""Application models: the scientific codes the paper's workflows run.

The evaluation uses three workflows — XGC1–XGCa fusion coupling,
Gray-Scott reaction–diffusion with four analyses, and LAMMPS molecular
dynamics with three analyses.  This package provides both:

* **Behaviour models** for the discrete-event simulator — every task is an
  :class:`IterativeApp` with a calibrated step-time model, periodic
  output, optional checkpointing, profiler emission, tight/loose coupling
  and graceful-termination semantics.  These drive the paper-scale
  benchmark reproductions.
* **Real numerical kernels** (`repro.apps.kernels`) — a NumPy Gray-Scott
  solver, FFT/PDF/isosurface/render analyses, and a Lennard-Jones MD
  mini-simulator with RDF/CNA/centro-symmetry analyses.  These power the
  live examples and calibrate the step-time models.
"""

from repro.apps.base import AppExit, IterativeApp, TaskContext
from repro.apps.coupling import CouplingRegistry
from repro.apps.scaling import (
    AmdahlModel,
    ConstantModel,
    PowerLawModel,
    RampModel,
    StepTimeModel,
    VectorizedStepModel,
)

__all__ = [
    "TaskContext",
    "IterativeApp",
    "AppExit",
    "CouplingRegistry",
    "StepTimeModel",
    "AmdahlModel",
    "ConstantModel",
    "PowerLawModel",
    "RampModel",
    "VectorizedStepModel",
]
