"""Canned reproductions of the paper's experiments (§4).

Each scenario module builds the workflow, applies the paper's XML
orchestration specification, runs it on the simulated cluster, and
returns a :class:`ScenarioResult` with the Gantt trace, executed plans,
response times and metric history — everything the benchmark harness
needs to regenerate the paper's tables and figures.
"""

from repro.experiments.results import ScenarioResult
from repro.experiments.gantt import render_gantt
from repro.experiments.xgc_scenario import run_xgc_experiment, XGC_XML
from repro.experiments.grayscott_scenario import run_gray_scott_experiment, GRAY_SCOTT_XML
from repro.experiments.lammps_scenario import run_lammps_experiment, LAMMPS_XML
from repro.experiments.cost_analysis import run_cost_analysis

__all__ = [
    "ScenarioResult",
    "render_gantt",
    "run_xgc_experiment",
    "run_gray_scott_experiment",
    "run_lammps_experiment",
    "run_cost_analysis",
    "XGC_XML",
    "GRAY_SCOTT_XML",
    "LAMMPS_XML",
]
