"""ASCII Gantt rendering of experiment traces (Figs. 1, 6, 8, 11)."""

from __future__ import annotations

from repro.sim.trace import TraceRecorder


def render_gantt(
    trace: TraceRecorder,
    width: int = 100,
    categories: tuple[str, ...] = ("task",),
    adjust_category: str = "adjust",
    end_time: float | None = None,
) -> str:
    """Render task spans as bars, with DYFLOW adjustment windows marked.

    Each track gets one line; '=' marks task execution, '!' marks the
    dynamic-adjustment (response) windows — the paper's red intervals.
    """
    end = end_time if end_time is not None else trace.end_time()
    if end <= 0:
        return "(empty trace)"
    scale = width / end

    def col(t: float) -> int:
        return min(width - 1, max(0, int(t * scale)))

    lines = [f"time: 0 .. {end:.0f}s  ('=' running, '!' DYFLOW adjustment)"]
    tracks = [t for t in trace.tracks() if any(
        s.category in categories for s in trace.spans_for(track=t))]
    adjust_spans = [s for s in trace.spans if s.category == adjust_category and s.end is not None]
    label_width = max((len(t) for t in tracks), default=8) + 2
    for track in tracks:
        row = [" "] * width
        for span in trace.spans_for(track=track):
            if span.category not in categories or span.end is None:
                continue
            lo, hi = col(span.start), col(span.end)
            for i in range(lo, max(hi, lo + 1)):
                row[i] = "="
        lines.append(f"{track:<{label_width}}|{''.join(row)}|")
    if adjust_spans:
        row = [" "] * width
        for span in adjust_spans:
            lo, hi = col(span.start), col(span.end)
            for i in range(lo, max(hi, lo + 1)):
                row[i] = "!"
        lines.append(f"{'DYFLOW':<{label_width}}|{''.join(row)}|")
    return "\n".join(lines)


def timeline_events(trace: TraceRecorder, category: str | None = None) -> list[str]:
    """Human-readable point-event log, time-ordered."""
    return [
        f"t={p.time:9.2f}s  {p.label}" for p in trace.points_for(category=category)
    ]
