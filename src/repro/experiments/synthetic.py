"""Synthetic large-scale scenario for core-kernel throughput benchmarks.

Unlike the paper scenarios (a handful of tasks, science-driven
policies), this scenario exists to stress the *kernel*: N independent
iterative tasks, one shared PACE sensor, one per-task policy runtime —
so every tick pushes O(N) profiler samples through sensor polling,
envelope transport, MonitorServer ingest, Decision routing, and policy
evaluation.  ``benchmarks/bench_core_throughput.py`` drives it at
1k/5k/10k tasks and reports events/ticks/envelopes per wall-second.

The workload is fully deterministic (no step noise, no rank jitter), so
``scenario_fingerprint`` doubles as the bit-identity oracle for kernel
optimizations: any change to event ordering, envelope batching, or
policy routing shows up as a fingerprint change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.apps import ConstantModel, IterativeApp
from repro.cluster import BatchScheduler, summit
from repro.core import GroupBySpec, PolicyApplication, PolicySpec, SensorSpec
from repro.core.actions import ActionType
from repro.experiments.results import ScenarioResult
from repro.experiments.runner import execute_scenario
from repro.sim import RngRegistry, SimEngine
from repro.wms import Savanna, TaskSpec, WorkflowSpec

WORKFLOW_ID = "SYNTH-WORKFLOW"


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic throughput scenario."""

    num_tasks: int = 1000
    step_time: float = 5.0
    total_steps: int = 8
    poll_interval: float = 1.0
    num_clients: int = 8
    cores_per_node: int = 64
    policy_frequency: float = 1.0
    # GT threshold no sample ever crosses: the decision stage does full
    # routing + evaluation work but the arbiter never builds a plan, so
    # the measurement isolates the monitoring/decision data path.
    policy_threshold: float = 1e9
    seed: int = 0


def _task_name(i: int) -> str:
    return f"T{i:05d}"


def build_synthetic_workflow(cfg: SyntheticConfig) -> WorkflowSpec:
    tasks = [
        TaskSpec(
            _task_name(i),
            lambda cfg=cfg: IterativeApp(
                ConstantModel(cfg.step_time),
                total_steps=cfg.total_steps,
                publish_every=0,
                output_every=0,
                noise_cv=0.0,
                rank_jitter=0.0,
                profile_ranks=1,
            ),
            nprocs=1,
        )
        for i in range(cfg.num_tasks)
    ]
    return WorkflowSpec(WORKFLOW_ID, tasks, [])


def build_synthetic_orchestrator(launcher: Savanna, cfg: SyntheticConfig, **kwargs):
    """Wire the shared PACE sensor and one self-assessing policy per task.

    Extra keyword arguments pass straight to the orchestrator (the bench
    uses this for ``runtime_options``/fabric configuration).
    """
    from repro.runtime.sim_driver import DyflowOrchestrator

    orch = DyflowOrchestrator(
        launcher,
        warmup=0.0,
        settle=0.0,
        poll_interval=cfg.poll_interval,
        num_clients=cfg.num_clients,
        record_history=False,
        **kwargs,
    )
    orch.add_sensor(
        SensorSpec("PACE", "TAUADIOS2", group_by=(GroupBySpec("task", "MAX"),))
    )
    orch.add_policy(
        PolicySpec(
            "WATCH_PACE",
            sensor_id="PACE",
            eval_op="GT",
            threshold=cfg.policy_threshold,
            action=ActionType.ADDCPU,
            granularity="task",
            history_window=1,
            frequency=cfg.policy_frequency,
        )
    )
    for i in range(cfg.num_tasks):
        name = _task_name(i)
        orch.monitor_task(name, "PACE", var="looptime", client=i % cfg.num_clients)
        orch.apply_policy(
            PolicyApplication(
                "WATCH_PACE",
                workflow_id=WORKFLOW_ID,
                act_on_tasks=(name,),
                assess_task=name,
            )
        )
    return orch


def run_synthetic_experiment(
    num_tasks: int = 1000,
    *,
    config: SyntheticConfig | None = None,
    max_time: float | None = None,
    **orch_kwargs,
) -> ScenarioResult:
    """Run the synthetic scenario; counters land in ``result.meta``.

    ``meta`` carries the raw throughput counters (engine events executed,
    orchestrator ticks, envelopes received/updates seen) — wall-clock
    normalization is the benchmark harness's job.
    """
    cfg = config or SyntheticConfig(num_tasks=num_tasks)
    engine = SimEngine()
    num_nodes = max(1, math.ceil(cfg.num_tasks / cfg.cores_per_node))
    machine = summit(num_nodes, cores_per_node=cfg.cores_per_node)
    scheduler = BatchScheduler(engine, machine)
    if max_time is None:
        max_time = cfg.step_time * (cfg.total_steps + 4) + 60.0
    job = scheduler.submit(num_nodes, walltime_limit=max_time)
    engine.run(until=0)
    assert job.allocation is not None
    workflow = build_synthetic_workflow(cfg)
    launcher = Savanna(engine, workflow, job.allocation, rng=RngRegistry(cfg.seed))
    orch = build_synthetic_orchestrator(launcher, cfg, **orch_kwargs)
    makespan = execute_scenario(engine, launcher, orch, max_time=max_time)
    return ScenarioResult(
        name="synthetic",
        machine="summit",
        use_dyflow=True,
        makespan=makespan,
        trace=launcher.trace,
        plans=orch.plans,
        metric_history=orch.server.history,
        launcher=launcher,
        meta={
            "num_tasks": cfg.num_tasks,
            "events_executed": engine.events_executed,
            "ticks": orch.ticks,
            "envelopes": orch.server.received,
            "updates_seen": orch.decision.updates_seen,
            "updates_matched": orch.decision.updates_matched,
        },
    )
