"""The LAMMPS failure-resilience experiment (§4.5, Fig. 11, Table 3).

The MD simulation and three tightly coupled analyses co-locate on every
node (30+4+4+4 = 42 cores on Summit nodes), so a node failure 10 minutes
in kills the whole workflow.  A STATUS sensor reads the exit codes
Savanna saves; the RESTART_ON_FAILURE policy (error > 128) restarts
everything, with Arbitration excluding the failed node and using the
spare nodes in the allocation.  The simulation resumes from its last
checkpoint (step 412) and repeats a few timesteps.
"""

from __future__ import annotations

from repro.apps.lammps import (
    ANALYSIS_TASKS,
    LammpsConfig,
    TASK_PRIORITIES,
    make_lammps_app,
    make_md_analysis_app,
)
from repro.cluster import BatchScheduler, FailureInjector, deepthought2, summit
from repro.experiments.results import ScenarioResult
from repro.experiments.runner import execute_scenario
from repro.sim import RngRegistry, SimEngine
from repro.wms import CouplingType, DependencySpec, Savanna, TaskSpec, WorkflowSpec
from repro.xmlspec import configure_orchestrator, parse_dyflow_xml

WORKFLOW_ID = "MD-WORKFLOW"
FAILURE_TIME = 600.0  # "10 mins into the experiment" (§4.5)
SPARE_NODES = 2


def lammps_xml() -> str:
    """The Fig. 10 specification: STATUS sensor + RESTART_ON_FAILURE."""
    monitor_blocks = "\n".join(
        f"""
      <monitor-task name="{t}" workflowId="{WORKFLOW_ID}">
        <use-sensor sensor-id="STATUS"/>
      </monitor-task>"""
        for t in ("LAMMPS",) + ANALYSIS_TASKS
    )
    apply_blocks = "\n".join(
        f"""
    <apply-policy policyId="RESTART_ON_FAILURE" assess-task="{t}">
      <act-on-tasks> {t} </act-on-tasks>
    </apply-policy>"""
        for t in ("LAMMPS",) + ANALYSIS_TASKS
    )
    priorities = "\n".join(
        f'        <task-priority name="{t}" priority="{p}"/>'
        for t, p in TASK_PRIORITIES.items()
    )
    return f"""
<dyflow>
  <monitor>
    <sensors>
      <sensor id="STATUS" type="ERRORSTATUS">
        <group-by><group granularity="task" reduction-operation="FIRST"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>{monitor_blocks}
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="RESTART_ON_FAILURE">
        <eval operation="GT" threshold="128"/>
        <sensors-to-use><use-sensor id="STATUS" granularity="task"/></sensors-to-use>
        <action> RESTART </action>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="{WORKFLOW_ID}">{apply_blocks}
    </apply-on>
  </decision>
  <arbitration>
    <rules>
      <rule-for workflowId="{WORKFLOW_ID}">
        <task-priorities>
{priorities}
        </task-priorities>
        <task-dependencies workflowId="{WORKFLOW_ID}">
          <task-dep name="CS_Calc" type="TIGHT" parent="LAMMPS"/>
          <task-dep name="CNA_Calc" type="TIGHT" parent="LAMMPS"/>
          <task-dep name="RDF_Calc" type="TIGHT" parent="LAMMPS"/>
        </task-dependencies>
      </rule-for>
    </rules>
  </arbitration>
</dyflow>
"""


LAMMPS_XML = lammps_xml()


def build_workflow(config: LammpsConfig) -> WorkflowSpec:
    tasks = [
        TaskSpec(
            "LAMMPS",
            lambda config=config: make_lammps_app(config),
            nprocs=config.sim_procs,
            procs_per_node=config.sim_procs_per_node,
        )
    ]
    for t in ANALYSIS_TASKS:
        tasks.append(
            TaskSpec(
                t,
                lambda t=t, config=config: make_md_analysis_app(t, config),
                nprocs=config.analysis_procs,
                procs_per_node=config.analysis_procs_per_node,
            )
        )
    deps = [DependencySpec(t, "LAMMPS", CouplingType.TIGHT) for t in ANALYSIS_TASKS]
    return WorkflowSpec(WORKFLOW_ID, tasks, deps)


def run_lammps_experiment(
    machine: str = "summit",
    use_dyflow: bool = True,
    inject_failure: bool = True,
    failure_time: float = FAILURE_TIME,
    seed: int = 0,
    max_time: float = 20_000.0,
) -> ScenarioResult:
    """Run the resilience experiment; returns trace, plans, checkpoints."""
    engine = SimEngine()
    config = (
        LammpsConfig.summit() if machine == "summit" else LammpsConfig.deepthought2()
    )
    base_nodes = config.sim_procs // config.sim_procs_per_node
    num_nodes = base_nodes + SPARE_NODES
    m = summit(num_nodes) if machine == "summit" else deepthought2(num_nodes)
    scheduler = BatchScheduler(engine, m)
    job = scheduler.submit(num_nodes, walltime_limit=max_time)
    engine.run(until=0)
    assert job.allocation is not None
    workflow = build_workflow(config)
    launcher = Savanna(engine, workflow, job.allocation, rng=RngRegistry(seed))

    failed_node = m.nodes[base_nodes // 2].node_id
    if inject_failure:
        injector = FailureInjector(engine, m)
        injector.subscribe_failure(lambda node, _t: launcher.handle_node_failure(node.node_id))
        injector.fail_node_at(failure_time, failed_node)

    orch = None
    if use_dyflow:
        spec = parse_dyflow_xml(lammps_xml())
        orch = configure_orchestrator(
            launcher, spec, warmup=120.0, settle=60.0, poll_interval=1.0, record_history=True
        )

    def done() -> bool:
        rec = launcher.record("LAMMPS")
        if rec.is_active or rec.current is None:
            return False
        finished = rec.current.notes.get("completed", False)
        return (finished or not use_dyflow) and launcher.all_idle()

    makespan = execute_scenario(engine, launcher, orch, max_time, stop_when=done)

    cp_path = f"cp/{WORKFLOW_ID}/LAMMPS"
    fs = launcher.hub.filesystem
    restart_step = None
    for inst in launcher.record("LAMMPS").all_instances():
        if inst.incarnation > 0:
            restart_step = inst.notes.get("first_step")
            break
    sim_rec = launcher.record("LAMMPS")
    return ScenarioResult(
        name="lammps",
        machine=machine,
        use_dyflow=use_dyflow,
        makespan=makespan,
        trace=launcher.trace,
        plans=orch.plans if orch else [],
        metric_history=orch.server.history if orch else [],
        launcher=launcher,
        meta={
            "failed_node": failed_node if inject_failure else None,
            "failure_time": failure_time if inject_failure else None,
            "restart_step": restart_step,
            "checkpoint_step": fs.read(cp_path)["step"] if fs.exists(cp_path) else None,
            "sim_completed": (
                sim_rec.current.notes.get("completed", False) if sim_rec.current else False
            ),
            "config": config,
        },
    )
