"""Shared scenario execution helper."""

from __future__ import annotations

from typing import Callable

from repro.errors import ReproError
from repro.runtime.sim_driver import DyflowOrchestrator
from repro.sim.engine import SimEngine
from repro.wms.launcher import Savanna


def execute_scenario(
    engine: SimEngine,
    launcher: Savanna,
    orchestrator: DyflowOrchestrator | None,
    max_time: float,
    stop_when: Callable[[], bool] | None = None,
) -> float:
    """Launch the workflow (and DYFLOW service), run, return the makespan.

    The makespan is the end time of the last task instance; ``max_time``
    is a hard simulation cap that raises if the scenario never converges.
    """
    launcher.launch_workflow()
    if orchestrator is not None:
        done = stop_when if stop_when is not None else launcher.all_idle
        orchestrator.start(stop_when=done)
    engine.run(until=max_time)
    ends = [
        inst.end_time
        for rec in launcher.records.values()
        for inst in rec.all_instances()
        if inst.end_time is not None
    ]
    if not ends:
        raise ReproError("scenario produced no finished task instances")
    still_active = [name for name, rec in launcher.records.items() if rec.is_active]
    if still_active:
        # Per-task progress evidence, so a hung tenant can be diagnosed
        # from the error alone instead of a trace dump: how many
        # instances each task spawned, and when it last showed signs of
        # life (heartbeat, else start, else launch).
        details = []
        for name in still_active:
            rec = launcher.records[name]
            instances = rec.all_instances()
            progress = [
                t
                for inst in instances
                for t in (inst.last_heartbeat, inst.start_time, inst.launch_time)
                if t is not None
            ]
            last = f"last progress t={max(progress):g}" if progress else "no progress seen"
            details.append(f"{name} ({len(instances)} instance(s), {last})")
        raise ReproError(
            f"scenario hit the {max_time}s cap with tasks still active: "
            + "; ".join(details)
        )
    return max(ends)
