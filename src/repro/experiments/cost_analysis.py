"""Cost analysis of DYFLOW itself (§4.6).

Measures, on a controlled mini-workflow:

* the event→response **lag** per source type — ≈0.2 s for a variable
  read from a file on disk vs ≈0.5 s for TAU data streamed via ADIOS2
  (plus the decision-frequency delay, which the paper excludes);
* the share of total response time spent waiting for tasks to terminate
  gracefully (paper: ≈97%);
* plan-formulation time (low — the protocol itself is cheap).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import ConstantModel, IterativeApp
from repro.cluster import Allocation, deepthought2, summit
from repro.core import (
    ActionType,
    GroupBySpec,
    PolicyApplication,
    PolicySpec,
    SensorSpec,
)
from repro.runtime import DyflowOrchestrator
from repro.sim import RngRegistry, SimEngine
from repro.wms import Savanna, TaskSpec, WorkflowSpec


@dataclass(frozen=True)
class CostReport:
    """One machine's §4.6 numbers."""

    machine: str
    stream_lag: float      # sensor read lag for streamed TAU data
    file_lag: float        # sensor read lag for file-on-disk data
    response_time: float   # plan finalize → actuation done
    stop_share: float      # fraction of response spent in graceful stops
    plan_time: float       # pure protocol formulation time


def run_cost_analysis(machine: str = "summit", step_time: float = 20.0) -> CostReport:
    """Drive one ADDCPU adjustment and account for every cost component."""
    engine = SimEngine()
    m = summit(4) if machine == "summit" else deepthought2(4)
    alloc = Allocation("a0", m, m.nodes, walltime_limit=1e6)
    work = TaskSpec(
        "Worker",
        lambda: IterativeApp(ConstantModel(step_time), total_steps=40),
        nprocs=10,
    )
    wf = WorkflowSpec("COST", [work])
    launcher = Savanna(engine, wf, alloc, rng=RngRegistry(0))
    orch = DyflowOrchestrator(launcher, warmup=30.0, settle=30.0, record_history=True)
    orch.add_sensor(
        SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),))
    )
    orch.monitor_task("Worker", "PACE", var="looptime")
    orch.add_policy(
        PolicySpec(
            "INC", "PACE", "GT", step_time / 2, ActionType.ADDCPU,
            history_window=3, history_op="AVG", frequency=5.0,
        )
    )
    orch.apply_policy(
        PolicyApplication("INC", "COST", ("Worker",), assess_task="Worker",
                          action_params={"adjust-by": 4})
    )
    launcher.launch_workflow()
    orch.start(stop_when=launcher.all_idle)
    engine.run(until=20_000)

    plans = [p for p in orch.plans if p.execution_end is not None]
    if not plans:
        raise RuntimeError("cost analysis produced no executed plan")
    plan = plans[0]
    # Lag between metric production and server receipt = source read lag;
    # measured here directly from the delivery model used by the driver.
    return CostReport(
        machine=machine,
        stream_lag=m.perf.stream_read_lag,
        file_lag=m.perf.file_read_lag,
        response_time=plan.response_time,
        stop_share=plan.stop_share(),
        plan_time=plan.execution_start - plan.created if plan.execution_start else 0.0,
    )
