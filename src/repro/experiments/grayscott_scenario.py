"""The Gray-Scott performance-driven experiment (§4.4, Figs. 8–9, Table 2).

An in-situ workflow of one simulation and four analyses starts
under-provisioned: the Isosurface analysis gates everyone near 40 s per
timestep, past the 36 s threshold needed to finish 50 steps inside the
30-minute allocation.  Two PACE policies (sliding-average over 10
values, evaluated every 5 s) correct it: DYFLOW grows Isosurface twice
(20→40→60 processes), victimizing PDF_Calc then FFT, restarting
Rendering each time through its tight dependency on Isosurface.
"""

from __future__ import annotations

from dataclasses import replace

from repro.apps.gray_scott import (
    ANALYSIS_TASKS,
    GrayScottConfig,
    TASK_PRIORITIES,
    make_analysis_app,
    make_gray_scott_app,
)
from repro.cluster import BatchScheduler, deepthought2, summit
from repro.experiments.results import ScenarioResult
from repro.experiments.runner import execute_scenario
from repro.sim import RngRegistry, SimEngine
from repro.telemetry import TelemetrySpec
from repro.wms import CouplingType, DependencySpec, Savanna, TaskSpec, WorkflowSpec
from repro.xmlspec import configure_orchestrator, parse_dyflow_xml

WORKFLOW_ID = "GS-WORKFLOW"

# Thresholds from §4.4: 30 min / 50 steps = 36 s max per step; decrease
# below two thirds of that.  Deepthought2 has a 35-minute limit → 42/28.
THRESHOLDS = {"summit": (36.0, 24.0), "deepthought2": (42.0, 28.0)}
TIME_LIMITS = {"summit": 30 * 60.0, "deepthought2": 35 * 60.0}
ADJUST_BY = {"summit": 20, "deepthought2": 40}


def gray_scott_xml(machine: str = "summit") -> str:
    """The Fig. 3–5 specification, parameterized per machine."""
    inc_thr, dec_thr = THRESHOLDS[machine]
    adjust = ADJUST_BY[machine]
    apply_blocks = "\n".join(
        f"""
    <apply-policy policyId="INC_ON_PACE" assess-task="{t}">
      <act-on-tasks> {t} </act-on-tasks>
      <action-params><param key="adjust-by" value="{adjust}"/></action-params>
    </apply-policy>
    <apply-policy policyId="DEC_ON_PACE" assess-task="{t}">
      <act-on-tasks> {t} </act-on-tasks>
      <action-params><param key="adjust-by" value="{adjust}"/></action-params>
    </apply-policy>"""
        for t in ANALYSIS_TASKS
    )
    priorities = "\n".join(
        f'        <task-priority name="{t}" priority="{p}"/>'
        for t, p in TASK_PRIORITIES.items()
    )
    monitor_blocks = "\n".join(
        f"""
      <monitor-task name="{t}" workflowId="{WORKFLOW_ID}">
        <use-sensor sensor-id="PACE" info="looptime">
          <parameter key="info-type" value="double"/>
        </use-sensor>
      </monitor-task>"""
        for t in ANALYSIS_TASKS
    )
    return f"""
<dyflow>
  <monitor>
    <sensors>
      <sensor id="PACE" type="TAUADIOS2">
        <group-by><group granularity="task" reduction-operation="MAX"/></group-by>
      </sensor>
    </sensors>
    <monitor-tasks>{monitor_blocks}
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="INC_ON_PACE">
        <eval operation="GT" threshold="{inc_thr}"/>
        <sensors-to-use><use-sensor id="PACE" granularity="task"/></sensors-to-use>
        <action> ADDCPU </action>
        <history window="10" operation="AVG"/>
        <frequency seconds="5"/>
      </policy>
      <policy id="DEC_ON_PACE">
        <eval operation="LT" threshold="{dec_thr}"/>
        <sensors-to-use><use-sensor id="PACE" granularity="task"/></sensors-to-use>
        <action> RMCPU </action>
        <history window="10" operation="AVG"/>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="{WORKFLOW_ID}">{apply_blocks}
    </apply-on>
  </decision>
  <arbitration>
    <rules>
      <rule-for workflowId="{WORKFLOW_ID}">
        <task-priorities>
{priorities}
        </task-priorities>
        <task-dependencies workflowId="{WORKFLOW_ID}">
          <task-dep name="Isosurface" type="TIGHT" parent="GrayScott"/>
          <task-dep name="Rendering" type="TIGHT" parent="Isosurface"/>
          <task-dep name="FFT" type="TIGHT" parent="GrayScott"/>
          <task-dep name="PDF_Calc" type="TIGHT" parent="GrayScott"/>
        </task-dependencies>
      </rule-for>
    </rules>
  </arbitration>
</dyflow>
"""


GRAY_SCOTT_XML = gray_scott_xml("summit")


def build_workflow(config: GrayScottConfig) -> WorkflowSpec:
    tasks = [
        TaskSpec(
            "GrayScott",
            lambda config=config: make_gray_scott_app(config),
            nprocs=config.gs_procs,
            procs_per_node=config.gs_procs_per_node,
        )
    ]
    for t in ANALYSIS_TASKS:
        tasks.append(
            TaskSpec(
                t,
                lambda t=t, config=config: make_analysis_app(t, config),
                nprocs=config.analysis_procs,
                procs_per_node=config.analysis_procs_per_node.get(t),
            )
        )
    deps = [
        DependencySpec("Isosurface", "GrayScott", CouplingType.TIGHT),
        DependencySpec("Rendering", "Isosurface", CouplingType.TIGHT),
        DependencySpec("FFT", "GrayScott", CouplingType.TIGHT),
        DependencySpec("PDF_Calc", "GrayScott", CouplingType.TIGHT),
    ]
    return WorkflowSpec(WORKFLOW_ID, tasks, deps)


def run_gray_scott_experiment(
    machine: str = "summit",
    use_dyflow: bool = True,
    seed: int = 0,
    enforce_walltime: bool | None = None,
    num_nodes: int | None = None,
    allow_victims: bool = True,
    settle: float = 120.0,
    graceful_stops: bool = True,
    history_window: int | None = None,
    telemetry: TelemetrySpec | None = None,
    observability=None,
    journal=None,
    crash_times: tuple[float, ...] = (),
    ignore_crash_requests: bool = False,
    resume_on_crash: bool = True,
    xml_extra: str = "",
    preflight: str = "off",
) -> ScenarioResult:
    """Run the under-provisioning experiment.

    With ``use_dyflow=False`` and walltime enforcement the run times out
    exactly as the paper describes; with enforcement off, the baseline's
    overtime factor (≈10–12%) can be measured.

    Crash recovery: pass a :class:`~repro.journal.JournalSpec` as
    *journal* to enable WAL journaling.  Each time in *crash_times*
    schedules a ``request_crash()`` against whichever orchestrator is
    live at that instant; with ``resume_on_crash`` a fresh orchestrator
    is bootstrapped from the same spec over the surviving launcher and
    resumed from the journal, so the run carries on.  A reference run
    sets ``ignore_crash_requests=True`` with the *same* ``crash_times``
    (the no-op requests keep the event-queue sequence numbers aligned) —
    its :func:`~repro.journal.scenario_fingerprint` must equal the
    crashed run's.  *xml_extra* is spliced into the ``<dyflow>`` document
    (e.g. a ``<resilience>`` section with an ``orch-crash-mtbf`` fault).
    """
    engine = SimEngine()
    config = (
        GrayScottConfig.summit() if machine == "summit" else GrayScottConfig.deepthought2()
    )
    if num_nodes is None:
        num_nodes = max(
            config.gs_procs // config.gs_procs_per_node,
            10 if machine == "summit" else 20,
        )
    m = summit(num_nodes) if machine == "summit" else deepthought2(num_nodes)
    limit = TIME_LIMITS[machine]
    if enforce_walltime is None:
        enforce_walltime = not use_dyflow
    scheduler = BatchScheduler(engine, m)
    walltime = limit if enforce_walltime else 4 * limit
    timed_out: list[float] = []
    launcher_box: list[Savanna] = []

    def on_timeout(_job) -> None:
        timed_out.append(engine.now)
        if launcher_box:
            launcher_box[0].handle_walltime_timeout()

    job = scheduler.submit(num_nodes, walltime_limit=walltime, on_timeout=on_timeout)
    engine.run(until=0)
    assert job.allocation is not None
    workflow = build_workflow(config)
    launcher = Savanna(engine, workflow, job.allocation, rng=RngRegistry(seed))
    launcher_box.append(launcher)
    def gs_done():
        return (not launcher.record("GrayScott").is_active
                and launcher.record("GrayScott").incarnations > 0
                and launcher.all_idle())
    orch = None
    crashes: list[float] = []
    orch_box: list = []
    if use_dyflow:
        xml = gray_scott_xml(machine)
        if xml_extra:
            xml = xml.replace("</dyflow>", xml_extra + "\n</dyflow>")
        spec = parse_dyflow_xml(xml)
        if history_window is not None:
            # Ablation hook: replace the paper's 10-value window.
            for pid, pol in list(spec.policies.items()):
                spec.policies[pid] = replace(pol, history_window=history_window)
        journal_spec = journal if journal is not None else spec.journal

        def build(tracer=None, with_journal=True, on_crash=None):
            return configure_orchestrator(
                launcher, spec, warmup=120.0, settle=settle, poll_interval=1.0,
                record_history=True, allow_victims=allow_victims,
                graceful_stops=graceful_stops, telemetry=telemetry, tracer=tracer,
                observability=observability,
                journal=journal_spec if with_journal else None,
                ignore_crash_requests=ignore_crash_requests, on_crash=on_crash,
                preflight=preflight,
            )

        def on_crash_handler(crashed):
            # The controller process died; the launcher, engine, tasks and
            # tracer all survive.  Bootstrap a replacement from the same
            # spec and resume it from the journal at the crash instant.
            crashes.append(engine.now)
            replacement = build(
                tracer=crashed.tracer, with_journal=False, on_crash=on_crash_handler
            )
            orch_box[0] = replacement
            replacement.resume_from(journal_spec.dir, stop_when=gs_done)

        handler = (
            on_crash_handler
            if (journal_spec is not None and resume_on_crash)
            else None
        )
        orch = build(on_crash=handler)
        orch_box.append(orch)
        for t in crash_times:
            engine.call_at(float(t), lambda: orch_box[0].request_crash(), name="crash-request")
    makespan = execute_scenario(engine, launcher, orch, max_time=4 * limit, stop_when=gs_done)
    if orch_box:
        orch = orch_box[0]
    fabric_meta = None
    if orch is not None and getattr(orch, "network", None) is not None:
        link_counters: dict[str, int] = {}
        for link in orch.links.values():
            for name in link._COUNTERS:
                link_counters[name] = link_counters.get(name, 0) + getattr(link, name)
        fabric_meta = {
            "links": link_counters,
            "server": {
                "offered": orch.server.offered,
                "received": orch.server.received,
                "duplicates": orch.server.duplicates,
                "shed_sensor": orch.server.shed_sensor,
                "shed_health": orch.server.shed_health,
            },
            "degraded_entered": orch.degrade.entered,
            "degraded_exited": orch.degrade.exited,
            "staleness_p95": orch.server.ingest_staleness.p95,
        }
    return ScenarioResult(
        name="gray-scott",
        machine=machine,
        use_dyflow=use_dyflow,
        makespan=makespan,
        trace=launcher.trace,
        plans=orch.plans if orch else [],
        metric_history=orch.server.history if orch else [],
        launcher=launcher,
        tracer=orch.tracer if orch else None,
        meta={
            "time_limit": limit,
            "timed_out": bool(timed_out),
            "timeout_at": timed_out[0] if timed_out else None,
            "config": config,
            "crashes": list(crashes),
            "health_alerts": list(orch.health.alerts) if orch is not None and orch.health is not None else [],
            "fabric": fabric_meta,
        },
    )
