"""Scenario result container shared by every experiment reproduction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.events import MetricUpdate
from repro.core.lowlevel import ActionPlan
from repro.sim.trace import TraceRecorder
from repro.telemetry import NullTracer, Tracer
from repro.wms.launcher import Savanna


@dataclass
class ScenarioResult:
    """Everything a benchmark needs from one experiment run."""

    name: str
    machine: str
    use_dyflow: bool
    makespan: float
    trace: TraceRecorder
    plans: list[ActionPlan] = field(default_factory=list)
    metric_history: list[MetricUpdate] = field(default_factory=list)
    launcher: Savanna | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    tracer: Tracer | NullTracer | None = None

    # -- derived views -----------------------------------------------------------
    def response_times(self) -> list[tuple[str, float]]:
        return [
            (p.plan_id, p.response_time) for p in self.plans if p.execution_end is not None
        ]

    def task_runs(self, task: str) -> list[tuple[float, float]]:
        """(start, end) of every instance of *task*, in time order."""
        return [
            (s.start, s.end)
            for s in self.trace.spans_for(track=task, category="task")
            if s.end is not None
        ]

    def pace_series(self, task: str, sensor_id: str = "PACE") -> list[tuple[float, float]]:
        """(time, value) pairs of a task's metric history (Fig. 9 data)."""
        return [
            (u.time, u.value)
            for u in self.metric_history
            if u.sensor_id == sensor_id and u.task == task
        ]

    def final_nprocs(self, task: str) -> int:
        assert self.launcher is not None
        rec = self.launcher.record(task)
        return rec.current.nprocs if rec.current is not None else 0

    def incarnations(self, task: str) -> int:
        assert self.launcher is not None
        return self.launcher.record(task).incarnations

    def summary_rows(self) -> list[dict[str, Any]]:
        """One row per task: instances, final size, end state — for tables."""
        assert self.launcher is not None
        rows = []
        for name, rec in self.launcher.records.items():
            current = rec.current
            rows.append(
                {
                    "task": name,
                    "instances": rec.incarnations,
                    "final_nprocs": current.nprocs if current else 0,
                    "state": current.state.value if current else "never-started",
                    "exit_code": current.exit_code if current else None,
                    "last_step": current.notes.get("last_step") if current else None,
                }
            )
        return rows
