"""Programmatic paper-vs-measured report over all §4 experiments.

``build_report()`` runs every experiment on both machine models and
returns structured rows; ``format_report()`` renders them as the table
EXPERIMENTS.md is derived from.  Used by ``examples/reproduce_all.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.experiments.cost_analysis import run_cost_analysis
from repro.experiments.grayscott_scenario import run_gray_scott_experiment
from repro.experiments.lammps_scenario import run_lammps_experiment
from repro.experiments.xgc_scenario import run_xgc_experiment


@dataclass
class ReportRow:
    """One paper-claim vs measured-value comparison."""

    experiment: str
    machine: str
    quantity: str
    paper: str
    measured: str
    ok: bool


@dataclass
class Report:
    rows: list[ReportRow] = field(default_factory=list)

    def add(self, experiment: str, machine: str, quantity: str, paper: str,
            measured: str, ok: bool) -> None:
        self.rows.append(ReportRow(experiment, machine, quantity, paper, measured, ok))

    @property
    def all_ok(self) -> bool:
        return all(r.ok for r in self.rows)

    def failures(self) -> list[ReportRow]:
        return [r for r in self.rows if not r.ok]


def _xgc_rows(report: Report, machine: str) -> None:
    res = run_xgc_experiment(machine, use_dyflow=True)
    base = run_xgc_experiment(machine, use_dyflow=False)
    ratio = base.makespan / res.makespan
    progress = res.meta["final_progress"]
    xgca_starts = [
        p.response_time for p in res.plans
        if len(p.ops) == 1 and p.ops[0].task == "XGCA" and p.ops[0].op == "start_task"
    ]
    report.add("xgc (§4.3)", machine, "XGCa waiting-queue starts",
               "3 starts", f"{len(xgca_starts)} starts", len(xgca_starts) == 3)
    report.add("xgc (§4.3)", machine, "final global step", "502",
               str(progress), 500 < progress < 506)
    report.add("xgc (§4.3)", machine, "XGC1-only overhead", "≈25%",
               f"{100 * (ratio - 1):.0f}%", 1.15 < ratio < 1.45)


def _gs_rows(report: Report, machine: str) -> None:
    res = run_gray_scott_experiment(machine, use_dyflow=True)
    base = run_gray_scott_experiment(machine, use_dyflow=False, enforce_walltime=False)
    plans = [p for p in res.plans if any("INC_ON_PACE" in a for a in p.accepted)]
    limit = res.meta["time_limit"]
    if machine == "summit":
        report.add("gray-scott (§4.4)", machine, "adjustments",
                   "2 (PDF then FFT victims)",
                   f"{len(plans)} ({[v for p in plans for v in p.victims]})",
                   len(plans) == 2 and plans[0].victims == ["PDF_Calc"]
                   and plans[1].victims == ["FFT"])
    else:
        report.add("gray-scott (§4.4)", machine, "adjustments",
                   "1 (PDF+FFT victims, 87 s)",
                   f"{len(plans)} (resp {plans[0].response_time:.0f}s)" if plans else "0",
                   len(plans) == 1 and set(plans[0].victims) == {"PDF_Calc", "FFT"})
    report.add("gray-scott (§4.4)", machine, "finishes inside limit", "yes",
               f"{res.makespan:.0f}s < {limit:.0f}s", res.makespan < limit)
    overtime = base.makespan / limit - 1
    report.add("gray-scott (§4.4)", machine, "static overtime", "10–12%",
               f"{100 * overtime:.0f}%", 0.05 < overtime < 0.25)


def _lammps_rows(report: Report, machine: str) -> None:
    res = run_lammps_experiment(machine, use_dyflow=True)
    plan = [p for p in res.plans if p.ops][0]
    report.add("lammps (§4.5)", machine, "simulation completes after failure",
               "yes", str(res.meta["sim_completed"]), bool(res.meta["sim_completed"]))
    if machine == "summit":
        report.add("lammps (§4.5)", machine, "restart checkpoint step", "412",
                   str(res.meta["restart_step"]), res.meta["restart_step"] == 412)
    report.add("lammps (§4.5)", machine, "restart response",
               "≈0.2 s (Summit) / 0.4 s (DT2)",
               f"{plan.response_time:.2f}s", plan.response_time < 3.0)


def _cost_rows(report: Report, machine: str) -> None:
    cost = run_cost_analysis(machine)
    report.add("cost (§4.6)", machine, "file vs stream lag", "0.2 s vs 0.5 s",
               f"{cost.file_lag:.2f}s vs {cost.stream_lag:.2f}s",
               cost.stream_lag > cost.file_lag and cost.file_lag < 0.5)
    report.add("cost (§4.6)", machine, "graceful-stop share of response", "≈97%",
               f"{cost.stop_share:.0%}", cost.stop_share > 0.9)


SECTIONS: list[Callable[[Report, str], None]] = [_xgc_rows, _gs_rows, _lammps_rows, _cost_rows]


def build_report(machines: tuple[str, ...] = ("summit", "deepthought2")) -> Report:
    """Run every experiment on every machine and collect comparisons."""
    report = Report()
    for machine in machines:
        for section in SECTIONS:
            section(report, machine)
    return report


def format_report(report: Report) -> str:
    """Render the report as an aligned text table."""
    widths = {
        "experiment": max(len(r.experiment) for r in report.rows),
        "machine": max(len(r.machine) for r in report.rows),
        "quantity": max(len(r.quantity) for r in report.rows),
        "paper": max(len(r.paper) for r in report.rows),
        "measured": max(len(r.measured) for r in report.rows),
    }
    lines = [
        f"{'EXPERIMENT':<{widths['experiment']}}  {'MACHINE':<{widths['machine']}}  "
        f"{'QUANTITY':<{widths['quantity']}}  {'PAPER':<{widths['paper']}}  "
        f"{'MEASURED':<{widths['measured']}}  OK"
    ]
    for r in report.rows:
        lines.append(
            f"{r.experiment:<{widths['experiment']}}  {r.machine:<{widths['machine']}}  "
            f"{r.quantity:<{widths['quantity']}}  {r.paper:<{widths['paper']}}  "
            f"{r.measured:<{widths['measured']}}  {'✓' if r.ok else '✗'}"
        )
    status = "ALL SHAPES REPRODUCED" if report.all_ok else (
        f"{len(report.failures())} COMPARISONS OFF"
    )
    lines.append(f"-- {status} ({len(report.rows)} comparisons) --")
    return "\n".join(lines)
