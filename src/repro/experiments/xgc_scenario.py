"""The XGC1–XGCa science-driven orchestration experiment (§4.3, Fig. 6).

Two fusion codes alternate every 100 global timesteps toward a 500-step
target; a proxy error condition switches from XGCa to XGC1 at step 374;
everything stops past step 500.  Three policies over one DISKSCAN
sensor express all of it — the XML below mirrors the paper's Fig. 7.
"""

from __future__ import annotations

from repro.apps.xgc import XGC1_STEP_TIME, XGC_REF_PROCS, XgcApp, make_xgc1, make_xgca
from repro.cluster import BatchScheduler, deepthought2, summit
from repro.experiments.results import ScenarioResult
from repro.experiments.runner import execute_scenario
from repro.sim import RngRegistry, SimEngine
from repro.wms import CouplingType, DependencySpec, Savanna, TaskSpec, WorkflowSpec
from repro.xmlspec import configure_orchestrator, parse_dyflow_xml

WORKFLOW_ID = "FUSION-WORKFLOW"
TARGET_STEPS = 500
SWITCH_STEP = 374
PROCS_PER_NODE = 14
NUM_NODES = 14  # 192 processes at 14 per node (Table 1)

XGC_XML = f"""
<dyflow>
  <monitor>
    <sensors>
      <sensor id="NSTEPS" type="DISKSCAN">
        <group-by>
          <group granularity="task" reduction-operation="MAX"/>
          <group granularity="workflow" reduction-operation="MAX"/>
        </group-by>
      </sensor>
    </sensors>
    <monitor-tasks>
      <monitor-task name="XGC1" workflowId="{WORKFLOW_ID}" info-source="out/{WORKFLOW_ID}/XGC1.out.*">
        <use-sensor sensor-id="NSTEPS" info="nsteps"/>
      </monitor-task>
      <monitor-task name="XGCA" workflowId="{WORKFLOW_ID}" info-source="out/{WORKFLOW_ID}/XGCA.out.*">
        <use-sensor sensor-id="NSTEPS" info="nsteps"/>
      </monitor-task>
    </monitor-tasks>
  </monitor>
  <decision>
    <policies>
      <policy id="RESTART_UNTIL_COND">
        <eval operation="LT" threshold="{TARGET_STEPS}"/>
        <sensors-to-use><use-sensor id="NSTEPS" granularity="workflow"/></sensors-to-use>
        <action> START </action>
        <frequency seconds="5"/>
      </policy>
      <policy id="SWITCH_ON_COND">
        <eval operation="EQ" threshold="{SWITCH_STEP}"/>
        <sensors-to-use><use-sensor id="NSTEPS" granularity="workflow"/></sensors-to-use>
        <action> SWITCH </action>
        <frequency seconds="5"/>
      </policy>
      <policy id="STOP_ON_COND">
        <eval operation="GT" threshold="{TARGET_STEPS}"/>
        <sensors-to-use><use-sensor id="NSTEPS" granularity="workflow"/></sensors-to-use>
        <action> STOP </action>
        <frequency seconds="5"/>
      </policy>
    </policies>
    <apply-on workflowId="{WORKFLOW_ID}">
      <apply-policy policyId="RESTART_UNTIL_COND" assess-task="XGCA">
        <act-on-tasks> XGC1 </act-on-tasks>
        <action-params><param key="restart-script" value="restart-xgc1.sh"/></action-params>
      </apply-policy>
      <apply-policy policyId="RESTART_UNTIL_COND" assess-task="XGC1">
        <act-on-tasks> XGCA </act-on-tasks>
      </apply-policy>
      <apply-policy policyId="SWITCH_ON_COND" assess-task="XGCA">
        <act-on-tasks> XGC1 </act-on-tasks>
        <action-params><param key="restart-script" value="restart-xgc1.sh"/></action-params>
      </apply-policy>
      <apply-policy policyId="STOP_ON_COND" assess-task="XGCA">
        <act-on-tasks> XGCA XGC1 </act-on-tasks>
      </apply-policy>
    </apply-on>
  </decision>
  <arbitration>
    <rules>
      <rule-for workflowId="{WORKFLOW_ID}">
        <task-priorities>
          <task-priority name="XGC1" priority="0"/>
          <task-priority name="XGCA" priority="0"/>
        </task-priorities>
        <policy-priorities>
          <policy-priority name="STOP_ON_COND" priority="0"/>
          <policy-priority name="SWITCH_ON_COND" priority="1"/>
          <policy-priority name="RESTART_UNTIL_COND" priority="2"/>
        </policy-priorities>
      </rule-for>
    </rules>
  </arbitration>
</dyflow>
"""


def _make_machine(machine: str):
    # Each XGC process runs 10 threads (Table 1), so a node hosts 14
    # process slots — the allocation fits exactly one code at a time,
    # which is why the paper's XGCa "waits in the queue".
    if machine == "summit":
        return summit(NUM_NODES, cores_per_node=PROCS_PER_NODE)
    if machine == "deepthought2":
        return deepthought2(NUM_NODES, cores_per_node=PROCS_PER_NODE)
    raise ValueError(f"unknown machine {machine!r}")


def build_workflow(use_dyflow: bool) -> WorkflowSpec:
    """The two alternating codes; XGCa starts parked (loose dependency).

    Without DYFLOW the baseline completes the whole 500+ steps with XGC1
    alone ("the simulation completes only using XGC1", §4.3).
    """
    if use_dyflow:
        tasks = [
            TaskSpec("XGC1", lambda: make_xgc1(), nprocs=XGC_REF_PROCS,
                     procs_per_node=PROCS_PER_NODE, autostart=True),
            TaskSpec("XGCA", lambda: make_xgca(), nprocs=XGC_REF_PROCS,
                     procs_per_node=PROCS_PER_NODE, autostart=False),
        ]
    else:
        # Baseline: XGC1 completes every step in one long run.
        tasks = [
            TaskSpec(
                "XGC1",
                lambda: XgcApp(
                    "XGC1",
                    XGC1_STEP_TIME,
                    total_steps=TARGET_STEPS + 2,
                    run_steps=TARGET_STEPS + 2,
                ),
                nprocs=XGC_REF_PROCS,
                procs_per_node=PROCS_PER_NODE,
                autostart=True,
            ),
        ]
    deps = (
        [DependencySpec("XGCA", "XGC1", CouplingType.LOOSE)] if use_dyflow else []
    )
    return WorkflowSpec(WORKFLOW_ID, tasks, deps)


def run_xgc_experiment(
    machine: str = "summit",
    use_dyflow: bool = True,
    seed: int = 0,
    max_time: float = 30_000.0,
) -> ScenarioResult:
    """Run the fusion experiment; returns trace, plans, response times."""
    engine = SimEngine()
    m = _make_machine(machine)
    scheduler = BatchScheduler(engine, m)
    job = scheduler.submit(NUM_NODES, walltime_limit=max_time)
    engine.run(until=0)
    assert job.allocation is not None
    workflow = build_workflow(use_dyflow)
    launcher = Savanna(engine, workflow, job.allocation, rng=RngRegistry(seed))
    orch = None
    if use_dyflow:
        spec = parse_dyflow_xml(XGC_XML)
        orch = configure_orchestrator(
            launcher, spec, warmup=120.0, settle=30.0, poll_interval=1.0, record_history=True
        )

    def progress() -> int:
        fs = launcher.hub.filesystem
        path = f"fusion/{WORKFLOW_ID}/progress"
        return int(fs.read(path)["step"]) if fs.exists(path) else 0

    stop_when = (lambda: progress() > TARGET_STEPS and launcher.all_idle()) if use_dyflow else None
    makespan = execute_scenario(engine, launcher, orch, max_time, stop_when)
    return ScenarioResult(
        name="xgc",
        machine=machine,
        use_dyflow=use_dyflow,
        makespan=makespan,
        trace=launcher.trace,
        plans=orch.plans if orch else [],
        metric_history=orch.server.history if orch else [],
        launcher=launcher,
        meta={"final_progress": progress(), "target": TARGET_STEPS},
    )
