"""Heartbeat watchdog: hang/straggler detection in the Monitor stage.

A crashed task is loud (exit code, STATUS sensor); a *hung* task is
silent — it holds its resources and stops making progress.  The watchdog
closes that gap: every running instance carries a heartbeat (stamped by
the app at each completed step), and the Monitor server's per-task
last-update times provide a second, transport-level signal.  A task
whose freshest signal is older than the timeout is killed with a
distinguishable exit code (> 128) so the ordinary failure machinery —
launcher retry or a RESTART_ON_FAILURE policy — relaunches it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.resilience.spec import WatchdogSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.monitor import MonitorServer
    from repro.wms.launcher import Savanna


@dataclass(frozen=True)
class WatchdogKill:
    """One watchdog-triggered kill, for post-run inspection."""

    time: float
    task: str
    last_heartbeat: float


class HeartbeatWatchdog:
    """Polls running instances and kills the ones that stopped beating."""

    def __init__(
        self,
        launcher: "Savanna",
        spec: WatchdogSpec,
        server: "MonitorServer | None" = None,
        on_hang: Callable[[str, float], None] | None = None,
    ) -> None:
        spec.validate()
        self.launcher = launcher
        self.spec = spec
        self.server = server
        self.on_hang = on_hang
        self.kills: list[WatchdogKill] = []
        self._running = False

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Spawn the watchdog loop as a simulated process."""
        if self._running:
            return
        self._running = True
        self.launcher.engine.process(self._loop(), name="watchdog")

    def stop(self) -> None:
        self._running = False

    # -- internals ---------------------------------------------------------------
    def _last_signal(self, task: str, instance) -> float:
        """Freshest evidence of life: app heartbeat, monitor update, or start."""
        last = instance.start_time if instance.start_time is not None else instance.launch_time
        if instance.last_heartbeat is not None:
            last = max(last, instance.last_heartbeat)
        if self.server is not None:
            seen = self.server.last_seen.get(task)
            if seen is not None:
                last = max(last, seen)
        return last if last is not None else self.launcher.engine.now

    def _loop(self):
        eng = self.launcher.engine
        while self._running:
            now = eng.now
            for name, rec in self.launcher.records.items():
                instance = rec.current
                if instance is None or not rec.is_running:
                    continue
                last = self._last_signal(name, instance)
                if now - last <= self.spec.heartbeat_timeout:
                    continue
                self.kills.append(WatchdogKill(now, name, last))
                self.launcher.trace.point(
                    now, f"watchdog-kill:{name}", category="failure",
                    last_heartbeat=last, timeout=self.spec.heartbeat_timeout,
                )
                eng.process(
                    self.launcher.signal_kill_task(
                        name, code=self.spec.kill_code, cause="watchdog"
                    ),
                    name=f"watchdog-kill:{name}",
                )
                if self.on_hang is not None:
                    self.on_hang(name, now)
            yield eng.timeout(self.spec.poll, name="watchdog-poll")
