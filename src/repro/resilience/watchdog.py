"""Heartbeat watchdog: hang/straggler detection in the Monitor stage.

A crashed task is loud (exit code, STATUS sensor); a *hung* task is
silent — it holds its resources and stops making progress.  The watchdog
closes that gap: every running instance carries a heartbeat (stamped by
the app at each completed step), and the Monitor server's per-task
last-update times provide a second, transport-level signal.  A task
whose freshest signal is older than the timeout is killed with a
distinguishable exit code (> 128) so the ordinary failure machinery —
launcher retry or a RESTART_ON_FAILURE policy — relaunches it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.resilience.spec import WatchdogSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.monitor import MonitorServer
    from repro.wms.launcher import Savanna


@dataclass(frozen=True)
class WatchdogKill:
    """One watchdog-triggered kill, for post-run inspection."""

    time: float
    task: str
    last_heartbeat: float


class HeartbeatWatchdog:
    """Polls running instances and kills the ones that stopped beating.

    The poll loop is a self-rescheduling engine callback (not a simulated
    process) so a crashing orchestrator can cancel the pending poll and a
    resumed one can re-register it at the exact journaled heap slot —
    same-timestamp tie-breaking stays bit-identical across a crash.
    """

    def __init__(
        self,
        launcher: "Savanna",
        spec: WatchdogSpec,
        server: "MonitorServer | None" = None,
        on_hang: Callable[[str, float], None] | None = None,
    ) -> None:
        spec.validate()
        self.launcher = launcher
        self.spec = spec
        self.server = server
        self.on_hang = on_hang
        self.kills: list[WatchdogKill] = []
        self._running = False
        self._event = None  # pending poll's SimEvent

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Begin the poll chain (first scan at the current time)."""
        if self._running:
            return
        self._running = True
        self._event = self.launcher.engine.call_after(0.0, self._tick, name="watchdog")

    def stop(self) -> None:
        self._running = False

    # -- crash recovery -----------------------------------------------------------
    def suspend(self) -> None:
        """Orchestrator crash: drop the pending poll without firing it."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def state_dict(self) -> dict:
        ev = self._event
        pending = self._running and ev is not None and not ev.cancelled
        return {
            "running": self._running,
            "next_poll": ev.heap_time if pending else None,
            "seq": ev.heap_seq if pending else None,
            "kills": [[k.time, k.task, k.last_heartbeat] for k in self.kills],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the kill ledger and re-register the pending poll.

        The poll is pushed back at its journaled ``(time, seq)`` heap slot
        so it fires in the same order relative to every other event as it
        would have in an uninterrupted run.
        """
        self.kills = [
            WatchdogKill(float(t), task, float(hb)) for t, task, hb in state.get("kills", [])
        ]
        self._running = bool(state.get("running", False))
        next_poll = state.get("next_poll")
        if self._running and next_poll is not None:
            self._event = self.launcher.engine.call_at(
                float(next_poll), self._tick, name="watchdog-poll", seq=state.get("seq")
            )

    # -- internals ---------------------------------------------------------------
    def _last_signal(self, task: str, instance) -> float:
        """Freshest evidence of life: app heartbeat, monitor update, or start."""
        last = instance.start_time if instance.start_time is not None else instance.launch_time
        if instance.last_heartbeat is not None:
            last = max(last, instance.last_heartbeat)
        if self.server is not None:
            seen = self.server.last_seen.get(task)
            if seen is not None:
                last = max(last, seen)
        return last if last is not None else self.launcher.engine.now

    def _tick(self) -> None:
        if not self._running:
            self._event = None
            return
        eng = self.launcher.engine
        now = eng.now
        for name, rec in self.launcher.records.items():
            instance = rec.current
            if instance is None or not rec.is_running:
                continue
            last = self._last_signal(name, instance)
            if now - last <= self.spec.heartbeat_timeout:
                continue
            self.kills.append(WatchdogKill(now, name, last))
            self.launcher.trace.point(
                now, f"watchdog-kill:{name}", category="failure",
                last_heartbeat=last, timeout=self.spec.heartbeat_timeout,
            )
            eng.process(
                self.launcher.signal_kill_task(
                    name, code=self.spec.kill_code, cause="watchdog"
                ),
                name=f"watchdog-kill:{name}",
            )
            if self.on_hang is not None:
                self.on_hang(name, now)
        self._event = eng.call_after(self.spec.poll, self._tick, name="watchdog-poll")
