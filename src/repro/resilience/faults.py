"""The chaos engine: stochastic fault injection on the simulation clock.

Generalizes the seed's single scheduled node failure (§4.5) into a
stochastic fault model in the spirit of WfCommons' synthetic scenarios:
node crashes with exponential/Weibull interarrivals, task crashes, task
hangs, and staging message drops.  Every draw — interarrival times,
victim picks, drop decisions — comes from its own *named*
:class:`~repro.sim.rng.RngRegistry` stream, so a chaos run with a fixed
seed is bit-identical across invocations and new fault classes never
perturb existing ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.failures import FailureInjector
from repro.resilience.spec import FaultModelSpec
from repro.sim.rng import RngRegistry
from repro.util.jsonmsg import Envelope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.wms.launcher import Savanna

# Exit codes for injected task faults, distinguishable in STATUS records:
# 137 is reserved for node-death kills (handle_node_failure).
TASK_CRASH_CODE = 139


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for post-run inspection and replay checks."""

    time: float
    kind: str  # "node-crash" | "task-crash" | "task-hang" | "msg-drop"
    target: str


class ChaosEngine:
    """Schedules stochastic faults against one launcher's allocation."""

    def __init__(
        self,
        launcher: "Savanna",
        model: FaultModelSpec,
        rng: RngRegistry | None = None,
        injector: FailureInjector | None = None,
    ) -> None:
        model.validate()
        self.launcher = launcher
        self.engine = launcher.engine
        self.model = model
        self.rng = rng if rng is not None else launcher.rng
        if injector is None:
            injector = FailureInjector(self.engine, launcher.machine)
            injector.subscribe_failure(
                lambda node, _t: launcher.handle_node_failure(node.node_id)
            )
        self.injector = injector
        self.history: list[FaultEvent] = []
        self.dropped_envelopes = 0
        self._running = False

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Spawn one injection process per enabled fault class."""
        if self._running:
            return
        self._running = True
        if self.model.node_mtbf > 0:
            self.engine.process(self._node_crash_loop(), name="chaos:node-crash")
        if self.model.task_crash_mtbf > 0:
            self.engine.process(self._task_crash_loop(), name="chaos:task-crash")
        if self.model.task_hang_mtbf > 0:
            self.engine.process(self._task_hang_loop(), name="chaos:task-hang")
        if self.model.stage_drop_prob > 0:
            hub = self.launcher.hub
            for name in hub.channels():
                self._attach_channel(hub.get_channel(name))
            hub.on_new_channel = self._attach_channel

    def stop(self) -> None:
        """Stop injecting; in-flight loops exit at their next wake-up."""
        self._running = False

    # -- injection loops ---------------------------------------------------------
    def _node_crash_loop(self):
        times = self.rng.stream("chaos:node-crash")
        pick = self.rng.stream("chaos:node-pick")
        while self._running:
            yield self.engine.timeout(self.model.interarrival(self.model.node_mtbf, times))
            if not self._running:
                return
            up = sorted(n.node_id for n in self.launcher.allocation.nodes if n.is_up)
            if not up:
                continue
            node_id = up[int(pick.integers(len(up)))]
            self.injector.fail_node_now(node_id)
            self._record("node-crash", node_id)
            if self.model.node_repair_time > 0:
                self.injector.recover_node_at(
                    self.engine.now + self.model.node_repair_time, node_id
                )

    def _task_crash_loop(self):
        times = self.rng.stream("chaos:task-crash")
        pick = self.rng.stream("chaos:task-pick")
        while self._running:
            yield self.engine.timeout(float(times.exponential(self.model.task_crash_mtbf)))
            if not self._running:
                return
            running = sorted(self.launcher.running_tasks())
            if not running:
                continue
            name = running[int(pick.integers(len(running)))]
            self.engine.process(
                self.launcher.signal_kill_task(name, code=TASK_CRASH_CODE, cause="chaos"),
                name=f"chaos:kill:{name}",
            )
            self._record("task-crash", name)

    def _task_hang_loop(self):
        times = self.rng.stream("chaos:task-hang")
        pick = self.rng.stream("chaos:hang-pick")
        while self._running:
            yield self.engine.timeout(float(times.exponential(self.model.task_hang_mtbf)))
            if not self._running:
                return
            candidates = sorted(
                name
                for name in self.launcher.running_tasks()
                if self.launcher.record(name).current is not None
                and self.launcher.record(name).current.ctx is not None
            )
            if not candidates:
                continue
            name = candidates[int(pick.integers(len(candidates)))]
            self.launcher.record(name).current.ctx.inject_hang()
            self._record("task-hang", name)

    # -- staging drops (installed on every hub channel) ---------------------------
    def _attach_channel(self, channel) -> None:
        channel.drop_filter = self._drop_staged_step

    def _drop_staged_step(self, channel_name: str, _data) -> bool:
        if not self._running:
            return False
        if float(self.rng.stream("chaos:stage-drop").random()) >= self.model.stage_drop_prob:
            return False
        self._record("stage-drop", channel_name)
        return True

    # -- message drops (consulted by the orchestrator's delivery path) -----------
    def drop_envelope(self, env: Envelope) -> bool:
        """Decide whether to drop one Monitor client→server envelope."""
        if self.model.msg_drop_prob <= 0:
            return False
        if float(self.rng.stream("chaos:msg-drop").random()) >= self.model.msg_drop_prob:
            return False
        self.dropped_envelopes += 1
        self._record("msg-drop", env.sender)
        return True

    # -- bookkeeping -------------------------------------------------------------
    def _record(self, kind: str, target: str) -> None:
        self.history.append(FaultEvent(self.engine.now, kind, target))
        self.launcher.trace.point(
            self.engine.now, f"chaos:{kind}:{target}", category="failure"
        )
