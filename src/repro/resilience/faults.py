"""The chaos engine: stochastic fault injection on the simulation clock.

Generalizes the seed's single scheduled node failure (§4.5) into a
stochastic fault model in the spirit of WfCommons' synthetic scenarios:
node crashes with exponential/Weibull interarrivals, task crashes, task
hangs, orchestrator (controller) crashes, and staging message drops.
Every draw — interarrival times, victim picks, drop decisions — comes
from its own *named* :class:`~repro.sim.rng.RngRegistry` stream, so a
chaos run with a fixed seed is bit-identical across invocations and new
fault classes never perturb existing ones.

Injection loops are self-rescheduling engine callbacks (not simulated
processes): each fault class keeps exactly one pending event whose
absolute fire time was already drawn.  A crashing orchestrator cancels
those events and journals their ``(time, seq)`` heap slots; resume
re-registers them *without redrawing*, so injected faults land at the
same instants as in an uninterrupted run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.failures import FailureInjector
from repro.resilience.spec import FaultModelSpec
from repro.sim.rng import RngRegistry
from repro.util.jsonmsg import Envelope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.wms.launcher import Savanna

# Exit codes for injected task faults, distinguishable in STATUS records:
# 137 is reserved for node-death kills (handle_node_failure).
TASK_CRASH_CODE = 139

# Every named RNG stream the engine may draw from, for state capture.
CHAOS_STREAMS = (
    "chaos:node-crash",
    "chaos:node-pick",
    "chaos:task-crash",
    "chaos:task-pick",
    "chaos:task-hang",
    "chaos:hang-pick",
    "chaos:orch-crash",
    "chaos:stage-drop",
    "chaos:msg-drop",
)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for post-run inspection and replay checks."""

    time: float
    kind: str  # "node-crash" | "task-crash" | "task-hang" | "orch-crash" | "msg-drop"
    target: str


class ChaosEngine:
    """Schedules stochastic faults against one launcher's allocation."""

    def __init__(
        self,
        launcher: "Savanna",
        model: FaultModelSpec,
        rng: RngRegistry | None = None,
        injector: FailureInjector | None = None,
    ) -> None:
        model.validate()
        self.launcher = launcher
        self.engine = launcher.engine
        self.model = model
        self.rng = rng if rng is not None else launcher.rng
        if injector is None:
            injector = FailureInjector(self.engine, launcher.machine)
            injector.subscribe_failure(
                lambda node, _t: launcher.handle_node_failure(node.node_id)
            )
        self.injector = injector
        self.history: list[FaultEvent] = []
        self.dropped_envelopes = 0
        self._running = False
        # The orchestrator under chaos; orch-crash fires call its
        # request_crash().  Set by the orchestrator when it adopts us.
        self.orchestrator = None
        # kind -> (stage, SimEvent): the one pending callback per class.
        # stage "arm" = draw-then-schedule bootstrap, "fire" = injection.
        self._pending: dict[str, tuple[str, object]] = {}

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Arm one injection chain per enabled fault class."""
        if self._running:
            return
        self._running = True
        if self.model.node_mtbf > 0:
            self._set_pending("node-crash", "arm", 0.0)
        if self.model.task_crash_mtbf > 0:
            self._set_pending("task-crash", "arm", 0.0)
        if self.model.task_hang_mtbf > 0:
            self._set_pending("task-hang", "arm", 0.0)
        if self.model.orch_crash_mtbf > 0:
            self._set_pending("orch-crash", "arm", 0.0)
        if self.model.stage_drop_prob > 0:
            hub = self.launcher.hub
            for name in hub.channels():
                self._attach_channel(hub.get_channel(name))
            hub.on_new_channel = self._attach_channel

    def stop(self) -> None:
        """Stop injecting; pending events become no-ops when they fire."""
        self._running = False

    # -- scheduling ---------------------------------------------------------------
    def _stage_fn(self, kind: str, stage: str):
        names = {
            "node-crash": ("_arm_node_crash", "_fire_node_crash"),
            "task-crash": ("_arm_task_crash", "_fire_task_crash"),
            "task-hang": ("_arm_task_hang", "_fire_task_hang"),
            "orch-crash": ("_arm_orch_crash", "_fire_orch_crash"),
        }[kind]
        return getattr(self, names[0] if stage == "arm" else names[1])

    def _set_pending(self, kind: str, stage: str, delay: float) -> None:
        ev = self.engine.call_after(delay, self._stage_fn(kind, stage), name=f"chaos:{kind}")
        self._pending[kind] = (stage, ev)

    def _arm(self, kind: str, delay: float) -> None:
        """Schedule the next fire of *kind* after an already-drawn delay."""
        ev = self.engine.call_after(delay, self._stage_fn(kind, "fire"), name=f"chaos:{kind}")
        self._pending[kind] = ("fire", ev)

    # -- injection chains ---------------------------------------------------------
    def _arm_node_crash(self) -> None:
        if not self._running:
            self._pending.pop("node-crash", None)
            return
        self._arm(
            "node-crash",
            self.model.interarrival(self.model.node_mtbf, self.rng.stream("chaos:node-crash")),
        )

    def _fire_node_crash(self) -> None:
        if not self._running:
            self._pending.pop("node-crash", None)
            return
        pick = self.rng.stream("chaos:node-pick")
        up = sorted(n.node_id for n in self.launcher.allocation.nodes if n.is_up)
        if up:
            node_id = up[int(pick.integers(len(up)))]
            self.injector.fail_node_now(node_id)
            self._record("node-crash", node_id)
            if self.model.node_repair_time > 0:
                self.injector.recover_node_at(
                    self.engine.now + self.model.node_repair_time, node_id
                )
        self._arm_node_crash()

    def _arm_task_crash(self) -> None:
        if not self._running:
            self._pending.pop("task-crash", None)
            return
        times = self.rng.stream("chaos:task-crash")
        self._arm("task-crash", float(times.exponential(self.model.task_crash_mtbf)))

    def _fire_task_crash(self) -> None:
        if not self._running:
            self._pending.pop("task-crash", None)
            return
        pick = self.rng.stream("chaos:task-pick")
        running = sorted(self.launcher.running_tasks())
        if running:
            name = running[int(pick.integers(len(running)))]
            self.engine.process(
                self.launcher.signal_kill_task(name, code=TASK_CRASH_CODE, cause="chaos"),
                name=f"chaos:kill:{name}",
            )
            self._record("task-crash", name)
        self._arm_task_crash()

    def _arm_task_hang(self) -> None:
        if not self._running:
            self._pending.pop("task-hang", None)
            return
        times = self.rng.stream("chaos:task-hang")
        self._arm("task-hang", float(times.exponential(self.model.task_hang_mtbf)))

    def _fire_task_hang(self) -> None:
        if not self._running:
            self._pending.pop("task-hang", None)
            return
        pick = self.rng.stream("chaos:hang-pick")
        candidates = sorted(
            name
            for name in self.launcher.running_tasks()
            if self.launcher.record(name).current is not None
            and self.launcher.record(name).current.ctx is not None
        )
        if candidates:
            name = candidates[int(pick.integers(len(candidates)))]
            self.launcher.record(name).current.ctx.inject_hang()
            self._record("task-hang", name)
        self._arm_task_hang()

    def _arm_orch_crash(self) -> None:
        if not self._running:
            self._pending.pop("orch-crash", None)
            return
        times = self.rng.stream("chaos:orch-crash")
        self._arm("orch-crash", float(times.exponential(self.model.orch_crash_mtbf)))

    def _fire_orch_crash(self) -> None:
        if not self._running:
            self._pending.pop("orch-crash", None)
            return
        # Record first, then arm the *next* crash, then ask the controller
        # to die: the trace point, the RNG draws, and the pending event are
        # therefore identical whether the orchestrator honors the request
        # (crash+resume run) or ignores it (reference run).
        self._record("orch-crash", "controller")
        self._arm_orch_crash()
        if self.orchestrator is not None:
            self.orchestrator.request_crash()

    # -- staging drops (installed on every hub channel) ---------------------------
    def _attach_channel(self, channel) -> None:
        channel.drop_filter = self._drop_staged_step

    def _drop_staged_step(self, channel_name: str, _data) -> bool:
        if not self._running:
            return False
        if float(self.rng.stream("chaos:stage-drop").random()) >= self.model.stage_drop_prob:
            return False
        self._record("stage-drop", channel_name)
        return True

    # -- message drops (consulted by the orchestrator's delivery path) -----------
    def drop_envelope(self, env: Envelope) -> bool:
        """Decide whether to drop one Monitor client→server envelope."""
        if self.model.msg_drop_prob <= 0:
            return False
        if float(self.rng.stream("chaos:msg-drop").random()) >= self.model.msg_drop_prob:
            return False
        self.dropped_envelopes += 1
        self._record("msg-drop", env.sender)
        return True

    # -- crash recovery ------------------------------------------------------------
    def suspend(self) -> None:
        """Orchestrator crash: cancel pending injections without firing."""
        for _stage, ev in self._pending.values():
            ev.cancel()

    def state_dict(self) -> dict:
        """Pending fire slots, history, and chaos RNG stream positions."""
        pending = {}
        for kind, (stage, ev) in sorted(self._pending.items()):
            if ev.cancelled:
                continue
            pending[kind] = {"stage": stage, "at": ev.heap_time, "seq": ev.heap_seq}
        return {
            "running": self._running,
            "pending": pending,
            "history": [[e.time, e.kind, e.target] for e in self.history],
            "dropped_envelopes": self.dropped_envelopes,
            "rng": self.rng.state_dict(names=CHAOS_STREAMS),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore chaos state; re-register pending events at their slots.

        Fire times were drawn before the crash and are restored verbatim
        (no redraw), at the journaled ``(time, seq)`` heap slots, so the
        post-resume fault sequence is the uninterrupted run's.
        """
        self._running = bool(state.get("running", False))
        self.dropped_envelopes = int(state.get("dropped_envelopes", 0))
        self.history = [
            FaultEvent(float(t), kind, target) for t, kind, target in state.get("history", [])
        ]
        self.rng.load_state_dict(state.get("rng", {}))
        if self._running and self.model.stage_drop_prob > 0:
            # Take over the drop filters from the crashed engine's chaos
            # instance; the shared named RNG stream keeps the drop
            # sequence continuous across the handover.
            hub = self.launcher.hub
            for name in hub.channels():
                self._attach_channel(hub.get_channel(name))
            hub.on_new_channel = self._attach_channel
        self._pending = {}
        for kind, slot in state.get("pending", {}).items():
            stage = slot.get("stage", "fire")
            ev = self.engine.call_at(
                float(slot["at"]),
                self._stage_fn(kind, stage),
                name=f"chaos:{kind}",
                seq=slot.get("seq"),
            )
            self._pending[kind] = (stage, ev)

    # -- bookkeeping -------------------------------------------------------------
    def _record(self, kind: str, target: str) -> None:
        self.history.append(FaultEvent(self.engine.now, kind, target))
        self.launcher.trace.point(
            self.engine.now, f"chaos:{kind}:{target}", category="failure"
        )
