"""Node circuit breaker: repeated failures quarantine a node.

Arbitration "ensures the exclusion of problematic resources" (paper
§4.5) — but the seed only excluded nodes the scheduler already marked
DOWN.  The quarantine generalizes that: every task failure is *blamed*
on the nodes the instance ran on, and a node collecting enough blame
within a sliding window is excluded from placement for a cooldown even
while the scheduler still reports it UP.  This catches gray failures
(flaky NICs, thermal throttling) that kill tasks without killing nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.resilience.spec import QuarantineSpec


@dataclass(frozen=True)
class QuarantineEvent:
    """One quarantine state change, for post-run inspection."""

    time: float
    node_id: str
    kind: str  # "quarantined" or "released"
    blamed_failures: int = 0


class NodeQuarantine:
    """Sliding-window failure counter per node, with cooldown exclusion."""

    def __init__(self, spec: QuarantineSpec, clock: Callable[[], float]) -> None:
        spec.validate()
        self.spec = spec
        self.clock = clock
        self._failures: dict[str, list[float]] = {}
        self._until: dict[str, float] = {}
        self.history: list[QuarantineEvent] = []

    # -- recording ---------------------------------------------------------------
    def record_failure(self, node_id: str, now: float | None = None) -> bool:
        """Blame one failure on *node_id*; returns True if it newly trips.

        Failures older than the window are pruned; reaching the threshold
        (re)arms the cooldown, so a node that keeps failing stays out.
        """
        t = self.clock() if now is None else now
        times = self._failures.setdefault(node_id, [])
        times.append(t)
        cutoff = t - self.spec.window
        self._failures[node_id] = times = [x for x in times if x >= cutoff]
        if len(times) < self.spec.failures:
            return False
        newly = not self.is_quarantined(node_id, t)
        self._until[node_id] = t + self.spec.cooldown
        if newly:
            self.history.append(QuarantineEvent(t, node_id, "quarantined", len(times)))
        return newly

    # -- queries -----------------------------------------------------------------
    def is_quarantined(self, node_id: str, now: float | None = None) -> bool:
        t = self.clock() if now is None else now
        until = self._until.get(node_id)
        if until is None:
            return False
        if t >= until:
            # Cooldown elapsed: release lazily and clear the blame record.
            del self._until[node_id]
            self._failures.pop(node_id, None)
            self.history.append(QuarantineEvent(t, node_id, "released"))
            return False
        return True

    def active(self, now: float | None = None) -> set[str]:
        """Node ids currently excluded from placement."""
        t = self.clock() if now is None else now
        return {node_id for node_id in list(self._until) if self.is_quarantined(node_id, t)}

    def blamed(self, node_id: str) -> int:
        """Failures currently held against *node_id* (within the window)."""
        return len(self._failures.get(node_id, []))

    # -- crash recovery ------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "failures": {n: list(ts) for n, ts in sorted(self._failures.items())},
            "until": {n: t for n, t in sorted(self._until.items())},
            "history": [
                [e.time, e.node_id, e.kind, e.blamed_failures] for e in self.history
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self._failures = {
            n: [float(x) for x in ts] for n, ts in state.get("failures", {}).items()
        }
        self._until = {n: float(t) for n, t in state.get("until", {}).items()}
        self.history = [
            QuarantineEvent(float(t), n, kind, int(b))
            for t, n, kind, b in state.get("history", [])
        ]
