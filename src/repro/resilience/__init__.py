"""Resilience subsystem: stochastic fault injection and recovery.

The paper's resilience story (§4.5) is a single scheduled node failure.
This package generalizes it into a fault *model* plus a recovery *layer*:

* :mod:`repro.resilience.spec` — the knobs: retry/backoff budgets,
  watchdog timeouts, node quarantine thresholds, checkpoint cadence,
  and the stochastic fault model (all parsed from the XML
  ``<resilience>`` element).
* :mod:`repro.resilience.quarantine` — the node circuit breaker used by
  the resource manager and Arbitration's shadow placement.
* :mod:`repro.resilience.watchdog` — heartbeat-driven hang detection in
  the Monitor stage.
* :mod:`repro.resilience.faults` — the chaos engine: node crashes,
  task crashes, task hangs and staging message drops drawn from named
  :class:`~repro.sim.rng.RngRegistry` streams, so every chaos run is
  deterministic and replayable.
"""

from repro.resilience.faults import ChaosEngine, FaultEvent
from repro.resilience.quarantine import NodeQuarantine, QuarantineEvent
from repro.resilience.spec import (
    CheckpointSpec,
    FaultModelSpec,
    QuarantineSpec,
    ResilienceSpec,
    RetryPolicy,
    WatchdogSpec,
)
from repro.resilience.watchdog import HeartbeatWatchdog

__all__ = [
    "ChaosEngine",
    "CheckpointSpec",
    "FaultEvent",
    "FaultModelSpec",
    "HeartbeatWatchdog",
    "NodeQuarantine",
    "QuarantineEvent",
    "QuarantineSpec",
    "ResilienceSpec",
    "RetryPolicy",
    "WatchdogSpec",
]
