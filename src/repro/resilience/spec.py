"""Resilience configuration: retry, watchdog, quarantine, checkpoint, faults.

One :class:`ResilienceSpec` bundles every recovery knob plus the
stochastic fault model.  It is constructed either programmatically or
from the XML ``<resilience>`` element (see ``docs/xml-reference.md``);
both the simulated runtime (:class:`repro.wms.launcher.Savanna` /
:class:`repro.runtime.sim_driver.DyflowOrchestrator`) and the live
threaded runtime (:class:`repro.runtime.threaded.ThreadedDyflow`)
consume the same spec, so the two execution substrates share one
resilience API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ResilienceError

if TYPE_CHECKING:  # imported lazily to keep repro.resilience import-light
    from repro.fabric.spec import NetworkSpec


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and jitter.

    The delay before attempt *k* (0-based) is

        min(backoff_base * backoff_factor**k, backoff_max) * (1 + U*jitter)

    where ``U`` is uniform in [0, 1) drawn from a *named* RNG stream, so
    chaos runs replay bit-identically.
    """

    max_retries: int = 3
    backoff_base: float = 2.0
    backoff_factor: float = 2.0
    backoff_max: float = 120.0
    jitter: float = 0.25

    def validate(self) -> None:
        if self.max_retries < 0:
            raise ResilienceError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ResilienceError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ResilienceError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff delay before retry *attempt* (0-based), jitter included."""
        base = min(self.backoff_base * self.backoff_factor ** attempt, self.backoff_max)
        if self.jitter > 0:
            base *= 1.0 + self.jitter * float(rng.random())
        return base

    def exhausted(self, retries_used: int) -> bool:
        return retries_used >= self.max_retries


@dataclass(frozen=True)
class WatchdogSpec:
    """Heartbeat-based hang detection.

    A running task whose newest heartbeat (app-level step completion or
    Monitor-stage metric arrival, whichever is newer) is older than
    ``heartbeat_timeout`` seconds is declared hung and killed with
    ``kill_code`` so the retry/restart machinery can relaunch it.
    """

    heartbeat_timeout: float = 120.0
    poll: float = 10.0
    kill_code: int = 142

    def validate(self) -> None:
        if self.heartbeat_timeout <= 0:
            raise ResilienceError(
                f"heartbeat_timeout must be > 0, got {self.heartbeat_timeout}"
            )
        if self.poll <= 0:
            raise ResilienceError(f"watchdog poll must be > 0, got {self.poll}")
        if self.kill_code <= 128:
            raise ResilienceError(f"kill_code must be > 128 (a signal code), got {self.kill_code}")


@dataclass(frozen=True)
class QuarantineSpec:
    """Node circuit breaker: N failures within a window ⇒ exclusion.

    A node accumulating ``failures`` blamed failures within ``window``
    seconds is quarantined for ``cooldown`` seconds: the resource
    manager and Arbitration's shadow placement exclude it even if the
    scheduler reports it UP.
    """

    failures: int = 3
    window: float = 600.0
    cooldown: float = 1800.0

    def validate(self) -> None:
        if self.failures < 1:
            raise ResilienceError(f"quarantine failures must be >= 1, got {self.failures}")
        if self.window <= 0 or self.cooldown <= 0:
            raise ResilienceError("quarantine window and cooldown must be > 0")


@dataclass(frozen=True)
class CheckpointSpec:
    """Checkpoint-restart cadence injected into task parameters.

    ``every`` overrides the app's own ``checkpoint_every`` (steps);
    ``resume`` makes restarted incarnations resume from their last
    saved checkpoint instead of step 0.
    """

    every: int = 50
    resume: bool = True

    def validate(self) -> None:
        if self.every < 0:
            raise ResilienceError(f"checkpoint every must be >= 0, got {self.every}")


DISTRIBUTIONS = ("exponential", "weibull")


@dataclass(frozen=True)
class FaultModelSpec:
    """The stochastic fault model driven by the chaos engine.

    Rates are mean-time-between-events in simulated seconds; 0 disables
    that fault class.  Node-crash interarrivals are exponential or
    Weibull (``weibull_shape`` < 1 models infant mortality, > 1 wearout);
    task crashes/hangs pick a uniformly random running task; message
    drops hit Monitor client→server envelopes with ``msg_drop_prob``
    and staged coupling steps with ``stage_drop_prob``.
    """

    node_mtbf: float = 0.0
    node_dist: str = "exponential"
    weibull_shape: float = 1.5
    node_repair_time: float = 600.0
    task_crash_mtbf: float = 0.0
    task_hang_mtbf: float = 0.0
    msg_drop_prob: float = 0.0
    stage_drop_prob: float = 0.0
    # Mean time between orchestrator (controller) crashes.  The control
    # loop dies and is resumed from its write-ahead journal; the launcher
    # and running tasks survive (the fail-stop model of docs/crash-recovery.md).
    orch_crash_mtbf: float = 0.0

    def validate(self) -> None:
        if self.node_dist not in DISTRIBUTIONS:
            raise ResilienceError(
                f"node_dist must be one of {DISTRIBUTIONS}, got {self.node_dist!r}"
            )
        for name in (
            "node_mtbf",
            "node_repair_time",
            "task_crash_mtbf",
            "task_hang_mtbf",
            "orch_crash_mtbf",
        ):
            if getattr(self, name) < 0:
                raise ResilienceError(f"{name} must be >= 0")
        if self.weibull_shape <= 0:
            raise ResilienceError(f"weibull_shape must be > 0, got {self.weibull_shape}")
        for name in ("msg_drop_prob", "stage_drop_prob"):
            if not 0.0 <= getattr(self, name) < 1.0:
                raise ResilienceError(
                    f"{name} must be in [0, 1), got {getattr(self, name)}"
                )

    @property
    def any_enabled(self) -> bool:
        return (
            self.node_mtbf > 0
            or self.task_crash_mtbf > 0
            or self.task_hang_mtbf > 0
            or self.msg_drop_prob > 0
            or self.stage_drop_prob > 0
            or self.orch_crash_mtbf > 0
        )

    def interarrival(self, mtbf: float, rng: np.random.Generator) -> float:
        """Draw one interarrival time for an event class with mean *mtbf*."""
        if self.node_dist == "weibull":
            # Scale so the mean of the Weibull equals mtbf.
            from math import gamma

            scale = mtbf / gamma(1.0 + 1.0 / self.weibull_shape)
            return scale * float(rng.weibull(self.weibull_shape))
        return float(rng.exponential(mtbf))


@dataclass(frozen=True)
class ResilienceSpec:
    """The complete resilience configuration (XML ``<resilience>``).

    Every component is optional; ``None`` disables it.  ``network`` is
    the Monitor-fabric transport model (:mod:`repro.fabric`): lossy-link
    faults, ack/retransmit reliability, server backpressure and the
    staleness thresholds behind degraded planning.
    """

    retry: RetryPolicy | None = None
    watchdog: WatchdogSpec | None = None
    quarantine: QuarantineSpec | None = None
    checkpoint: CheckpointSpec | None = None
    faults: FaultModelSpec | None = None
    network: "NetworkSpec | None" = None

    def validate(self) -> None:
        for part in (
            self.retry, self.watchdog, self.quarantine,
            self.checkpoint, self.faults, self.network,
        ):
            if part is not None:
                part.validate()
