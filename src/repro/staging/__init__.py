"""Data plane: streams, stores, and a simulated filesystem.

Substitutes for ADIOS2 in the paper:

* :class:`StreamChannel` — SST-like in-memory staging with a bounded
  step buffer (the paper's §4.5 names "buffer overwrites when buffer
  capacity is exceeded" as an in-situ failure mode; the channel models
  all three policies: block, drop-oldest, error).
* :class:`VariableStore` — BP-file-like store of per-step variables,
  backed by the simulated filesystem so `DISKSCAN` sensors can see
  output files appear.
* :class:`SimFilesystem` — an in-memory parallel-filesystem stand-in
  with mtimes and glob scanning.
* :class:`Sample` — the unit of monitoring data every source type emits
  and every sensor consumes.
"""

from repro.staging.serialization import Sample, estimate_nbytes
from repro.staging.filesystem import FileEntry, SimFilesystem
from repro.staging.store import VariableStore
from repro.staging.stream import OverflowPolicy, StreamChannel, StreamReader
from repro.staging.hub import DataHub

__all__ = [
    "Sample",
    "estimate_nbytes",
    "SimFilesystem",
    "FileEntry",
    "VariableStore",
    "StreamChannel",
    "StreamReader",
    "OverflowPolicy",
    "DataHub",
]
