"""Simulated shared parallel filesystem.

Provides exactly what the DISKSCAN and ERRORSTATUS source types need:
files with contents and modification times, glob scanning, and atomic
appearance (a file exists only once fully written).  Paths are plain
``/``-separated strings; there is no permission model.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Any

from repro.errors import StoreError


@dataclass
class FileEntry:
    """A file: payload plus metadata."""

    path: str
    data: Any
    mtime: float
    size: int = 0
    meta: dict | None = None


class SimFilesystem:
    """Flat-namespace file store with glob scan support."""

    def __init__(self) -> None:
        self._files: dict[str, FileEntry] = {}

    # -- writes ----------------------------------------------------------------
    def write(self, path: str, data: Any, mtime: float, size: int = 0, **meta: Any) -> FileEntry:
        """Create or replace a file atomically at *mtime*."""
        entry = FileEntry(path=path, data=data, mtime=mtime, size=size, meta=dict(meta))
        self._files[path] = entry
        return entry

    def append_record(self, path: str, record: Any, mtime: float) -> FileEntry:
        """Append *record* to a list-valued file (creating it if needed)."""
        entry = self._files.get(path)
        if entry is None:
            return self.write(path, [record], mtime)
        if not isinstance(entry.data, list):
            raise StoreError(f"{path} is not an appendable record file")
        entry.data.append(record)
        entry.mtime = mtime
        return entry

    def remove(self, path: str) -> None:
        if path not in self._files:
            raise StoreError(f"no such file: {path}")
        del self._files[path]

    # -- reads -----------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def read(self, path: str) -> Any:
        entry = self._files.get(path)
        if entry is None:
            raise StoreError(f"no such file: {path}")
        return entry.data

    def stat(self, path: str) -> FileEntry:
        entry = self._files.get(path)
        if entry is None:
            raise StoreError(f"no such file: {path}")
        return entry

    def scan(self, pattern: str, since: float | None = None) -> list[FileEntry]:
        """Glob for files, optionally only those modified after *since*.

        This is the DISKSCAN primitive: the XGC sensor scans for
        ``tau-iso.bp.*``-style output files to count completed steps.
        Results are sorted by (mtime, path) so scans are deterministic.
        """
        hits = [
            e
            for p, e in self._files.items()
            if fnmatch.fnmatchcase(p, pattern) and (since is None or e.mtime > since)
        ]
        hits.sort(key=lambda e: (e.mtime, e.path))
        return hits

    def listdir(self, prefix: str) -> list[str]:
        """All paths under a ``/``-terminated prefix."""
        if not prefix.endswith("/"):
            prefix += "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def __len__(self) -> int:
        return len(self._files)
