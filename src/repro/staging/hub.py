"""Central registry of data-plane endpoints.

Monitor clients locate their info sources by name — the XML gives a
``info-source="tau-iso.bp.*"`` string per monitored task.  The hub maps
those names to live endpoints: stream channels, variable stores, and the
shared filesystem.  Tasks (re)register their endpoints when they start,
and the Monitor stage re-resolves after restarts, mirroring the paper's
"setting (or resetting) connections to input streams ... when the
workflow tasks start (or restart)".
"""

from __future__ import annotations

from typing import Callable

from repro.errors import StagingError
from repro.staging.filesystem import SimFilesystem
from repro.staging.store import VariableStore
from repro.staging.stream import OverflowPolicy, StreamChannel, StreamStep
from repro.telemetry.tracer import NULL_TRACER, Tracer


class DataHub:
    """Names → channels/stores, plus the shared simulated filesystem."""

    def __init__(self, filesystem: SimFilesystem | None = None) -> None:
        self.filesystem = filesystem if filesystem is not None else SimFilesystem()
        self._channels: dict[str, StreamChannel] = {}
        self._stores: dict[str, VariableStore] = {}
        # Called for every channel as it is created; the chaos engine uses
        # this to install its in-transit drop filter on late-made channels.
        self.on_new_channel: Callable[[StreamChannel], None] | None = None
        # Additional new-channel listeners (telemetry and friends) — a
        # list, so nobody fights the chaos engine over the single slot.
        self._channel_listeners: list[Callable[[StreamChannel], None]] = []
        self.tracer: Tracer = NULL_TRACER

    def add_channel_listener(self, listener: Callable[[StreamChannel], None]) -> None:
        """Register a callback invoked for every channel as it is created."""
        self._channel_listeners.append(listener)

    def attach_tracer(self, tracer: Tracer) -> None:
        """Install telemetry: count channels, stores, and published steps."""
        self.tracer = tracer
        if not tracer.enabled:
            return
        metrics = tracer.metrics
        steps = metrics.counter("staging.steps")

        def _on_put(channel: StreamChannel, step: StreamStep) -> None:
            steps.inc()

        def _instrument(channel: StreamChannel) -> None:
            metrics.counter("staging.channels").inc()
            channel.observers.append(_on_put)

        for channel in self._channels.values():
            _instrument(channel)
        self.add_channel_listener(_instrument)

    # -- channels --------------------------------------------------------------
    def channel(
        self,
        name: str,
        capacity: int = 16,
        policy: OverflowPolicy = OverflowPolicy.DROP_OLDEST,
    ) -> StreamChannel:
        """Get or create the stream channel *name*."""
        ch = self._channels.get(name)
        if ch is None:
            ch = StreamChannel(name, capacity=capacity, policy=policy)
            self._channels[name] = ch
            if self.on_new_channel is not None:
                self.on_new_channel(ch)
            for listener in self._channel_listeners:
                listener(ch)
        return ch

    def has_channel(self, name: str) -> bool:
        return name in self._channels

    def get_channel(self, name: str) -> StreamChannel:
        ch = self._channels.get(name)
        if ch is None:
            raise StagingError(f"no such channel: {name!r}")
        return ch

    def channels(self) -> list[str]:
        return sorted(self._channels)

    # -- stores -----------------------------------------------------------------
    def store(self, name: str) -> VariableStore:
        """Get or create the variable store *name* (backed by the hub FS)."""
        st = self._stores.get(name)
        if st is None:
            st = VariableStore(name, filesystem=self.filesystem)
            self._stores[name] = st
            if self.tracer.enabled:
                self.tracer.metrics.counter("staging.stores").inc()
        return st

    def has_store(self, name: str) -> bool:
        return name in self._stores

    def get_store(self, name: str) -> VariableStore:
        st = self._stores.get(name)
        if st is None:
            raise StagingError(f"no such store: {name!r}")
        return st

    def stores(self) -> list[str]:
        return sorted(self._stores)
