"""Monitoring samples and payload sizing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np


@dataclass(frozen=True)
class Sample:
    """One observation emitted by a data source and consumed by sensors.

    Every source type in the paper — profiler streams, application ADIOS2
    output, disk scans, error-status files — reduces to a stream of these:

    Attributes:
        time: when the observation was produced (simulated seconds).
        workflow_id: owning workflow.
        task: workflow task name (e.g. ``"Isosurface"``).
        rank: producing process rank within the task (0-based); -1 for
            task-level observations with no per-process identity.
        node_id: compute node hosting the producing process ("" if n/a).
        var: variable name (e.g. ``"looptime"``, ``"nsteps"``).
        value: scalar or array payload.
        step: application step the observation belongs to (-1 if n/a).
    """

    time: float
    workflow_id: str
    task: str
    rank: int
    node_id: str
    var: str
    value: Any
    step: int = -1

    def scalar(self) -> float:
        """The payload as a float (arrays are not scalars)."""
        if isinstance(self.value, (int, float, np.integer, np.floating)):
            return float(self.value)
        raise TypeError(f"sample value for {self.var!r} is not scalar: {type(self.value).__name__}")


def estimate_nbytes(value: Any) -> int:
    """Approximate wire size of a payload, for transfer-time modelling."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(value, (list, tuple)):
        return sum(estimate_nbytes(v) for v in value)
    if isinstance(value, dict):
        return sum(estimate_nbytes(k) + estimate_nbytes(v) for k, v in value.items())
    return 64  # conservative default for odd payloads
