"""SST-like streaming channels for in-situ task coupling.

A :class:`StreamChannel` carries *steps* — batches of samples — from one
writer to any number of readers, through a bounded staging buffer.  The
paper couples simulation and analysis tasks through ADIOS2's Sustainable
Staging Transport and names buffer exhaustion as a failure mode (§4.5);
the three :class:`OverflowPolicy` values model the standard responses.

Readers keep independent cursors, can connect late (they start from the
oldest retained step), and can be reset when a task restarts — losing
"timestep information when the tasks reset" exactly as the paper notes
about Fig. 9.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import BufferOverflowError, ChannelClosedError
from repro.util.validation import check_positive


class OverflowPolicy(enum.Enum):
    """What a full staging buffer does to the next write."""

    DROP_OLDEST = "drop_oldest"  # overwrite oldest step (SST queue-limit behaviour)
    ERROR = "error"              # raise BufferOverflowError
    GROW = "grow"                # unbounded (testing convenience)


@dataclass(frozen=True)
class StreamStep:
    """One published step: index + payload + publish time."""

    step: int
    data: Any
    time: float


class StreamChannel:
    """Single-writer, multi-reader bounded step stream."""

    def __init__(
        self,
        name: str,
        capacity: int = 16,
        policy: OverflowPolicy = OverflowPolicy.DROP_OLDEST,
    ) -> None:
        check_positive(capacity, "capacity")
        self.name = name
        self.capacity = int(capacity)
        self.policy = policy
        self._steps: list[StreamStep] = []
        self._first_retained = 0  # step index of _steps[0]
        self._next_step = 0
        self._closed = False
        self._readers: list[StreamReader] = []
        self.dropped_steps = 0
        # Fault-injection hook (chaos engine): called per put(); returning
        # True loses the write in transit — the step never reaches the
        # staging buffer and keeps no index, readers just see fewer steps.
        self.drop_filter: Callable[[str, Any], bool] | None = None
        self.dropped_in_transit = 0
        # Passive put() observers (telemetry): called with (channel, step)
        # after every successful publish.  Distinct from drop_filter so the
        # chaos engine keeps sole ownership of its hook.
        self.observers: list[Callable[["StreamChannel", StreamStep], None]] = []

    # -- writer side -------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def next_step(self) -> int:
        """Index the next published step will get."""
        return self._next_step

    def put(self, data: Any, time: float) -> int:
        """Publish a step; returns its index."""
        if self._closed:
            raise ChannelClosedError(f"write on closed channel {self.name!r}")
        if self.drop_filter is not None and self.drop_filter(self.name, data):
            self.dropped_in_transit += 1
            return self._next_step
        if len(self._steps) >= self.capacity:
            if self.policy == OverflowPolicy.ERROR:
                raise BufferOverflowError(
                    f"channel {self.name!r} buffer full ({self.capacity} steps)"
                )
            if self.policy == OverflowPolicy.DROP_OLDEST:
                self._steps.pop(0)
                self._first_retained += 1
                self.dropped_steps += 1
            # GROW: fall through, keep everything
        record = StreamStep(step=self._next_step, data=data, time=time)
        self._steps.append(record)
        self._next_step += 1
        if self.observers:
            for observer in self.observers:
                observer(self, record)
        return record.step

    def close(self) -> None:
        """End of stream; readers can drain retained steps, then see EOS."""
        self._closed = True

    def reopen(self) -> None:
        """Writer restarted (task RESTART): stream continues, steps keep numbering."""
        self._closed = False

    # -- reader side ---------------------------------------------------------------
    def open_reader(self, name: str = "reader") -> "StreamReader":
        reader = StreamReader(self, name)
        self._readers.append(reader)
        return reader

    def _retained_range(self) -> tuple[int, int]:
        """Half-open step-index range currently in the buffer."""
        return self._first_retained, self._next_step

    def _get(self, step: int) -> StreamStep | None:
        lo, hi = self._retained_range()
        if step < lo or step >= hi:
            return None
        return self._steps[step - lo]


class StreamReader:
    """A cursor over a :class:`StreamChannel`."""

    def __init__(self, channel: StreamChannel, name: str) -> None:
        self.channel = channel
        self.name = name
        lo, _hi = channel._retained_range()
        self._cursor = lo
        self.missed_steps = 0

    @property
    def cursor(self) -> int:
        """Index of the next step this reader will consume."""
        return self._cursor

    def try_next(self) -> StreamStep | None:
        """Return the next retained step, or None if none is available.

        If the writer outran this reader and steps were evicted, the cursor
        jumps forward and ``missed_steps`` records the loss.
        """
        lo, hi = self.channel._retained_range()
        if self._cursor < lo:
            self.missed_steps += lo - self._cursor
            self._cursor = lo
        if self._cursor >= hi:
            return None
        record = self.channel._get(self._cursor)
        assert record is not None
        self._cursor += 1
        return record

    def drain(self) -> list[StreamStep]:
        """Consume every currently-available step."""
        out = []
        while True:
            record = self.try_next()
            if record is None:
                return out
            out.append(record)

    def at_eos(self) -> bool:
        """True when the channel is closed and this reader has drained it."""
        _lo, hi = self.channel._retained_range()
        return self.channel.closed and self._cursor >= hi

    def seek_latest(self) -> None:
        """Skip everything already staged; only strictly new steps follow.

        Used on (re)connect by monitor sensors and restarted consumers —
        old data must not be re-observed ("losing timestep information
        when the tasks reset").
        """
        _lo, hi = self.channel._retained_range()
        self._cursor = hi
