"""BP-file-like per-step variable store.

ADIOS2's file engine organizes output as *steps*, each holding named
variables.  Tasks in the reproduction write their periodic output here;
the store also materializes a marker file per step in the simulated
filesystem so DISKSCAN sensors observe output appearing on disk exactly
the way the XGC NSTEPS sensor does in the paper.
"""

from __future__ import annotations

from typing import Any

from repro.errors import StoreError
from repro.staging.filesystem import SimFilesystem


class VariableStore:
    """Per-step variable storage for one output "file" (e.g. ``xgc1.bp``)."""

    def __init__(self, name: str, filesystem: SimFilesystem | None = None) -> None:
        self.name = name
        self._fs = filesystem
        self._steps: list[dict[str, Any]] = []
        self._open_step: dict[str, Any] | None = None
        self._open_time = 0.0

    # -- writer protocol -----------------------------------------------------------
    def begin_step(self, time: float) -> int:
        """Open a new output step; returns its index."""
        if self._open_step is not None:
            raise StoreError(f"store {self.name!r}: step already open")
        self._open_step = {}
        self._open_time = time
        return len(self._steps)

    def put(self, var: str, value: Any) -> None:
        if self._open_step is None:
            raise StoreError(f"store {self.name!r}: no open step")
        self._open_step[var] = value

    def end_step(self) -> int:
        """Commit the open step; it becomes visible to readers and on disk."""
        if self._open_step is None:
            raise StoreError(f"store {self.name!r}: no open step")
        step_index = len(self._steps)
        self._steps.append(self._open_step)
        if self._fs is not None:
            self._fs.write(
                f"{self.name}.dir/step.{step_index}",
                {"vars": sorted(self._open_step)},
                mtime=self._open_time,
            )
        self._open_step = None
        return step_index

    def write_step(self, time: float, **variables: Any) -> int:
        """Convenience: begin/put*/end in one call."""
        self.begin_step(time)
        for var, value in variables.items():
            self.put(var, value)
        return self.end_step()

    # -- reader protocol ---------------------------------------------------------
    @property
    def num_steps(self) -> int:
        """Committed step count (open step excluded)."""
        return len(self._steps)

    def variables(self, step: int) -> list[str]:
        return sorted(self._step_dict(step))

    def read(self, var: str, step: int = -1) -> Any:
        """Read *var* from *step* (default: latest committed step)."""
        d = self._step_dict(step)
        if var not in d:
            raise StoreError(f"store {self.name!r} step {step}: no variable {var!r}")
        return d[var]

    def _step_dict(self, step: int) -> dict[str, Any]:
        if not self._steps:
            raise StoreError(f"store {self.name!r} has no committed steps")
        try:
            return self._steps[step]
        except IndexError:
            raise StoreError(
                f"store {self.name!r}: step {step} out of range (have {len(self._steps)})"
            ) from None
