"""Per-tenant circuit breaker: crash-looping tenants get quarantined.

Bulkhead isolation's second line of defense: admission quotas bound how
much a tenant can *hold*, the breaker bounds how much it can *break*.
Every failed cell is blamed on its tenant; a tenant collecting enough
blame within a sliding window is quarantined for a cooldown — its
queued cells stay parked and its leases are refused — instead of
burning shared capacity on a crash loop while its neighbors starve.

The mechanism is exactly the node-quarantine pattern from
``repro.resilience`` (sliding window, cooldown, lazy release), applied
to tenant ids instead of node ids, so the two breakers stay
behaviorally identical by construction.
"""

from __future__ import annotations

from typing import Callable

from repro.resilience.quarantine import NodeQuarantine, QuarantineEvent
from repro.resilience.spec import QuarantineSpec


class TenantBreaker:
    """Sliding-window failure counter per tenant, with cooldown exclusion."""

    def __init__(self, spec: QuarantineSpec, clock: Callable[[], float]) -> None:
        # Delegate to the node quarantine: same window/threshold/cooldown
        # semantics, tenant ids in place of node ids.
        self._q = NodeQuarantine(spec, clock)
        self.spec = spec

    def record_failure(self, tenant_id: str, now: float | None = None) -> bool:
        """Blame one failed cell on *tenant_id*; True if it newly trips."""
        return self._q.record_failure(tenant_id, now)

    def is_quarantined(self, tenant_id: str, now: float | None = None) -> bool:
        return self._q.is_quarantined(tenant_id, now)

    def active(self, now: float | None = None) -> set[str]:
        """Tenant ids currently quarantined."""
        return self._q.active(now)

    def blamed(self, tenant_id: str) -> int:
        """Failures currently held against *tenant_id* (within the window)."""
        return self._q.blamed(tenant_id)

    def cooldown_remaining(self, tenant_id: str, now: float | None = None) -> float:
        """Seconds until *tenant_id* is released (0 when not quarantined)."""
        t = self._q.clock() if now is None else now
        if not self._q.is_quarantined(tenant_id, t):
            return 0.0
        return self._q._until[tenant_id] - t

    @property
    def history(self) -> list[QuarantineEvent]:
        return self._q.history

    def trips(self, tenant_id: str | None = None) -> int:
        """Quarantine events recorded (optionally for one tenant)."""
        return sum(
            1
            for e in self._q.history
            if e.kind == "quarantined"
            and (tenant_id is None or e.node_id == tenant_id)
        )

    # -- crash recovery ------------------------------------------------------------
    def state_dict(self) -> dict:
        return self._q.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self._q.load_state_dict(state)
