"""PaPaS-style crash-supervised parallel executor for campaign cells.

PaPaS (PAPERS.md) runs parameter-study cells as supervised OS processes;
this executor reproduces that shape for the campaign grid:

* **one worker process per attempt** — a cell attempt runs in a fresh
  ``fork``ed process, so a crash (or a ``kill -9``) takes down only that
  attempt, never the supervisor or a neighbor cell;
* **dead-worker detection and respawn** — the supervisor polls its
  workers; a worker that exits without reporting a result is a failed
  attempt, and the cell is respawned after a backoff delay;
* **per-cell timeout** — an attempt that outlives ``cell_timeout`` is
  SIGKILLed and counted as a timeout failure;
* **retry with exponential backoff + jitter** — delays follow
  ``base * factor^attempt`` capped at ``backoff_max``, jittered by a
  draw from the cell's *named* RNG stream (``campaign:retry:<cell>``),
  so the schedule is reproducible from the registry seed;
* **poison-cell quarantine** — a cell failing ``max_attempts`` times is
  declared *poisoned* and set aside; the grid completes around it.

With ``workers=0`` the executor runs cells serially in-process: no
processes, no wall clock, fully deterministic (timeouts are not
enforced — nothing can preempt the cell).  Worker-kill fault injection
(``kill_prob``) draws from ``campaign:chaos:<cell>`` in the supervisor,
so chaos runs replay exactly.

This module is on the self-lint wall-clock exemption list: supervising
real OS processes requires real deadlines.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.campaign import workertel
from repro.campaign.spec import ExecutorSpec
from repro.errors import ReproError
from repro.sim.rng import RngRegistry
from repro.telemetry.metrics import MetricsRegistry

#: Supervisor poll period between worker checks, seconds.
_POLL = 0.005

COMPLETED = "completed"
POISONED = "poisoned"


@dataclass(frozen=True)
class CellFailure:
    """One failed attempt: what went wrong, on which attempt, how long in."""

    attempt: int
    kind: str  # "error" | "timeout" | "worker-died" | "killed"
    detail: str = ""
    backoff: float = 0.0


@dataclass
class CellOutcome:
    """Terminal state of one cell after supervision."""

    cell_id: str
    status: str  # COMPLETED | POISONED
    result: Any = None
    attempts: int = 0
    failures: list[CellFailure] = field(default_factory=list)

    @property
    def poisoned(self) -> bool:
        return self.status == POISONED


def _worker_main(fn, payload, kill: bool, conn, telemetry=None) -> None:
    """Worker-process entry: run one attempt, report through the pipe."""
    if kill:
        # Injected worker-kill fault: die the way a real crashed worker
        # does — no exception, no result, just a SIGKILLed process.
        os.kill(os.getpid(), signal.SIGKILL)
    # The fork inherited a copy of the parent's ambient registry; drop it
    # so this attempt records only its own telemetry.
    workertel.reset_worker_registry()
    try:
        result = fn(payload)
    except Exception as err:  # noqa: BLE001 - any cell error is a failed attempt
        _flush_telemetry(telemetry)
        conn.send(("error", f"{type(err).__name__}: {err}"))
    else:
        _flush_telemetry(telemetry)
        conn.send(("ok", result))
    finally:
        conn.close()


def _flush_telemetry(telemetry: tuple[str, str] | None) -> None:
    """Publish the worker's ambient registry before the result message.

    Ordering matters: the parent merges on receipt of the result, so the
    flush must be durable (atomic rename) before ``conn.send``.  Flush
    errors are swallowed — losing telemetry must never fail the attempt.
    """
    if telemetry is None:
        return
    root, cell_id = telemetry
    try:
        workertel.flush_worker_telemetry(root, cell_id)
    except OSError:
        pass


@dataclass
class _Attempt:
    """One in-flight worker process under supervision."""

    cell_id: str
    proc: Any
    conn: Any
    started: float
    killed: bool  # chaos-injected kill pending inside the worker


@dataclass
class _CellState:
    cell_id: str
    payload: Any
    attempts: int = 0
    ready_at: float = 0.0
    failures: list[CellFailure] = field(default_factory=list)


class SupervisedExecutor:
    """Run a batch of cells to completion under crash supervision."""

    def __init__(
        self,
        spec: ExecutorSpec,
        rng: RngRegistry | None = None,
        telemetry_root: str | None = None,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.rng = rng if rng is not None else RngRegistry(0)
        self.respawns = 0
        # Worker-side telemetry handoff (repro.campaign.workertel): with a
        # root set, forked workers flush their ambient registry per cell
        # and the supervisor folds each cell's flush into worker_metrics.
        self.telemetry_root = telemetry_root
        if telemetry_root is not None:
            os.makedirs(telemetry_root, exist_ok=True)
        self.worker_metrics = MetricsRegistry()

    def _merge_telemetry(self, cell_id: str) -> None:
        """Fold a finished cell's flushed telemetry into worker_metrics."""
        if self.telemetry_root is not None:
            workertel.merge_worker_telemetry(
                self.telemetry_root, cell_id, self.worker_metrics
            )

    # -- deterministic schedules -------------------------------------------------
    def backoff(self, cell_id: str, attempt: int) -> float:
        """Retry delay before attempt *attempt*+1, jittered per cell stream."""
        s = self.spec
        delay = min(s.backoff_max, s.backoff_base * (s.backoff_factor ** attempt))
        if s.jitter > 0:
            u = float(self.rng.stream(f"campaign:retry:{cell_id}").random())
            delay *= 1.0 + s.jitter * (2.0 * u - 1.0)
        return delay

    def _chaos_kill(self, cell_id: str) -> bool:
        if self.spec.kill_prob <= 0:
            return False
        u = float(self.rng.stream(f"campaign:chaos:{cell_id}").random())
        return u < self.spec.kill_prob

    # -- entry point --------------------------------------------------------------
    def run(
        self,
        cells: Sequence[tuple[str, Any]],
        fn: Callable[[Any], Any],
    ) -> list[CellOutcome]:
        """Execute ``(cell_id, payload)`` pairs; returns outcomes in order.

        *fn* runs in a worker process (``workers > 0``), so it and every
        payload must be picklable; with ``workers=0`` it runs inline.
        """
        ids = [cid for cid, _ in cells]
        if len(set(ids)) != len(ids):
            raise ReproError("duplicate cell ids in executor batch")
        if self.spec.workers == 0:
            outcomes = {cid: self._run_serial(cid, p, fn) for cid, p in cells}
        else:
            outcomes = self._run_supervised(cells, fn)
        return [outcomes[cid] for cid in ids]

    # -- serial mode (deterministic, in-process) -----------------------------------
    def _run_serial(self, cell_id: str, payload: Any, fn) -> CellOutcome:
        out = CellOutcome(cell_id=cell_id, status=POISONED)
        # In-process equivalent of the worker flush/merge: each attempt
        # "flushes" by snapshotting the ambient registry (last recording
        # attempt wins, like retries overwriting the per-cell file), and
        # the snapshot merges once at the terminal outcome.
        flushed: dict[str, Any] | None = None
        for attempt in range(self.spec.max_attempts):
            out.attempts = attempt + 1
            if self._chaos_kill(cell_id):
                out.failures.append(CellFailure(
                    attempt + 1, "killed", "injected worker kill",
                    backoff=self.backoff(cell_id, attempt),
                ))
                continue
            # Fresh ambient registry per attempt, mirroring the forked
            # worker's entry reset.
            workertel.reset_worker_registry()
            try:
                result = fn(payload)
            except Exception as err:  # noqa: BLE001 - counted and retried
                reg = workertel.peek_worker_registry()
                if reg is not None:
                    flushed = reg.state_dict()
                out.failures.append(CellFailure(
                    attempt + 1, "error", f"{type(err).__name__}: {err}",
                    backoff=self.backoff(cell_id, attempt),
                ))
                continue
            reg = workertel.peek_worker_registry()
            if reg is not None:
                flushed = reg.state_dict()
            out.status = COMPLETED
            out.result = result
            break
        workertel.reset_worker_registry()
        if flushed is not None:
            self.worker_metrics.merge_state(flushed)
        return out

    # -- supervised mode (worker processes) ----------------------------------------
    def _run_supervised(
        self, cells: Sequence[tuple[str, Any]], fn
    ) -> dict[str, CellOutcome]:
        ctx = multiprocessing.get_context("fork")
        states = {cid: _CellState(cid, payload) for cid, payload in cells}
        pending: list[str] = [cid for cid, _ in cells]
        running: dict[str, _Attempt] = {}
        outcomes: dict[str, CellOutcome] = {}

        def spawn(state: _CellState) -> None:
            kill = self._chaos_kill(state.cell_id)
            parent, child = ctx.Pipe(duplex=False)
            telemetry = (
                (self.telemetry_root, state.cell_id)
                if self.telemetry_root is not None else None
            )
            proc = ctx.Process(
                target=_worker_main, args=(fn, state.payload, kill, child, telemetry)
            )
            proc.start()
            child.close()
            if state.attempts > 0:
                self.respawns += 1
            state.attempts += 1
            running[state.cell_id] = _Attempt(
                state.cell_id, proc, parent, time.monotonic(), kill
            )

        def fail(state: _CellState, kind: str, detail: str) -> None:
            attempt = state.attempts
            if attempt >= self.spec.max_attempts:
                state.failures.append(CellFailure(attempt, kind, detail))
                outcomes[state.cell_id] = CellOutcome(
                    cell_id=state.cell_id, status=POISONED,
                    attempts=attempt, failures=state.failures,
                )
                self._merge_telemetry(state.cell_id)
                return
            delay = self.backoff(state.cell_id, attempt - 1)
            state.failures.append(CellFailure(attempt, kind, detail, backoff=delay))
            state.ready_at = time.monotonic() + delay
            pending.append(state.cell_id)

        while pending or running:
            now = time.monotonic()
            # Fill free worker slots with ready cells, submission order.
            for cid in list(pending):
                if len(running) >= self.spec.workers:
                    break
                if states[cid].ready_at <= now:
                    pending.remove(cid)
                    spawn(states[cid])
            # Poll the fleet.
            for cid, att in list(running.items()):
                state = states[cid]
                if att.conn.poll():
                    try:
                        kind, value = att.conn.recv()
                    except EOFError:
                        # Pipe at EOF with no message: the worker died
                        # before reporting (poll() wakes on EOF too).
                        att.proc.join()
                        att.conn.close()
                        del running[cid]
                        kind = "killed" if att.killed else "worker-died"
                        fail(state, kind, f"exitcode {att.proc.exitcode}")
                        continue
                    att.proc.join()
                    att.conn.close()
                    del running[cid]
                    if kind == "ok":
                        outcomes[cid] = CellOutcome(
                            cell_id=cid, status=COMPLETED, result=value,
                            attempts=state.attempts, failures=state.failures,
                        )
                        self._merge_telemetry(cid)
                    else:
                        fail(state, "error", value)
                    continue
                elapsed = time.monotonic() - att.started
                if att.proc.exitcode is not None:
                    # Died without a result: crash or injected kill.
                    att.conn.close()
                    del running[cid]
                    kind = "killed" if att.killed else "worker-died"
                    fail(state, kind, f"exitcode {att.proc.exitcode}")
                    continue
                if 0 < self.spec.cell_timeout < elapsed:
                    att.proc.kill()
                    att.proc.join()
                    att.conn.close()
                    del running[cid]
                    fail(state, "timeout",
                         f"exceeded {self.spec.cell_timeout}s cell timeout")
            if pending or running:
                time.sleep(_POLL)
        return outcomes
