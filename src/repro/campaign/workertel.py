"""Worker-side telemetry capture for forked campaign cells.

Cells executed by :class:`~repro.campaign.executor.SupervisedExecutor`
with ``workers > 0`` run in forked child processes, so anything they
record into an in-memory :class:`~repro.telemetry.metrics.MetricsRegistry`
dies with the worker — the parent's registry is a *copy* the child
mutates, and the mutations never travel back through the result pipe.

This module closes that gap with a file-based handoff:

* the cell function records into the ambient :func:`worker_registry`
  (one fresh registry per attempt — :func:`reset_worker_registry` runs
  at worker entry so the fork's inherited copy of parent telemetry is
  never double-counted);
* at worker exit the child flushes the registry to
  ``<root>/<cell_id>.telemetry.jsonl`` — one JSON line per instrument —
  written to a temp file and published with ``os.replace`` so readers
  only ever see whole files;
* the parent merges the flushed file into its own registry with
  :func:`merge_worker_telemetry`, keyed by cell id (retries overwrite
  the same file, so exactly the surviving attempt's telemetry merges).

A worker SIGKILLed mid-flush can still leave a torn temp file behind,
and a flush routed around ``os.replace`` (e.g. NFS relaxations) can
expose a torn tail.  The merge therefore treats the first unparsable
line as end-of-stream and merges only the committed prefix — torn
telemetry degrades to partial telemetry, never to a corrupted parent
registry (instrument lines are self-contained, so every committed line
is mergeable on its own).
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.telemetry.metrics import MetricsRegistry

#: Filename suffix for per-cell worker telemetry flushes.
_SUFFIX = ".telemetry.jsonl"

_REGISTRY: MetricsRegistry | None = None


def worker_registry() -> MetricsRegistry:
    """The ambient registry a campaign cell records into.

    Created on first use; cell functions call this instead of plumbing a
    registry argument through the (picklable) payload.
    """
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = MetricsRegistry()
    return _REGISTRY


def reset_worker_registry() -> None:
    """Drop the ambient registry (worker entry / between serial attempts)."""
    global _REGISTRY
    _REGISTRY = None


def peek_worker_registry() -> MetricsRegistry | None:
    """The ambient registry if the cell touched it, else ``None``."""
    return _REGISTRY


def telemetry_path(root: str, cell_id: str) -> str:
    """Where the flushed telemetry for *cell_id* lives under *root*."""
    return os.path.join(root, f"{cell_id}{_SUFFIX}")


def flush_worker_telemetry(root: str, cell_id: str) -> str | None:
    """Write the ambient registry to its per-cell file; returns the path.

    One JSON object per line, each line self-contained::

        {"kind": "counter", "name": "cells.rows", "value": 3.0}
        {"kind": "histogram", "name": "cell.step", "state": {...}}

    The write lands in ``<path>.tmp`` first and is published atomically
    with ``os.replace``.  Returns ``None`` (and writes nothing) when the
    ambient registry was never touched — absent file means "this cell
    recorded no telemetry", which the merge treats as a clean no-op.
    """
    if _REGISTRY is None:
        return None
    state = _REGISTRY.state_dict()
    lines: list[str] = []
    for name, value in state["counters"].items():
        lines.append(json.dumps(
            {"kind": "counter", "name": name, "value": value}, sort_keys=True
        ))
    for name, value in state["gauges"].items():
        lines.append(json.dumps(
            {"kind": "gauge", "name": name, "value": value}, sort_keys=True
        ))
    for name, hstate in state["histograms"].items():
        lines.append(json.dumps(
            {"kind": "histogram", "name": name, "state": hstate}, sort_keys=True
        ))
    path = telemetry_path(root, cell_id)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write("".join(line + "\n" for line in lines))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def read_worker_telemetry(path: str) -> dict[str, Any]:
    """Parse a flushed file into a ``MetricsRegistry.merge_state`` dict.

    Stops at the first unparsable or incomplete line (torn tail from a
    worker killed mid-write) and returns whatever prefix committed.
    """
    state: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    try:
        with open(path, encoding="utf-8") as fh:
            raw_lines = fh.read().split("\n")
    except FileNotFoundError:
        return state
    for raw in raw_lines:
        if not raw:
            continue
        try:
            rec = json.loads(raw)
            kind = rec["kind"]
            name = rec["name"]
            if kind == "counter":
                state["counters"][name] = float(rec["value"])
            elif kind == "gauge":
                state["gauges"][name] = float(rec["value"])
            elif kind == "histogram":
                state["histograms"][name] = rec["state"]
            else:
                break
        except (ValueError, KeyError, TypeError):
            # Torn tail: merge only the committed prefix.
            break
    return state


def merge_worker_telemetry(
    root: str, cell_id: str, target: MetricsRegistry
) -> int:
    """Merge *cell_id*'s flushed telemetry into *target*.

    Returns the number of instruments merged (0 when the cell flushed
    nothing, or its file is missing/empty/torn-at-line-one).
    """
    state = read_worker_telemetry(telemetry_path(root, cell_id))
    merged = (
        len(state["counters"]) + len(state["gauges"]) + len(state["histograms"])
    )
    if merged:
        target.merge_state(state)
    return merged
