"""Tenant registry and fair-share admission control.

The registry is the campaign service's source of truth for who may
submit work; the admission controller is the bulkhead's front door.
Its invariants:

* **Bounded queues** — each tenant's submit queue holds at most
  ``max_queue`` cells.  A submission past the bound is rejected with a
  *retry-after* hint proportional to the backlog; queues never grow
  without limit no matter how fast a tenant submits.
* **Quarantine-aware** — a tenant tripped by the
  :class:`~repro.campaign.breaker.TenantBreaker` is rejected at the
  door for the rest of its cooldown (the retry-after hint is the
  remaining cooldown), so a crash-looping tenant cannot even queue new
  blast radius.
* **Weighted fair share** — when several tenants have queued work, the
  dispatcher serves the tenant with the smallest served/weight ratio
  (deterministic id tie-break), so a heavy submitter cannot starve a
  light one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.campaign.breaker import TenantBreaker
from repro.campaign.spec import TenantSpec
from repro.errors import ReproError


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of one submit: accepted, or rejected with a retry hint."""

    accepted: bool
    tenant_id: str
    reason: str = ""
    retry_after: float = 0.0
    queue_depth: int = 0


@dataclass
class TenantState:
    """Runtime bookkeeping for one registered tenant."""

    spec: TenantSpec
    queue: deque = field(default_factory=deque)
    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    poisoned: int = 0
    leased_cores: int = 0
    served: int = 0


class TenantRegistry:
    """Registered tenants, in a deterministic (insertion) order."""

    def __init__(self) -> None:
        self._tenants: dict[str, TenantState] = {}

    def register(self, spec: TenantSpec) -> TenantState:
        spec.validate()
        if spec.tenant_id in self._tenants:
            raise ReproError(f"tenant {spec.tenant_id!r} is already registered")
        state = TenantState(spec=spec)
        self._tenants[spec.tenant_id] = state
        return state

    def require(self, tenant_id: str) -> TenantState:
        state = self._tenants.get(tenant_id)
        if state is None:
            raise ReproError(f"unknown tenant {tenant_id!r}")
        return state

    def ids(self) -> list[str]:
        return list(self._tenants)

    def states(self) -> list[TenantState]:
        return list(self._tenants.values())

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)


class AdmissionController:
    """Quota/backpressure gate + weighted fair-share dispatcher."""

    def __init__(
        self,
        registry: TenantRegistry,
        breaker: TenantBreaker | None = None,
        retry_after_base: float = 1.0,
    ) -> None:
        self.registry = registry
        self.breaker = breaker
        #: Retry-after hint per queued cell already waiting ahead.
        self.retry_after_base = retry_after_base

    # -- the front door ----------------------------------------------------------
    def submit(self, tenant_id: str, cell: Any, now: float = 0.0) -> AdmissionResult:
        """Admit one cell into *tenant_id*'s queue, or reject with a hint."""
        state = self.registry.require(tenant_id)
        if self.breaker is not None and self.breaker.is_quarantined(tenant_id, now):
            state.rejected += 1
            return AdmissionResult(
                accepted=False,
                tenant_id=tenant_id,
                reason="quarantined",
                retry_after=self.breaker.cooldown_remaining(tenant_id, now),
                queue_depth=len(state.queue),
            )
        if len(state.queue) >= state.spec.max_queue:
            state.rejected += 1
            return AdmissionResult(
                accepted=False,
                tenant_id=tenant_id,
                reason="queue-full",
                retry_after=self.retry_after_base * len(state.queue),
                queue_depth=len(state.queue),
            )
        state.queue.append(cell)
        state.submitted += 1
        return AdmissionResult(
            accepted=True, tenant_id=tenant_id, queue_depth=len(state.queue)
        )

    # -- fair-share dispatch -------------------------------------------------------
    def next_tenant(self, now: float = 0.0) -> str | None:
        """The tenant to serve next, or None when nothing is dispatchable.

        Quarantined tenants keep their queues (parked, not dropped) but
        are skipped until the breaker releases them.
        """
        best: tuple[float, str] | None = None
        for tid, state in sorted(
            ((s.spec.tenant_id, s) for s in self.registry.states())
        ):
            if not state.queue:
                continue
            if self.breaker is not None and self.breaker.is_quarantined(tid, now):
                continue
            ratio = state.served / state.spec.weight
            if best is None or ratio < best[0]:
                best = (ratio, tid)
        return None if best is None else best[1]

    def pop_cell(self, tenant_id: str) -> Any:
        """Dequeue the tenant's oldest cell and charge one service turn."""
        state = self.registry.require(tenant_id)
        if not state.queue:
            raise ReproError(f"tenant {tenant_id!r} has no queued cells")
        state.served += 1
        return state.queue.popleft()

    def pending(self) -> int:
        """Cells queued across all tenants (including quarantined ones)."""
        return sum(len(s.queue) for s in self.registry.states())
