"""The multi-tenant campaign service: bulkhead-isolated workflows.

Many tenants submit cells (parameterized workflow runs) into one shared
simulated machine.  The design invariant is **bulkhead isolation** —
nothing one tenant does can change what another tenant computes:

* every cell runs on a *fresh* :class:`~repro.sim.engine.SimEngine`
  over a machine partition of exactly the cores it leased from the
  campaign-level :class:`~repro.campaign.arbiter.MachineArbiter`, so a
  tenant's scenario fingerprint is a pure function of its own
  ``(factory, params, seed, cores)`` — bit-identical whether it runs
  solo or next to a crash-looping neighbor;
* admission is quota- and queue-bounded (reject-with-retry-after, see
  :mod:`repro.campaign.registry`), so a runaway submitter is throttled
  at the door;
* cell failures feed the per-tenant
  :class:`~repro.campaign.breaker.TenantBreaker`; a crash-looping
  tenant is quarantined for a cooldown instead of starving neighbors,
  and a per-tenant SLO fires a :class:`~repro.observability.HealthAlert`
  one failure *before* the breaker trips, so degradation is visible
  before containment;
* every tenant journals into its **own WAL directory** via
  :mod:`repro.journal`; one tenant's crash/resume replays only that
  tenant, and a supervisor crash mid-campaign resumes the grid with
  completed cells replayed verbatim from the per-tenant ledgers.

The service clock is *logical* (one tick per executed cell, plus
explicit :meth:`advance_time`), so every decision — breaker windows,
retry-after hints, fair-share order — replays deterministically.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.campaign.arbiter import Lease, MachineArbiter
from repro.campaign.breaker import TenantBreaker
from repro.campaign.executor import COMPLETED, SupervisedExecutor
from repro.campaign.registry import AdmissionController, AdmissionResult, TenantRegistry
from repro.campaign.spec import ExecutorSpec, TenantsSpec
from repro.campaign.statepoint import statepoint_id
from repro.errors import ReproError
from repro.journal import Journal, JournalSpec, read_journal
from repro.observability.slo import HealthAlert, SloEvaluator
from repro.observability.spec import SloSpec
from repro.resilience.spec import QuarantineSpec
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class TenantCell:
    """One unit of tenant work: a parameterized workflow run.

    ``factory(**params)`` builds the cell's
    :class:`~repro.wms.spec.WorkflowSpec`; the cell id is derived from
    the statepoint (params + seed + cores) unless given explicitly.
    """

    tenant_id: str
    factory: Callable[..., Any]
    params: dict[str, Any] = field(default_factory=dict)
    nprocs: int = 1
    seed: int = 0
    max_time: float = 10_000.0
    cell_id: str = ""

    def resolved_id(self, index: int) -> str:
        if self.cell_id:
            return self.cell_id
        return statepoint_id(
            self.tenant_id, index, self.params, seed=self.seed, nprocs=self.nprocs
        )


def run_cell_scenario(cell: TenantCell, lease: Lease) -> dict[str, Any]:
    """Default cell runner: the workflow alone on its bulkhead partition.

    Builds a fresh engine + machine of exactly the leased nodes, runs
    the cell's workflow without an orchestrator, and returns a JSON
    summary carrying the scenario fingerprint (the bit-identity oracle
    the isolation proof compares).
    """
    from repro.cluster import BatchScheduler, summit
    from repro.experiments.results import ScenarioResult
    from repro.experiments.runner import execute_scenario
    from repro.journal.resume import scenario_fingerprint
    from repro.sim.engine import SimEngine
    from repro.wms import Savanna

    engine = SimEngine()
    machine = summit(lease.nodes, cores_per_node=lease.cores_per_node)
    scheduler = BatchScheduler(engine, machine)
    job = scheduler.submit(lease.nodes, walltime_limit=cell.max_time)
    engine.run(until=0)
    workflow = cell.factory(**cell.params)
    launcher = Savanna(engine, workflow, job.allocation, rng=RngRegistry(cell.seed))
    makespan = execute_scenario(engine, launcher, None, max_time=cell.max_time)
    result = ScenarioResult(
        name=workflow.workflow_id,
        machine=f"partition-{lease.nodes}n",
        use_dyflow=False,
        makespan=makespan,
        trace=launcher.trace,
        launcher=launcher,
    )
    return {
        "makespan": makespan,
        "fingerprint": scenario_fingerprint(result),
        "nodes": lease.nodes,
        "cores": lease.cores,
    }


class CampaignService:
    """Admit, arbitrate, supervise, and journal many tenants' cells."""

    def __init__(
        self,
        spec: TenantsSpec,
        journal_root: str | None = None,
        run_cell: Callable[[TenantCell, Lease], dict] | None = None,
        rng_seed: int = 0,
    ) -> None:
        spec.validate()
        if spec.nodes <= 0 or spec.cores_per_node <= 0:
            raise ReproError(
                "CampaignService needs a concrete machine shape "
                "(tenants nodes/cores-per-node)"
            )
        self.spec = spec
        self.registry = TenantRegistry()
        for t in spec.tenants:
            self.registry.register(t)
        self._now = 0.0
        self.breaker = TenantBreaker(
            spec.breaker if spec.breaker is not None else QuarantineSpec(),
            clock=lambda: self._now,
        )
        self.admission = AdmissionController(self.registry, self.breaker)
        self.arbiter = MachineArbiter(spec.nodes, spec.cores_per_node)
        # The service supervises cells in-process (serial mode): cell
        # factories are closures, which worker processes cannot receive.
        # Process-parallel grids go through SupervisedExecutor directly
        # with a picklable grid function (see benchmarks/bench_multitenant).
        exec_spec = spec.executor if spec.executor is not None else ExecutorSpec()
        self.executor = SupervisedExecutor(
            replace(exec_spec, workers=0), rng=RngRegistry(rng_seed)
        )
        self.run_cell = run_cell if run_cell is not None else run_cell_scenario
        self.journal_root = journal_root
        self.results: list[dict[str, Any]] = []
        self._submit_index: dict[str, int] = {}
        # Per-tenant early-warning SLO: fires when the failure count
        # within the breaker window reaches one short of the trip
        # threshold — degraded is visible before quarantined.
        warn_at = max(1, self.breaker.spec.failures - 1)
        self._slo: dict[str, SloEvaluator] = {
            tid: SloEvaluator(SloSpec(
                metric=f"tenant.{tid}.failures", stat="count",
                op="LT", threshold=float(warn_at), severity="warning",
            ))
            for tid in self.registry.ids()
        }
        self.alerts: dict[str, list[HealthAlert]] = {
            tid: [] for tid in self.registry.ids()
        }

    # -- clock --------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def advance_time(self, dt: float) -> None:
        """Advance the logical clock (e.g. to let a cooldown elapse)."""
        if dt < 0:
            raise ReproError("time cannot go backwards")
        self._now += dt

    # -- submission ---------------------------------------------------------------
    def submit(self, cell: TenantCell) -> AdmissionResult:
        """Admit one cell (statepoint-id'd) through the tenant's gate."""
        index = self._submit_index.get(cell.tenant_id, 0)
        cell_id = cell.resolved_id(index)
        result = self.admission.submit(
            cell.tenant_id, (cell_id, cell), now=self._now
        )
        if result.accepted:
            self._submit_index[cell.tenant_id] = index + 1
        return result

    # -- per-tenant journals --------------------------------------------------------
    def _journal_spec(self, tenant_id: str) -> JournalSpec | None:
        if self.journal_root is None:
            return None
        return JournalSpec(dir=os.path.join(self.journal_root, tenant_id))

    def _load_completed(self, tenant_id: str) -> dict[str, dict]:
        """Completed-cell ledger from the tenant's own WAL directory."""
        spec = self._journal_spec(tenant_id)
        if spec is None:
            return {}
        from repro.journal.wal import list_segment_indices

        if not (os.path.isdir(spec.dir) and list_segment_indices(spec.dir)):
            return {}
        completed: dict[str, dict] = {}
        for rec in read_journal(spec.dir).records:
            if rec["kind"] == "cell-completed":
                completed[rec["cell_id"]] = rec["result"]
            elif rec["kind"] == "cell-poisoned":
                completed[rec["cell_id"]] = {"__poisoned__": rec["failures"]}
        return completed

    def _open_journal(self, tenant_id: str) -> Journal | None:
        spec = self._journal_spec(tenant_id)
        if spec is None:
            return None
        from repro.journal.wal import list_segment_indices

        if os.path.isdir(spec.dir) and list_segment_indices(spec.dir):
            return Journal.reopen(spec.dir, spec=spec)
        journal = Journal.open(spec)
        journal.append("meta", tenant=tenant_id)
        return journal

    # -- the dispatch loop -----------------------------------------------------------
    def run_pending(self, stop_after: int | None = None) -> list[dict[str, Any]]:
        """Serve queued cells fair-share until drained (or *stop_after*).

        ``stop_after`` caps cells *executed* this call (replayed ledger
        hits do not count) — it models a supervisor crash mid-campaign,
        exactly like :meth:`CampaignRunner.run`.  Cells of quarantined
        tenants stay parked; the loop stops when nothing is
        dispatchable.  Returns this call's cell records.
        """
        completed = {tid: self._load_completed(tid) for tid in self.registry.ids()}
        journals: dict[str, Journal | None] = {}
        executed = 0
        batch: list[dict[str, Any]] = []
        try:
            while True:
                tid = self.admission.next_tenant(self._now)
                if tid is None:
                    break
                if stop_after is not None and executed >= stop_after:
                    break
                cell_id, cell = self.admission.pop_cell(tid)
                state = self.registry.require(tid)
                record = self._serve(
                    tid, cell_id, cell, state, completed[tid], journals
                )
                batch.append(record)
                self.results.append(record)
                if not record["replayed"]:
                    executed += 1
                    self._now += 1.0
        finally:
            for journal in journals.values():
                if journal is not None:
                    journal.close()
        return batch

    def _serve(
        self, tid, cell_id, cell, state, completed, journals
    ) -> dict[str, Any]:
        # Ledger replay: a completed (or poisoned) cell is never re-run.
        if cell_id in completed:
            prior = completed[cell_id]
            if isinstance(prior, dict) and "__poisoned__" in prior:
                state.poisoned += 1
                return {
                    "tenant": tid, "cell_id": cell_id, "status": "poisoned",
                    "result": None, "replayed": True, "attempts": 0,
                }
            state.completed += 1
            return {
                "tenant": tid, "cell_id": cell_id, "status": "completed",
                "result": prior, "replayed": True, "attempts": 0,
            }
        lease, deny = self.arbiter.try_lease(state.spec, cell_id, cell.nprocs)
        if lease is None:
            # One-cell-at-a-time service: a denial here is structural
            # (request beyond quota or machine), not transient.
            state.rejected += 1
            return {
                "tenant": tid, "cell_id": cell_id, "status": f"rejected-{deny}",
                "result": None, "replayed": False, "attempts": 0,
            }
        if tid not in journals:
            journals[tid] = self._open_journal(tid)
        journal = journals[tid]
        try:
            if journal is not None:
                journal.append("cell-started", cell_id=cell_id, params=cell.params)
            [outcome] = self.executor.run(
                [(cell_id, cell)], lambda c, lease=lease: self.run_cell(c, lease)
            )
        finally:
            self.arbiter.release(lease)
        for failure in outcome.failures:
            self.breaker.record_failure(tid, self._now)
            state.failed += 1
        self._evaluate_health(tid)
        if outcome.status == COMPLETED:
            state.completed += 1
            if journal is not None:
                journal.append("cell-completed", cell_id=cell_id,
                               result=outcome.result)
                journal.sync()
            return {
                "tenant": tid, "cell_id": cell_id, "status": "completed",
                "result": outcome.result, "replayed": False,
                "attempts": outcome.attempts,
            }
        state.poisoned += 1
        if journal is not None:
            journal.append(
                "cell-poisoned", cell_id=cell_id,
                failures=[[f.attempt, f.kind, f.detail] for f in outcome.failures],
            )
            journal.sync()
        return {
            "tenant": tid, "cell_id": cell_id, "status": "poisoned",
            "result": None, "replayed": False, "attempts": outcome.attempts,
        }

    # -- health --------------------------------------------------------------------
    def _evaluate_health(self, tenant_id: str) -> None:
        alert = self._slo[tenant_id].evaluate(
            self._now, float(self.breaker.blamed(tenant_id))
        )
        if alert is not None:
            self.alerts[tenant_id].append(alert)

    # -- reporting -----------------------------------------------------------------
    def tenant_summary(self) -> dict[str, dict[str, Any]]:
        """Per-tenant counters for reports and benchmarks."""
        out: dict[str, dict[str, Any]] = {}
        for state in self.registry.states():
            tid = state.spec.tenant_id
            out[tid] = {
                "submitted": state.submitted,
                "rejected": state.rejected,
                "completed": state.completed,
                "failed": state.failed,
                "poisoned": state.poisoned,
                "queued": len(state.queue),
                "quarantined": self.breaker.is_quarantined(tid, self._now),
                "quarantine_trips": self.breaker.trips(tid),
                "alerts": [a.to_dict() for a in self.alerts[tid]],
            }
        return out
