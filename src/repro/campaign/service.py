"""The multi-tenant campaign service: bulkhead-isolated workflows.

Many tenants submit cells (parameterized workflow runs) into one shared
simulated machine.  The design invariant is **bulkhead isolation** —
nothing one tenant does can change what another tenant computes:

* every cell runs on a *fresh* :class:`~repro.sim.engine.SimEngine`
  over a machine partition of exactly the cores it leased from the
  campaign-level :class:`~repro.campaign.arbiter.MachineArbiter`, so a
  tenant's scenario fingerprint is a pure function of its own
  ``(factory, params, seed, cores)`` — bit-identical whether it runs
  solo or next to a crash-looping neighbor;
* admission is quota- and queue-bounded (reject-with-retry-after, see
  :mod:`repro.campaign.registry`), so a runaway submitter is throttled
  at the door;
* cell failures feed the per-tenant
  :class:`~repro.campaign.breaker.TenantBreaker`; a crash-looping
  tenant is quarantined for a cooldown instead of starving neighbors,
  and a per-tenant SLO fires a :class:`~repro.observability.HealthAlert`
  one failure *before* the breaker trips, so degradation is visible
  before containment;
* every tenant journals into its **own WAL directory** via
  :mod:`repro.journal`; one tenant's crash/resume replays only that
  tenant, and a supervisor crash mid-campaign resumes the grid with
  completed cells replayed verbatim from the per-tenant ledgers.

The service clock is *logical* (one tick per executed cell, plus
explicit :meth:`advance_time`), so every decision — breaker windows,
retry-after hints, fair-share order — replays deterministically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.campaign.arbiter import Lease, MachineArbiter
from repro.campaign.breaker import TenantBreaker
from repro.campaign.executor import COMPLETED, SupervisedExecutor
from repro.campaign.registry import AdmissionController, AdmissionResult, TenantRegistry
from repro.campaign.spec import ExecutorSpec, TenantsSpec
from repro.campaign.statepoint import statepoint_id
from repro.errors import ReproError
from repro.journal import Journal, JournalSpec, read_journal
from repro.observability.fleet import FleetHealthEngine
from repro.observability.slo import HealthAlert, SloEvaluator
from repro.observability.spec import ObservabilitySpec, SloSpec
from repro.observability.watch import WatchStream
from repro.resilience.spec import QuarantineSpec
from repro.sim.rng import RngRegistry

#: Subdirectory of the journal root holding campaign-level (not
#: per-tenant) durable state: the fleet WAL, the watch stream, and
#: flight-recorder dumps.
FLEET_DIR = "__fleet__"


@dataclass(frozen=True)
class TenantCell:
    """One unit of tenant work: a parameterized workflow run.

    ``factory(**params)`` builds the cell's
    :class:`~repro.wms.spec.WorkflowSpec`; the cell id is derived from
    the statepoint (params + seed + cores) unless given explicitly.
    """

    tenant_id: str
    factory: Callable[..., Any]
    params: dict[str, Any] = field(default_factory=dict)
    nprocs: int = 1
    seed: int = 0
    max_time: float = 10_000.0
    cell_id: str = ""

    def resolved_id(self, index: int) -> str:
        if self.cell_id:
            return self.cell_id
        return statepoint_id(
            self.tenant_id, index, self.params, seed=self.seed, nprocs=self.nprocs
        )


def run_cell_scenario(cell: TenantCell, lease: Lease) -> dict[str, Any]:
    """Default cell runner: the workflow alone on its bulkhead partition.

    Builds a fresh engine + machine of exactly the leased nodes, runs
    the cell's workflow without an orchestrator, and returns a JSON
    summary carrying the scenario fingerprint (the bit-identity oracle
    the isolation proof compares).
    """
    from repro.cluster import BatchScheduler, summit
    from repro.experiments.results import ScenarioResult
    from repro.experiments.runner import execute_scenario
    from repro.journal.resume import scenario_fingerprint
    from repro.sim.engine import SimEngine
    from repro.wms import Savanna

    engine = SimEngine()
    machine = summit(lease.nodes, cores_per_node=lease.cores_per_node)
    scheduler = BatchScheduler(engine, machine)
    job = scheduler.submit(lease.nodes, walltime_limit=cell.max_time)
    engine.run(until=0)
    workflow = cell.factory(**cell.params)
    launcher = Savanna(engine, workflow, job.allocation, rng=RngRegistry(cell.seed))
    makespan = execute_scenario(engine, launcher, None, max_time=cell.max_time)
    result = ScenarioResult(
        name=workflow.workflow_id,
        machine=f"partition-{lease.nodes}n",
        use_dyflow=False,
        makespan=makespan,
        trace=launcher.trace,
        launcher=launcher,
    )
    return {
        "makespan": makespan,
        "fingerprint": scenario_fingerprint(result),
        "nodes": lease.nodes,
        "cores": lease.cores,
    }


class CampaignService:
    """Admit, arbitrate, supervise, and journal many tenants' cells."""

    def __init__(
        self,
        spec: TenantsSpec,
        journal_root: str | None = None,
        run_cell: Callable[[TenantCell, Lease], dict] | None = None,
        rng_seed: int = 0,
        observability: ObservabilitySpec | None = None,
    ) -> None:
        spec.validate()
        if spec.nodes <= 0 or spec.cores_per_node <= 0:
            raise ReproError(
                "CampaignService needs a concrete machine shape "
                "(tenants nodes/cores-per-node)"
            )
        self.spec = spec
        self.registry = TenantRegistry()
        for t in spec.tenants:
            self.registry.register(t)
        self._now = 0.0
        self.breaker = TenantBreaker(
            spec.breaker if spec.breaker is not None else QuarantineSpec(),
            clock=lambda: self._now,
        )
        self.admission = AdmissionController(self.registry, self.breaker)
        self.arbiter = MachineArbiter(spec.nodes, spec.cores_per_node)
        # The service supervises cells in-process (serial mode): cell
        # factories are closures, which worker processes cannot receive.
        # Process-parallel grids go through SupervisedExecutor directly
        # with a picklable grid function (see benchmarks/bench_multitenant).
        exec_spec = spec.executor if spec.executor is not None else ExecutorSpec()
        self.executor = SupervisedExecutor(
            replace(exec_spec, workers=0), rng=RngRegistry(rng_seed)
        )
        self.run_cell = run_cell if run_cell is not None else run_cell_scenario
        self.journal_root = journal_root
        self.results: list[dict[str, Any]] = []
        self._submit_index: dict[str, int] = {}
        # Per-tenant early-warning SLO: fires when the failure count
        # within the breaker window reaches one short of the trip
        # threshold — degraded is visible before quarantined.
        warn_at = max(1, self.breaker.spec.failures - 1)
        self._slo: dict[str, SloEvaluator] = {
            tid: SloEvaluator(SloSpec(
                metric=f"tenant.{tid}.failures", stat="count",
                op="LT", threshold=float(warn_at), severity="warning",
            ))
            for tid in self.registry.ids()
        }
        self.alerts: dict[str, list[HealthAlert]] = {
            tid: [] for tid in self.registry.ids()
        }
        # Fleet observability plane (repro.observability.fleet / .watch):
        # active only when the spec asks for it, so the disabled path
        # costs a couple of None checks per cell.
        self.observability = observability
        fleet_spec = None
        if (
            observability is not None
            and observability.enabled
            and observability.fleet is not None
            and observability.fleet.enabled
        ):
            observability.validate()
            fleet_spec = observability.fleet
        self.fleet: FleetHealthEngine | None = None
        self._watch: WatchStream | None = None
        self._fleet_journal_spec: JournalSpec | None = None
        self._fleet_slo: dict[str, list[SloEvaluator]] = {}
        self._resume_replay = False
        if fleet_spec is not None:
            self.fleet = FleetHealthEngine(fleet_spec)
            watch_path = fleet_spec.watch_path
            if journal_root is not None:
                fleet_dir = os.path.join(journal_root, FLEET_DIR)
                os.makedirs(fleet_dir, exist_ok=True)
                if watch_path is None:
                    watch_path = os.path.join(fleet_dir, "watch.jsonl")
                self._fleet_journal_spec = JournalSpec(dir=os.path.join(fleet_dir, "wal"))
            self._watch = WatchStream(watch_path)
            # Tenant-scoped SLOs declared on the observability spec run
            # against the tenant's fleet rollup registry.
            known = set(self.registry.ids())
            for slo in observability.slos:
                if not slo.tenant:
                    continue
                if slo.tenant not in known:
                    # The lint counterpart is DY412; at runtime this is a
                    # hard error, not a silent no-op objective.
                    raise ReproError(
                        f"slo {slo.key!r} references unknown tenant {slo.tenant!r}"
                    )
                self._fleet_slo.setdefault(slo.tenant, []).append(SloEvaluator(slo))
            # A watch stream reloaded with committed events means this
            # service is resuming a crashed supervisor: until it executes
            # a fresh cell (or the clock moves), submissions are replays
            # of the pre-crash sequence, not live traffic.
            self._resume_replay = bool(self._watch.read(0))
            self._restore_fleet_barrier()
            self._emit("campaign-open", "campaign-open",
                       tenants=sorted(self.registry.ids()))

    # -- clock --------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def advance_time(self, dt: float) -> None:
        """Advance the logical clock (e.g. to let a cooldown elapse)."""
        if dt < 0:
            raise ReproError("time cannot go backwards")
        self._now += dt
        self._resume_replay = False

    # -- watch stream ---------------------------------------------------------------
    def _emit(self, kind: str, key: str, **payload: Any) -> bool:
        """Append one watch event (idempotent by *key*); True if new."""
        if self._watch is None:
            return False
        return self._watch.emit(kind, key, self._now, **payload)

    def watch(self, since: int = 0) -> list[dict[str, Any]]:
        """The typed, seekable event stream (admissions, leases, cells,
        breaker/SLO transitions) from cursor *since*.

        Requires the fleet plane
        (``ObservabilitySpec(fleet=FleetSpec(...))``); with a journal
        root the stream is durable JSONL at :attr:`watch_path` and stays
        byte-identical across a supervisor crash/resume.
        """
        if self._watch is None:
            raise ReproError(
                "watch() needs the fleet observability plane "
                "(pass observability=ObservabilitySpec(fleet=FleetSpec()))"
            )
        return self._watch.read(since)

    @property
    def watch_path(self) -> str | None:
        return self._watch.path if self._watch is not None else None

    # -- submission ---------------------------------------------------------------
    def submit(self, cell: TenantCell) -> AdmissionResult:
        """Admit one cell (statepoint-id'd) through the tenant's gate."""
        index = self._submit_index.get(cell.tenant_id, 0)
        cell_id = cell.resolved_id(index)
        if self._watch is not None and self._watch.seen(f"admit:{cell_id}"):
            # Resume re-submission of a cell the pre-crash service already
            # admitted: bypass the gate — a breaker restored from the fleet
            # barrier may be quarantining the tenant *now*, but rejecting
            # here would drop accepted work (parked cells, ledger replays)
            # and fork the watch stream from the uninterrupted run.
            state = self.admission.registry.require(cell.tenant_id)
            state.queue.append((cell_id, cell))
            state.submitted += 1
            self._submit_index[cell.tenant_id] = index + 1
            return AdmissionResult(
                accepted=True, tenant_id=cell.tenant_id,
                queue_depth=len(state.queue),
            )
        if self._watch is not None and self._resume_replay:
            for reason in ("quarantined", "queue-full"):
                if self._watch.seen(f"reject:{cell_id}:{reason}"):
                    # The pre-crash service turned this submission away;
                    # replay the same verdict without re-counting it.
                    state = self.admission.registry.require(cell.tenant_id)
                    return AdmissionResult(
                        accepted=False, tenant_id=cell.tenant_id,
                        reason=reason, retry_after=0.0,
                        queue_depth=len(state.queue),
                    )
        result = self.admission.submit(
            cell.tenant_id, (cell_id, cell), now=self._now
        )
        if result.accepted:
            self._submit_index[cell.tenant_id] = index + 1
            self._emit("admit", f"admit:{cell_id}",
                       tenant=cell.tenant_id, cell_id=cell_id)
        else:
            fresh = self._emit(
                "reject", f"reject:{cell_id}:{result.reason}",
                tenant=cell.tenant_id, cell_id=cell_id, reason=result.reason,
            )
            if fresh and self.fleet is not None:
                # Gated on the dedup so a crash/resume's re-submissions
                # do not double-count into the rollup.
                self.fleet.record_rejection(cell.tenant_id)
        return result

    # -- per-tenant journals --------------------------------------------------------
    def _journal_spec(self, tenant_id: str) -> JournalSpec | None:
        if self.journal_root is None:
            return None
        return JournalSpec(dir=os.path.join(self.journal_root, tenant_id))

    def _load_completed(self, tenant_id: str) -> dict[str, dict]:
        """Completed-cell ledger from the tenant's own WAL directory."""
        spec = self._journal_spec(tenant_id)
        if spec is None:
            return {}
        from repro.journal.wal import list_segment_indices

        if not (os.path.isdir(spec.dir) and list_segment_indices(spec.dir)):
            return {}
        completed: dict[str, dict] = {}
        for rec in read_journal(spec.dir).records:
            if rec["kind"] == "cell-completed":
                completed[rec["cell_id"]] = rec["result"]
            elif rec["kind"] == "cell-poisoned":
                completed[rec["cell_id"]] = {"__poisoned__": rec["failures"]}
        return completed

    def _open_journal(self, tenant_id: str) -> Journal | None:
        spec = self._journal_spec(tenant_id)
        if spec is None:
            return None
        from repro.journal.wal import list_segment_indices

        if os.path.isdir(spec.dir) and list_segment_indices(spec.dir):
            return Journal.reopen(spec.dir, spec=spec)
        journal = Journal.open(spec)
        journal.append("meta", tenant=tenant_id)
        return journal

    # -- fleet WAL ------------------------------------------------------------------
    def _open_fleet_journal(self) -> Journal | None:
        spec = self._fleet_journal_spec
        if spec is None:
            return None
        from repro.journal.wal import list_segment_indices

        if os.path.isdir(spec.dir) and list_segment_indices(spec.dir):
            return Journal.reopen(spec.dir, spec=spec)
        journal = Journal.open(spec)
        journal.append("meta", scope="fleet")
        return journal

    def _fleet_state(self) -> dict[str, Any]:
        assert self.fleet is not None
        return {
            "fleet": self.fleet.state_dict(),
            "breaker": self.breaker.state_dict(),
            "slo": {tid: self._slo[tid].state_dict() for tid in sorted(self._slo)},
            "fleet_slo": {
                ev.spec.key: ev.state_dict()
                for tid in sorted(self._fleet_slo)
                for ev in self._fleet_slo[tid]
            },
            "alerts": {
                tid: [a.to_dict() for a in self.alerts[tid]]
                for tid in sorted(self.alerts)
            },
        }

    def _fleet_barrier(self, journal: Journal | None) -> None:
        """Make the fleet plane durable after one executed cell.

        The barrier carries everything the resumed service cannot
        rebuild from the per-tenant ledgers alone — the logical clock,
        breaker windows, SLO evaluator streaks, alert lists, and the
        fleet rollup registries — so rollups and watch streams come back
        bit-identical.
        """
        if journal is None:
            return
        journal.append("fleet-barrier", t=self._now, state=self._fleet_state())
        journal.sync()
        if self._watch is not None:
            self._watch.sync()

    def _restore_fleet_barrier(self) -> None:
        spec = self._fleet_journal_spec
        if spec is None:
            return
        from repro.journal.wal import list_segment_indices

        if not (os.path.isdir(spec.dir) and list_segment_indices(spec.dir)):
            return
        barrier: dict[str, Any] | None = None
        for rec in read_journal(spec.dir).records:
            if rec["kind"] == "fleet-barrier":
                barrier = rec
        if barrier is None:
            return
        assert self.fleet is not None
        state = barrier["state"]
        self._now = float(barrier["t"])
        self.fleet.load_state_dict(state["fleet"])
        self.breaker.load_state_dict(state["breaker"])
        for tid, ev_state in state.get("slo", {}).items():
            if tid in self._slo:
                self._slo[tid].load_state_dict(ev_state)
        by_key = {
            ev.spec.key: ev
            for evs in self._fleet_slo.values()
            for ev in evs
        }
        for key, ev_state in state.get("fleet_slo", {}).items():
            if key in by_key:
                by_key[key].load_state_dict(ev_state)
        for tid, alerts in state.get("alerts", {}).items():
            if tid in self.alerts:
                self.alerts[tid] = [HealthAlert.from_dict(a) for a in alerts]

    def _dump_flight_recorder(self, cell_id: str) -> str | None:
        """Post-mortem for a poison quarantine: recent watch events +
        the fleet rollup, bounded by ``fleet.flight_recorder``."""
        if (
            self.fleet is None
            or self.fleet.spec.flight_recorder <= 0
            or self.journal_root is None
            or self._watch is None
        ):
            return None
        window = max(0, self._watch.seq - self.fleet.spec.flight_recorder)
        doc = {
            "schema": "dyflow-flight-recorder/1",
            "reason": f"poison:{cell_id}",
            "events": self._watch.read(window),
            "rollup": self.fleet.rollup(),
        }
        path = os.path.join(
            self.journal_root, FLEET_DIR, f"flight-{cell_id}.json"
        )
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return path

    # -- the dispatch loop -----------------------------------------------------------
    def run_pending(self, stop_after: int | None = None) -> list[dict[str, Any]]:
        """Serve queued cells fair-share until drained (or *stop_after*).

        ``stop_after`` caps cells *executed* this call (replayed ledger
        hits do not count) — it models a supervisor crash mid-campaign,
        exactly like :meth:`CampaignRunner.run`.  Cells of quarantined
        tenants stay parked; the loop stops when nothing is
        dispatchable.  Returns this call's cell records.
        """
        completed = {tid: self._load_completed(tid) for tid in self.registry.ids()}
        journals: dict[str, Journal | None] = {}
        fleet_journal = self._open_fleet_journal() if self.fleet is not None else None
        executed = 0
        batch: list[dict[str, Any]] = []
        try:
            while True:
                tid = self.admission.next_tenant(self._now)
                if tid is None:
                    break
                if stop_after is not None and executed >= stop_after:
                    break
                cell_id, cell = self.admission.pop_cell(tid)
                state = self.registry.require(tid)
                record = self._serve(
                    tid, cell_id, cell, state, completed[tid], journals
                )
                batch.append(record)
                self.results.append(record)
                if not record["replayed"]:
                    self._resume_replay = False
                    executed += 1
                    self._now += 1.0
                    self._fleet_barrier(fleet_journal)
        finally:
            for journal in journals.values():
                if journal is not None:
                    journal.close()
            if fleet_journal is not None:
                fleet_journal.close()
            if self.fleet is not None:
                path = self.fleet.spec.openmetrics_path
                if path is not None:
                    with open(path, "w", encoding="utf-8") as fh:
                        fh.write(self.fleet.render_openmetrics())
        return batch

    def _serve(
        self, tid, cell_id, cell, state, completed, journals
    ) -> dict[str, Any]:
        # Ledger replay: a completed (or poisoned) cell is never re-run.
        if cell_id in completed:
            prior = completed[cell_id]
            if isinstance(prior, dict) and "__poisoned__" in prior:
                state.poisoned += 1
                return {
                    "tenant": tid, "cell_id": cell_id, "status": "poisoned",
                    "result": None, "replayed": True, "attempts": 0,
                }
            state.completed += 1
            return {
                "tenant": tid, "cell_id": cell_id, "status": "completed",
                "result": prior, "replayed": True, "attempts": 0,
            }
        lease, deny = self.arbiter.try_lease(state.spec, cell_id, cell.nprocs)
        if lease is None:
            # One-cell-at-a-time service: a denial here is structural
            # (request beyond quota or machine), not transient.
            state.rejected += 1
            fresh = self._emit("lease-deny", f"lease-deny:{cell_id}",
                               tenant=tid, cell_id=cell_id, reason=deny)
            if fresh and self.fleet is not None:
                self.fleet.record_rejection(tid)
            return {
                "tenant": tid, "cell_id": cell_id, "status": f"rejected-{deny}",
                "result": None, "replayed": False, "attempts": 0,
            }
        self._emit("lease-grant", f"lease-grant:{cell_id}", tenant=tid,
                   cell_id=cell_id, nodes=lease.nodes, cores=lease.cores)
        if tid not in journals:
            journals[tid] = self._open_journal(tid)
        journal = journals[tid]
        try:
            if journal is not None:
                journal.append("cell-started", cell_id=cell_id, params=cell.params)
            self._emit("cell-start", f"cell-start:{cell_id}",
                       tenant=tid, cell_id=cell_id)
            [outcome] = self.executor.run(
                [(cell_id, cell)], lambda c, lease=lease: self.run_cell(c, lease)
            )
        finally:
            self.arbiter.release(lease)
        trips_before = self.breaker.trips(tid)
        for failure in outcome.failures:
            self.breaker.record_failure(tid, self._now)
            state.failed += 1
            self._emit("cell-retry", f"cell-retry:{cell_id}:{failure.attempt}",
                       tenant=tid, cell_id=cell_id, attempt=failure.attempt,
                       fail_kind=failure.kind)
        for trip in range(trips_before, self.breaker.trips(tid)):
            fresh = self._emit("breaker-trip", f"breaker-trip:{tid}:{trip}",
                               tenant=tid, trip=trip)
            if fresh and self.fleet is not None:
                self.fleet.record_trip(tid)
        self._evaluate_health(tid)
        if outcome.status == COMPLETED:
            state.completed += 1
            if self.fleet is not None:
                self.fleet.record_cell(
                    tid, float(outcome.result.get("makespan", 0.0))
                    if isinstance(outcome.result, dict) else 0.0,
                    status="completed", failures=len(outcome.failures),
                )
            self._evaluate_fleet_slos(tid)
            self._emit("cell-complete", f"cell-complete:{cell_id}",
                       tenant=tid, cell_id=cell_id, attempts=outcome.attempts)
            if journal is not None:
                journal.append("cell-completed", cell_id=cell_id,
                               result=outcome.result)
                journal.sync()
            return {
                "tenant": tid, "cell_id": cell_id, "status": "completed",
                "result": outcome.result, "replayed": False,
                "attempts": outcome.attempts,
            }
        state.poisoned += 1
        if self.fleet is not None:
            self.fleet.record_cell(tid, 0.0, status="poisoned",
                                   failures=len(outcome.failures))
        self._evaluate_fleet_slos(tid)
        self._emit("cell-poison", f"cell-poison:{cell_id}",
                   tenant=tid, cell_id=cell_id, attempts=outcome.attempts)
        if journal is not None:
            journal.append(
                "cell-poisoned", cell_id=cell_id,
                failures=[[f.attempt, f.kind, f.detail] for f in outcome.failures],
            )
            journal.sync()
        self._dump_flight_recorder(cell_id)
        return {
            "tenant": tid, "cell_id": cell_id, "status": "poisoned",
            "result": None, "replayed": False, "attempts": outcome.attempts,
        }

    # -- health --------------------------------------------------------------------
    def _evaluate_health(self, tenant_id: str) -> None:
        alert = self._slo[tenant_id].evaluate(
            self._now, float(self.breaker.blamed(tenant_id))
        )
        if alert is not None:
            ordinal = len(self.alerts[tenant_id])
            self.alerts[tenant_id].append(alert)
            self._emit("alert", f"alert:{tenant_id}:{ordinal}",
                       tenant=tenant_id, alert=alert.to_dict())
            if self.fleet is not None:
                self.fleet.ingest_alert(tenant_id, alert)

    def _fleet_metric(self, tenant_id: str, metric: str, stat: str) -> float | None:
        """Resolve one tenant-scoped SLO input from the fleet registry."""
        assert self.fleet is not None
        inst = self.fleet.registry(tenant_id).lookup(metric)
        if inst is None:
            return None
        if stat == "value":
            return float(inst.value)
        # The remaining stats are histogram-only; a counter/gauge under a
        # histogram stat reads as "not yet observable" rather than erroring.
        count = getattr(inst, "count", None)
        if count is None:
            return None
        if stat == "count":
            return float(count)
        if count == 0:
            return None
        if stat in ("p50", "p95", "p99"):
            return float(inst.percentile(float(stat[1:])))
        return float(getattr(inst, stat))

    def _evaluate_fleet_slos(self, tenant_id: str) -> None:
        """Run the spec's tenant-scoped objectives after an executed cell."""
        for evaluator in self._fleet_slo.get(tenant_id, ()):
            slo = evaluator.spec
            value = self._fleet_metric(tenant_id, slo.metric, slo.stat)
            alert = evaluator.evaluate(self._now, value)
            if alert is None:
                continue
            assert self.fleet is not None
            ordinal = sum(
                1 for a in self.fleet.alerts(tenant_id) if a.source == alert.source
            )
            self._emit(
                "slo-transition", f"slo:{slo.key}:{alert.kind}:{ordinal}",
                tenant=tenant_id, alert=alert.to_dict(),
            )
            self.fleet.ingest_alert(tenant_id, alert)

    # -- reporting -----------------------------------------------------------------
    def tenant_summary(self) -> dict[str, dict[str, Any]]:
        """Per-tenant counters for reports and benchmarks.

        Deterministically ordered: tenant ids sorted, field order fixed —
        two equivalent campaigns produce byte-identical JSON dumps.
        """
        out: dict[str, dict[str, Any]] = {}
        for tid in sorted(self.registry.ids()):
            state = self.registry.require(tid)
            out[tid] = {
                "submitted": state.submitted,
                "rejected": state.rejected,
                "completed": state.completed,
                "failed": state.failed,
                "poisoned": state.poisoned,
                "queued": len(state.queue),
                "quarantined": self.breaker.is_quarantined(tid, self._now),
                "quarantine_trips": self.breaker.trips(tid),
                "alerts": [a.to_dict() for a in self.alerts[tid]],
            }
        return out
