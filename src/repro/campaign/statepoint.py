"""Signac-style statepoint hashing: content-addressed parameter points.

A *statepoint* is the full parameter dict of one campaign cell.  Its
hash is computed over a canonical JSON rendering (sorted keys, no
whitespace ambiguity), so two cells share an id **iff** they share
content — the signac convention.  Campaign run ids embed this hash,
which is what makes a resumed or renamed campaign incapable of
replaying the wrong cell's ledger entry: a cell whose parameters (or
seed, or machine) changed hashes to a new id and simply misses the old
completion record.

Only JSON-representable parameter values participate; anything else is
rendered through ``repr`` (deterministic for the plain values campaigns
sweep).  Floats keep full ``repr`` precision via the JSON encoder.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

#: Hex digits of the content hash embedded in run ids.  Eight digits
#: (32 bits) keeps ids readable; collisions within one campaign grid
#: would need ~2^16 distinct points sharing a prefix.
ID_HASH_LEN = 8


def _canonical(value: Any) -> Any:
    """Reduce *value* to a JSON-encodable canonical form."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def canonical_json(params: Mapping[str, Any], **context: Any) -> str:
    """The canonical JSON document a statepoint hash is computed over.

    *context* entries (seed, machine, ...) are folded in under a
    reserved ``__context__`` key so they can never collide with a swept
    parameter name.
    """
    doc: dict[str, Any] = _canonical(params)
    ctx = {k: _canonical(v) for k, v in sorted(context.items()) if v is not None}
    if ctx:
        doc = {"__context__": ctx, "params": doc}
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def statepoint_hash(params: Mapping[str, Any], **context: Any) -> str:
    """Full SHA-256 hex digest of the canonical statepoint document."""
    return hashlib.sha256(canonical_json(params, **context).encode("utf-8")).hexdigest()


def statepoint_id(
    name: str, index: int, params: Mapping[str, Any], **context: Any
) -> str:
    """A campaign run id: ``<name>.<index>-<hash8>``.

    The ordinal keeps grid order human-readable; the hash suffix makes
    the id content-addressed, so a ledger entry recorded under one id
    can only ever be replayed by a cell with identical content.
    """
    return f"{name}.{index}-{statepoint_hash(params, **context)[:ID_HASH_LEN]}"
