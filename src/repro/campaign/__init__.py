"""Fault-contained multi-tenant campaign service (Dflow/PaPaS shape).

Many workflows (tenants) share simulated machines with **bulkhead
isolation** as the design invariant: per-tenant quotas and bounded
queues at admission, a campaign-level machine arbiter, per-tenant
circuit breakers and WAL directories, and a PaPaS-style crash-
supervised parallel executor for the campaign grid.  See
``docs/campaign.md`` for the tenancy model and isolation guarantees.

Resolution is lazy (PEP 562): ``repro.wms.campaign`` imports the
statepoint hash from here, and an eager ``__init__`` would close an
import cycle through the service's WMS dependencies.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    # configuration
    "TenantSpec": "repro.campaign.spec",
    "TenantsSpec": "repro.campaign.spec",
    "ExecutorSpec": "repro.campaign.spec",
    # statepoint hashing
    "canonical_json": "repro.campaign.statepoint",
    "statepoint_hash": "repro.campaign.statepoint",
    "statepoint_id": "repro.campaign.statepoint",
    # admission
    "TenantRegistry": "repro.campaign.registry",
    "TenantState": "repro.campaign.registry",
    "AdmissionController": "repro.campaign.registry",
    "AdmissionResult": "repro.campaign.registry",
    # fault containment
    "TenantBreaker": "repro.campaign.breaker",
    # machine-wide arbitration
    "MachineArbiter": "repro.campaign.arbiter",
    "Lease": "repro.campaign.arbiter",
    # crash-supervised execution
    "SupervisedExecutor": "repro.campaign.executor",
    "CellOutcome": "repro.campaign.executor",
    "CellFailure": "repro.campaign.executor",
    # worker-side telemetry handoff
    "worker_registry": "repro.campaign.workertel",
    "flush_worker_telemetry": "repro.campaign.workertel",
    "merge_worker_telemetry": "repro.campaign.workertel",
    "read_worker_telemetry": "repro.campaign.workertel",
    # the service
    "CampaignService": "repro.campaign.service",
    "TenantCell": "repro.campaign.service",
    "run_cell_scenario": "repro.campaign.service",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    impl = _EXPORTS.get(name)
    if impl is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    obj = getattr(importlib.import_module(impl), name)
    globals()[name] = obj
    return obj


def __dir__() -> list[str]:
    return sorted(__all__)
