"""Campaign-service configuration: tenants, quotas, and the executor.

The ``<tenants>`` XML section (see ``docs/xml-reference.md``) parses
into :class:`TenantsSpec`; programmatic users build the dataclasses
directly.  The section is deliberately self-contained: it carries the
shared machine's shape (``nodes`` × ``cores-per-node``) alongside the
per-tenant quotas, so a spec document can be statically verified
(DY410/DY411) without a live machine object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.resilience.spec import QuarantineSpec


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's admission contract on the shared machine.

    Args:
        tenant_id: unique tenant name.
        quota_cores: cap on cores the tenant may hold concurrently
            (0 = no per-tenant cap; the machine still bounds everyone).
        weight: fair-share weight — a tenant with weight 2 is served
            twice as often as one with weight 1 when both have work.
        max_queue: bound on the tenant's submit queue; submissions past
            it are rejected with a retry-after hint (backpressure),
            never buffered without limit.
    """

    tenant_id: str
    quota_cores: int = 0
    weight: float = 1.0
    max_queue: int = 8

    def validate(self) -> None:
        if not self.tenant_id:
            raise ReproError("tenant id must be non-empty")
        if self.quota_cores < 0:
            raise ReproError(
                f"tenant {self.tenant_id!r} quota-cores must be >= 0, "
                f"got {self.quota_cores}"
            )
        if self.weight <= 0:
            raise ReproError(
                f"tenant {self.tenant_id!r} weight must be > 0, got {self.weight}"
            )
        if self.max_queue <= 0:
            raise ReproError(
                f"tenant {self.tenant_id!r} max-queue must be > 0, got {self.max_queue}"
            )


@dataclass(frozen=True)
class ExecutorSpec:
    """Crash-supervised parallel executor knobs (PaPaS-style).

    Args:
        workers: worker-process slots; 0 runs cells serially in-process
            (fully deterministic, no wall clock involved).
        cell_timeout: wall-clock seconds one attempt may run before the
            supervisor kills the worker (0 = no timeout).
        max_attempts: attempts before a cell is declared *poisoned* and
            quarantined; 1 means no retry budget.
        backoff_base / backoff_factor / backoff_max: exponential retry
            delay schedule, in seconds.
        jitter: +/- fraction of the delay drawn from the cell's named
            RNG stream (``campaign:retry:<cell>``) — deterministic.
        kill_prob: worker-kill fault injection — probability per attempt
            (drawn from ``campaign:chaos:<cell>``) that the worker is
            SIGKILLed mid-cell.  Test/bench chaos only.
    """

    workers: int = 0
    cell_timeout: float = 0.0
    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.25
    kill_prob: float = 0.0

    def validate(self) -> None:
        if self.workers < 0:
            raise ReproError(f"executor workers must be >= 0, got {self.workers}")
        if self.cell_timeout < 0:
            raise ReproError(
                f"executor cell-timeout must be >= 0, got {self.cell_timeout}"
            )
        if self.max_attempts < 1:
            raise ReproError(
                f"executor max-attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1.0 or self.backoff_max < 0:
            raise ReproError("executor backoff schedule out of range")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError(f"executor jitter must be in [0, 1], got {self.jitter}")
        if not 0.0 <= self.kill_prob < 1.0:
            raise ReproError(
                f"executor kill-prob must be in [0, 1), got {self.kill_prob}"
            )


@dataclass(frozen=True)
class TenantsSpec:
    """The whole ``<tenants>`` section: machine shape + tenant contracts.

    Args:
        nodes / cores_per_node: shape of the shared machine the tenants
            compete for (0 = unspecified; static checks that need the
            capacity are skipped).
        tenants: the tenant contracts, in declaration order.
        executor: optional :class:`ExecutorSpec` for the campaign grid.
        breaker: optional per-tenant circuit breaker (the node-
            quarantine parameters, applied to tenant ids).
    """

    nodes: int = 0
    cores_per_node: int = 0
    tenants: tuple[TenantSpec, ...] = field(default_factory=tuple)
    executor: ExecutorSpec | None = None
    breaker: QuarantineSpec | None = None

    def validate(self) -> None:
        if self.nodes < 0 or self.cores_per_node < 0:
            raise ReproError("tenants machine shape must be >= 0")
        seen: set[str] = set()
        for t in self.tenants:
            t.validate()
            if t.tenant_id in seen:
                raise ReproError(f"duplicate tenant id {t.tenant_id!r}")
            seen.add(t.tenant_id)
        if self.executor is not None:
            self.executor.validate()
        if self.breaker is not None:
            self.breaker.validate()

    @property
    def capacity_cores(self) -> int:
        """Total cores of the shared machine (0 when unspecified)."""
        return self.nodes * self.cores_per_node
