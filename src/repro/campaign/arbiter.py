"""Machine-wide arbitration: tenants lease shared capacity in node chunks.

The per-workflow :class:`~repro.core.arbitration.ArbitrationStage`
arbitrates *within* one tenant's allocation; this arbiter sits one level
up and decides how much of the shared machine each tenant may hold at
once.  Capacity is leased in whole nodes (a cell's bulkhead partition is
a fresh machine of exactly the leased nodes), and two policies gate
every lease:

* the **machine** — total nodes are finite; a lease that does not fit
  is denied with ``"capacity"`` and the cell waits its turn;
* the **tenant quota** — a tenant may not hold more than its
  ``quota_cores`` across concurrent leases; a request past the quota is
  denied with ``"quota"`` and does not victimize neighbors.

All bookkeeping is plain integers over deterministically-ordered dicts,
so grant order is a pure function of the request sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.campaign.spec import TenantSpec
from repro.errors import ReproError


@dataclass(frozen=True)
class Lease:
    """One tenant's hold on a slice of the shared machine."""

    lease_id: int
    tenant_id: str
    cell_id: str
    cores: int
    nodes: int
    cores_per_node: int


class MachineArbiter:
    """Node-granular capacity ledger for the shared campaign machine."""

    def __init__(self, nodes: int, cores_per_node: int) -> None:
        if nodes <= 0 or cores_per_node <= 0:
            raise ReproError(
                f"machine shape must be positive, got {nodes}x{cores_per_node}"
            )
        self.nodes = nodes
        self.cores_per_node = cores_per_node
        self.free_nodes = nodes
        self._leases: dict[int, Lease] = {}
        self._held_cores: dict[str, int] = {}
        self._next_id = 0
        self.grants = 0
        self.denials: dict[str, int] = {"capacity": 0, "quota": 0}

    def nodes_for(self, cores: int) -> int:
        return max(1, math.ceil(cores / self.cores_per_node))

    def held_cores(self, tenant_id: str) -> int:
        """Cores *tenant_id* currently holds across its leases."""
        return self._held_cores.get(tenant_id, 0)

    def try_lease(
        self, tenant: TenantSpec, cell_id: str, cores: int
    ) -> tuple[Lease | None, str]:
        """Lease *cores* (rounded up to nodes) or deny with a reason.

        Returns ``(lease, "")`` on success, ``(None, reason)`` with
        ``reason`` in ``{"quota", "capacity"}`` otherwise.
        """
        if cores <= 0:
            raise ReproError(f"lease request must be positive, got {cores}")
        quota = tenant.quota_cores
        if quota and self.held_cores(tenant.tenant_id) + cores > quota:
            self.denials["quota"] += 1
            return None, "quota"
        nodes = self.nodes_for(cores)
        if nodes > self.free_nodes:
            self.denials["capacity"] += 1
            return None, "capacity"
        self._next_id += 1
        lease = Lease(
            lease_id=self._next_id,
            tenant_id=tenant.tenant_id,
            cell_id=cell_id,
            cores=cores,
            nodes=nodes,
            cores_per_node=self.cores_per_node,
        )
        self.free_nodes -= nodes
        self._leases[lease.lease_id] = lease
        self._held_cores[tenant.tenant_id] = (
            self.held_cores(tenant.tenant_id) + cores
        )
        self.grants += 1
        return lease, ""

    def release(self, lease: Lease) -> None:
        if self._leases.pop(lease.lease_id, None) is None:
            raise ReproError(f"lease {lease.lease_id} is not active")
        self.free_nodes += lease.nodes
        held = self._held_cores[lease.tenant_id] - lease.cores
        if held:
            self._held_cores[lease.tenant_id] = held
        else:
            del self._held_cores[lease.tenant_id]

    def active(self) -> list[Lease]:
        return [self._leases[k] for k in sorted(self._leases)]
