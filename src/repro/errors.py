"""Exception hierarchy for the DYFLOW reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.  The
sub-hierarchy mirrors the subsystems: simulation kernel, cluster substrate,
staging layer, WMS, DYFLOW core stages, and the XML interface.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


# --------------------------------------------------------------------------- #
# simulation kernel
# --------------------------------------------------------------------------- #
class SimError(ReproError):
    """Base class for discrete-event simulation errors."""


class SimTimeError(SimError):
    """An event was scheduled in the past or the clock moved backwards."""


class ProcessError(SimError):
    """A simulated process misbehaved (e.g. yielded an unknown command)."""


# --------------------------------------------------------------------------- #
# cluster substrate
# --------------------------------------------------------------------------- #
class ClusterError(ReproError):
    """Base class for cluster-substrate errors."""


class AllocationError(ClusterError):
    """Resources could not be allocated (insufficient or invalid request)."""


class NodeStateError(ClusterError):
    """An operation was attempted on a node in an incompatible state."""


class SchedulerError(ClusterError):
    """Batch scheduler rejected or cannot satisfy a job request."""


# --------------------------------------------------------------------------- #
# staging / data plane
# --------------------------------------------------------------------------- #
class StagingError(ReproError):
    """Base class for data-staging errors."""


class ChannelClosedError(StagingError):
    """Read or write on a closed stream channel."""


class BufferOverflowError(StagingError):
    """A bounded stream buffer overflowed (paper §4.5: buffer overwrites)."""


class StoreError(StagingError):
    """File-store level failure (missing variable, bad step, ...)."""


# --------------------------------------------------------------------------- #
# workflow management substrate
# --------------------------------------------------------------------------- #
class WmsError(ReproError):
    """Base class for workflow-management errors."""


class WorkflowSpecError(WmsError):
    """Invalid workflow specification (unknown task, cyclic tight deps...)."""


class TaskStateError(WmsError):
    """Illegal task lifecycle transition."""


class LaunchError(WmsError):
    """The launcher could not start a task on the given resources."""


class CheckpointError(WmsError):
    """Checkpoint save/load failure."""


# --------------------------------------------------------------------------- #
# DYFLOW core stages
# --------------------------------------------------------------------------- #
class DyflowError(ReproError):
    """Base class for DYFLOW stage errors."""


class SensorError(DyflowError):
    """Sensor configuration or evaluation failure."""


class PolicyError(DyflowError):
    """Policy configuration or evaluation failure."""


class ArbitrationError(DyflowError):
    """The arbitration protocol could not construct a consistent plan."""


class ActuationError(DyflowError):
    """A low-level operation failed during plan execution."""


# --------------------------------------------------------------------------- #
# resilience subsystem
# --------------------------------------------------------------------------- #
class ResilienceError(ReproError):
    """Invalid resilience configuration or fault-injection failure."""


# --------------------------------------------------------------------------- #
# telemetry subsystem
# --------------------------------------------------------------------------- #
class TelemetryError(ReproError):
    """Invalid telemetry configuration or tracer misuse."""


# --------------------------------------------------------------------------- #
# observability / health analysis
# --------------------------------------------------------------------------- #
class ObservabilityError(ReproError):
    """Invalid observability configuration or analysis failure."""


# --------------------------------------------------------------------------- #
# journal / crash recovery
# --------------------------------------------------------------------------- #
class JournalError(ReproError):
    """Invalid journal configuration, corrupt records, or bad recovery state."""


class StaleWriterError(JournalError):
    """A fenced-out writer (superseded epoch) attempted to append."""


# --------------------------------------------------------------------------- #
# XML interface
# --------------------------------------------------------------------------- #
class XmlSpecError(ReproError):
    """Malformed or semantically invalid DYFLOW XML specification."""


# --------------------------------------------------------------------------- #
# static analysis / pre-flight verification
# --------------------------------------------------------------------------- #
class LintError(ReproError):
    """Static-analysis machinery misuse (unknown code, bad mode, ...)."""


class VerificationError(DyflowError):
    """Pre-flight verification rejected a spec before tick zero.

    ``diagnostics`` carries every :class:`repro.lint.Diagnostic` the
    verifier produced (not only the errors), in deterministic order.
    """

    def __init__(self, diagnostics=()):
        self.diagnostics = list(diagnostics)
        errors = [d for d in self.diagnostics if d.severity.value == "error"]
        lines = [f"pre-flight verification failed with {len(errors)} error(s):"]
        lines += [f"  {d.format()}" for d in self.diagnostics]
        super().__init__("\n".join(lines))
