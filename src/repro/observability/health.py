"""The health engine: self-observation feeding back into the Monitor stage.

The engine runs on the orchestrator's tick, at the spec's evaluation
cadence: it resolves every SLO/anomaly metric against the run's
:class:`~repro.telemetry.metrics.MetricsRegistry` and the runtime's
aggregate provider (utilization, quarantine count, ...), advances the
evaluators, records :class:`HealthAlert` transitions, and *publishes*
the whole picture — aggregates, objective values, and alert states — as
ordinary :class:`~repro.staging.serialization.Sample` streams that a
:class:`HealthSensorSource` delivers into the Monitor stage.  User
policies then react to orchestrator health exactly as they react to
application metrics (the paper's §2.1 sensor abstraction, pointed at the
framework itself).

Determinism: evaluation happens on the runtime clock at a fixed cadence
over sim-time metrics, and the engine's full state (evaluator streaks,
EWMA windows, feed cursor base, snapshot schedule, alert history) is
journaled at every barrier — a crash-resumed run emits exactly the
alerts the uninterrupted run would, with no double-firing on WAL replay.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.core.sensors.sources import DataSource
from repro.errors import ObservabilityError
from repro.observability.slo import EwmaDetector, HealthAlert, SloEvaluator
from repro.observability.snapshot import MetricsSnapshotter
from repro.observability.spec import ObservabilitySpec
from repro.staging.serialization import Sample
from repro.telemetry.metrics import Counter, Gauge, LatencyHistogram
from repro.telemetry.tracer import NULL_TRACER, Tracer

#: Pseudo-task identity health streams are published under.  It is not a
#: workflow task: the runtimes exempt it from task-existence checks and
#: policies assess it explicitly.
HEALTH_TASK = "__dyflow__"

_EPS = 1e-9


class HealthSensorSource(DataSource):
    """A Monitor data source fed by the health engine's sample feed.

    Each bound source keeps an absolute cursor into the engine's feed;
    the cursor is journaled with the owning Monitor client, so a resumed
    run re-reads exactly the unseen suffix.
    """

    def __init__(self, engine: "HealthEngine", var: str | None = None) -> None:
        self.engine = engine
        self.var = var
        self._cursor = 0

    def poll(self, now: float) -> list[Sample]:
        samples, self._cursor = self.engine.read_feed(self._cursor)
        if self.var is not None:
            samples = [s for s in samples if s.var == self.var]
        return samples

    def read_lag(self, perf) -> float:
        # Health samples are produced on the orchestrator's own node;
        # there is no stream or filesystem transport to wait for.
        return 0.0

    def cursor_state(self) -> dict:
        return {"cursor": self._cursor}

    def restore_cursor(self, state: dict) -> None:
        self._cursor = int(state.get("cursor", 0))


class HealthEngine:
    """Evaluates SLOs/anomalies and publishes health sensor streams."""

    def __init__(
        self,
        spec: ObservabilitySpec,
        tracer: Tracer | None = None,
        workflow_id: str = "",
        aggregates: Callable[[], Mapping[str, float]] | None = None,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = self.tracer.metrics
        self.workflow_id = workflow_id
        self.aggregates = aggregates
        self.slo_evaluators = [SloEvaluator(s) for s in spec.slos]
        self.anomaly_detectors = [EwmaDetector(a) for a in spec.anomalies]
        self.alerts: list[HealthAlert] = []
        self.snapshotter = MetricsSnapshotter(
            self.registry, self.tracer.log, spec.snapshot_every
        )
        self.evaluations = 0
        self._next_eval = 0.0
        self._sources: list[HealthSensorSource] = []
        self._feed: list[Sample] = []
        self._base = 0  # absolute index of _feed[0]

    # -- sensor plumbing ---------------------------------------------------------
    def bind_source(self, var: str | None = None) -> HealthSensorSource:
        """A new Monitor data source over this engine's feed."""
        source = HealthSensorSource(self, var=var)
        source._cursor = self._base + len(self._feed)
        self._sources.append(source)
        return source

    def read_feed(self, cursor: int) -> tuple[list[Sample], int]:
        """Feed entries at absolute index >= *cursor*, plus the new cursor."""
        lo = max(0, cursor - self._base)
        return list(self._feed[lo:]), self._base + len(self._feed)

    def _trim_feed(self) -> None:
        """Drop feed entries every bound source has consumed."""
        if not self._sources:
            return  # nothing is ever published without a bound source
        low = min(s._cursor for s in self._sources)
        drop = low - self._base
        if drop > 0:
            del self._feed[:drop]
            self._base = low

    def _publish(self, now: float, var: str, value: float) -> None:
        if not self._sources:
            return
        self._feed.append(
            Sample(
                time=now, workflow_id=self.workflow_id, task=HEALTH_TASK,
                rank=-1, node_id="", var=var, value=float(value),
                step=self.evaluations,
            )
        )

    # -- evaluation ----------------------------------------------------------------
    def tick(self, now: float) -> list[HealthAlert]:
        """Run due work for this orchestrator tick; returns new alerts."""
        if not self.spec.enabled:
            return []
        self._trim_feed()
        self.snapshotter.maybe_snapshot(now)
        if now + _EPS < self._next_eval:
            return []
        while self._next_eval <= now + _EPS:
            self._next_eval += self.spec.eval_every
        return self._evaluate(now)

    def _evaluate(self, now: float) -> list[HealthAlert]:
        aggregates = dict(self.aggregates()) if self.aggregates is not None else {}
        new_alerts: list[HealthAlert] = []
        for key in sorted(aggregates):
            self._publish(now, key, aggregates[key])
        for ev in self.slo_evaluators:
            value = self._resolve(ev.spec.metric, ev.spec.stat, aggregates)
            alert = ev.evaluate(now, value)
            if alert is not None:
                new_alerts.append(alert)
            if value is not None:
                self._publish(now, ev.spec.key, value)
            self._publish(now, f"alert.{ev.spec.key}", 1.0 if ev.firing else 0.0)
        for det in self.anomaly_detectors:
            value = self._resolve(det.spec.metric, det.spec.stat, aggregates)
            alert = det.evaluate(now, value)
            if alert is not None:
                new_alerts.append(alert)
            self._publish(now, f"alert.anomaly.{det.spec.key}", 1.0 if det.firing else 0.0)
        for alert in new_alerts:
            self.alerts.append(alert)
            self.tracer.point("health.alert", "health", **alert.to_dict())
        if self.tracer.enabled:
            self.registry.gauge("health.firing").set(float(self.firing_count()))
        self.evaluations += 1
        return new_alerts

    def _resolve(
        self, metric: str, stat: str, aggregates: Mapping[str, float]
    ) -> float | None:
        """Current value of ``metric.stat``, or None when unobservable."""
        if stat == "value" and metric in aggregates:
            return float(aggregates[metric])
        inst = self.registry.lookup(metric)
        if inst is None:
            return None
        if isinstance(inst, LatencyHistogram):
            if stat == "count":
                return float(inst.count)
            if inst.count == 0 or stat == "value":
                return None
            if stat == "min":
                return inst.min
            if stat == "max":
                return inst.max
            if stat == "mean":
                return inst.mean
            return inst.percentile(float(stat[1:]))
        if isinstance(inst, (Counter, Gauge)) and stat == "value":
            return float(inst.value)
        return None

    # -- queries -------------------------------------------------------------------
    def firing_count(self) -> int:
        return sum(ev.firing for ev in self.slo_evaluators) + sum(
            det.firing for det in self.anomaly_detectors
        )

    def firing_sources(self) -> list[str]:
        out = [ev.source for ev in self.slo_evaluators if ev.firing]
        out.extend(det.source for det in self.anomaly_detectors if det.firing)
        return sorted(out)

    # -- crash recovery --------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        return {
            "next_eval": self._next_eval,
            "evaluations": self.evaluations,
            "slos": [ev.state_dict() for ev in self.slo_evaluators],
            "anomalies": [det.state_dict() for det in self.anomaly_detectors],
            "alerts": [a.to_dict() for a in self.alerts],
            "snapshot": self.snapshotter.state_dict(),
            "feed_base": self._base,
            "feed": [
                {"time": s.time, "var": s.var, "value": s.value, "step": s.step}
                for s in self._feed
            ],
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        slos = state.get("slos", [])
        anomalies = state.get("anomalies", [])
        if len(slos) != len(self.slo_evaluators) or len(anomalies) != len(self.anomaly_detectors):
            raise ObservabilityError(
                "journaled health state does not match the configured spec "
                f"({len(slos)} slos for {len(self.slo_evaluators)}, "
                f"{len(anomalies)} anomaly detectors for {len(self.anomaly_detectors)})"
            )
        self._next_eval = float(state.get("next_eval", 0.0))
        self.evaluations = int(state.get("evaluations", 0))
        for ev, s in zip(self.slo_evaluators, slos):
            ev.load_state_dict(s)
        for det, s in zip(self.anomaly_detectors, anomalies):
            det.load_state_dict(s)
        self.alerts = [HealthAlert.from_dict(d) for d in state.get("alerts", [])]
        self.snapshotter.load_state_dict(state.get("snapshot", {}))
        self._base = int(state.get("feed_base", 0))
        self._feed = [
            Sample(
                time=float(d["time"]), workflow_id=self.workflow_id, task=HEALTH_TASK,
                rank=-1, node_id="", var=d["var"], value=float(d["value"]),
                step=int(d.get("step", -1)),
            )
            for d in state.get("feed", [])
        ]
