"""``top``-style console view over a campaign watch stream.

Reads the JSONL event stream a :class:`~repro.campaign.service.
CampaignService` emits (see :mod:`repro.observability.watch`) and
renders a per-tenant status table plus the most recent events::

    python -m repro.observability.top /path/to/watch.jsonl
    python -m repro.observability.top /path/to/watch.jsonl --follow

The default render is a pure function of the committed stream — same
file, same bytes out — so tests and CI can assert on it.  ``--follow``
re-reads the file on a polling interval for live campaigns.
"""

from __future__ import annotations

import argparse
import time
from typing import Any

from repro.observability.watch import read_watch_stream

#: Event kinds that advance the per-tenant counters, in display order.
_COUNTED = ("admit", "reject", "cell-start", "cell-retry",
            "cell-complete", "cell-poison", "breaker-trip", "alert")


def summarize(events: list[dict[str, Any]]) -> dict[str, dict[str, int]]:
    """Per-tenant event counts (sorted tenant ids, fixed column order)."""
    tenants: dict[str, dict[str, int]] = {}
    for event in events:
        tenant = event.get("tenant")
        if tenant is None or event["kind"] not in _COUNTED:
            continue
        row = tenants.setdefault(tenant, {kind: 0 for kind in _COUNTED})
        row[event["kind"]] += 1
    return {tid: tenants[tid] for tid in sorted(tenants)}


def render(events: list[dict[str, Any]], tail: int = 8) -> str:
    """The status table + event tail as one deterministic string."""
    lines: list[str] = []
    summary = summarize(events)
    header = ["tenant"] + [k.replace("cell-", "") for k in _COUNTED]
    widths = [max(10, len(h)) for h in header]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for tid, row in summary.items():
        cells = [tid] + [str(row[k]) for k in _COUNTED]
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    if not summary:
        lines.append("(no tenant events)")
    lines.append("")
    lines.append(f"events: {len(events)}   recent:")
    for event in events[-tail:]:
        extra = {k: v for k, v in event.items()
                 if k not in ("seq", "kind", "key", "time")}
        detail = " ".join(f"{k}={extra[k]}" for k in sorted(extra))
        lines.append(f"  [{event['seq']:>5}] t={event['time']:<10g} "
                     f"{event['kind']:<14} {detail}")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.top",
        description="Console status view over a campaign watch stream.",
    )
    parser.add_argument("stream", help="watch-stream JSONL file")
    parser.add_argument("--tail", type=int, default=8,
                        help="how many recent events to show")
    parser.add_argument("--follow", action="store_true",
                        help="re-render on an interval until interrupted")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="--follow polling interval in seconds")
    args = parser.parse_args(argv)

    while True:
        print(render(read_watch_stream(args.stream), tail=args.tail), end="")
        if not args.follow:
            return 0
        time.sleep(args.interval)


if __name__ == "__main__":
    raise SystemExit(main())
