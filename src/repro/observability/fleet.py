"""Fleet-wide observability: cross-tenant rollups over a campaign.

The :class:`FleetHealthEngine` is the campaign-scale sibling of the
per-run :class:`~repro.observability.health.HealthEngine`.  Where the
health engine watches one orchestrator's registry, the fleet engine
merges *per-tenant* metric streams and :class:`HealthAlert` records into
one deterministic rollup: per-tenant p50/p95 cell latency, completion /
failure / poison counts, breaker trips, and a top-k "noisy tenant"
ranking.  The rollup exports as tenant-labeled OpenMetrics families via
:func:`~repro.observability.openmetrics.render_labeled_openmetrics`.

All state is a pure function of the recorded event sequence and
round-trips :meth:`state_dict` / :meth:`load_state_dict` losslessly, so
the campaign WAL barrier can persist it and a crash/resume produces
bit-identical rollups.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ObservabilityError
from repro.observability.openmetrics import render_labeled_openmetrics
from repro.observability.slo import HealthAlert
from repro.observability.spec import FleetSpec
from repro.telemetry.metrics import MetricsRegistry

# Cell latencies are simulated makespans (seconds to thousands of
# seconds); the default 1ms..2000s buckets cover them.


class FleetHealthEngine:
    """Deterministic cross-tenant aggregation of campaign telemetry."""

    def __init__(self, spec: FleetSpec | None = None) -> None:
        self.spec = spec or FleetSpec()
        self.spec.validate()
        self._registries: dict[str, MetricsRegistry] = {}
        self._alerts: dict[str, list[HealthAlert]] = {}

    # -- ingestion -----------------------------------------------------

    def registry(self, tenant_id: str) -> MetricsRegistry:
        """The tenant's rollup registry, created on first use."""
        reg = self._registries.get(tenant_id)
        if reg is None:
            reg = self._registries[tenant_id] = MetricsRegistry()
            self._alerts.setdefault(tenant_id, [])
        return reg

    def record_cell(
        self,
        tenant_id: str,
        latency: float,
        *,
        status: str = "completed",
        failures: int = 0,
    ) -> None:
        """Fold one finished cell into the tenant's rollup.

        *latency* is the cell's simulated makespan; *status* is the
        executor outcome (``completed`` / ``poisoned``); *failures* is
        the number of failed attempts the supervisor absorbed.
        """
        if status not in ("completed", "poisoned"):
            raise ObservabilityError(f"unknown cell status {status!r}")
        reg = self.registry(tenant_id)
        reg.histogram("fleet.cell.latency").observe(latency)
        reg.counter(f"fleet.cell.{status}").inc()
        if failures:
            reg.counter("fleet.cell.failures").inc(failures)

    def record_rejection(self, tenant_id: str) -> None:
        """One admission/lease rejection for the tenant."""
        self.registry(tenant_id).counter("fleet.cell.rejected").inc()

    def record_trip(self, tenant_id: str) -> None:
        """One breaker/quarantine trip for the tenant."""
        self.registry(tenant_id).counter("fleet.breaker.trips").inc()

    def ingest_alert(self, tenant_id: str, alert: HealthAlert) -> None:
        """Append one per-tenant SLO/anomaly transition to the stream."""
        self.registry(tenant_id)
        self._alerts[tenant_id].append(alert)
        self._registries[tenant_id].counter(f"fleet.alerts.{alert.kind}").inc()

    # -- queries -------------------------------------------------------

    def tenants(self) -> list[str]:
        return sorted(self._registries)

    def alerts(self, tenant_id: str) -> list[HealthAlert]:
        return list(self._alerts.get(tenant_id, []))

    def _noise_score(self, tenant_id: str) -> float:
        """How noisy a tenant is: failures weigh most, then trips/alerts.

        The weights are deliberately coarse — the ranking exists to point
        an operator at the right tenant, not to be a calibrated metric.
        """
        reg = self._registries[tenant_id]

        def val(name: str) -> float:
            inst = reg.lookup(name)
            return inst.value if inst is not None else 0.0

        return (
            3.0 * val("fleet.cell.poisoned")
            + 2.0 * val("fleet.breaker.trips")
            + 1.0 * val("fleet.cell.failures")
            + 1.0 * val("fleet.alerts.firing")
            + 0.5 * val("fleet.cell.rejected")
        )

    def noisy_tenants(self, k: int | None = None) -> list[tuple[str, float]]:
        """Top-*k* tenants by noise score (score desc, id asc tiebreak)."""
        k = self.spec.top_k if k is None else k
        scored = [(tid, self._noise_score(tid)) for tid in self.tenants()]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:k]

    def rollup(self) -> dict[str, Any]:
        """The fleet state as one deterministic JSON-friendly dict."""
        tenants: dict[str, Any] = {}
        for tid in self.tenants():
            reg = self._registries[tid]
            hist = reg.lookup("fleet.cell.latency")
            entry: dict[str, Any] = {}
            for key, name in (
                ("completed", "fleet.cell.completed"),
                ("poisoned", "fleet.cell.poisoned"),
                ("failures", "fleet.cell.failures"),
                ("rejected", "fleet.cell.rejected"),
                ("trips", "fleet.breaker.trips"),
                ("alerts_firing", "fleet.alerts.firing"),
                ("alerts_clearing", "fleet.alerts.clearing"),
            ):
                inst = reg.lookup(name)
                entry[key] = inst.value if inst is not None else 0.0
            if hist is not None and hist.count:
                entry["latency"] = {
                    "count": hist.count,
                    "p50": hist.p50,
                    "p95": hist.p95,
                    "mean": hist.mean,
                }
            entry["alerts"] = [a.to_dict() for a in self._alerts.get(tid, [])]
            tenants[tid] = entry
        return {
            "tenants": tenants,
            "noisy": [{"tenant": t, "score": s} for t, s in self.noisy_tenants()],
        }

    def render_openmetrics(self, prefix: str = "dyflow_") -> str:
        """Tenant-labeled OpenMetrics text for the whole fleet."""
        return render_labeled_openmetrics(self._registries, label="tenant", prefix=prefix)

    # -- persistence ---------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        return {
            "registries": {
                tid: self._registries[tid].state_dict() for tid in self.tenants()
            },
            "alerts": {
                tid: [a.to_dict() for a in self._alerts.get(tid, [])]
                for tid in self.tenants()
            },
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self._registries.clear()
        self._alerts.clear()
        for tid, reg_state in state.get("registries", {}).items():
            self.registry(tid).load_state_dict(reg_state)
        for tid, alerts in state.get("alerts", {}).items():
            self.registry(tid)
            self._alerts[tid] = [HealthAlert.from_dict(a) for a in alerts]
