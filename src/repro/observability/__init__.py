"""Observability: analysis, exporters, and health feedback over telemetry.

PR 2 made the control loop *recorded* (spans, metrics, JSONL); this
package makes it *observed*: critical-path and utilization analytics
over those records, OpenMetrics export for standard scrapers, a run
report CLI, and SLO/anomaly detection whose alerts feed back into the
Monitor stage as ordinary sensor streams — the framework watching itself
with its own abstractions (see docs/observability.md).
"""

from repro.observability.analysis import (
    CriticalPath,
    PathEntry,
    SpanView,
    bottlenecks,
    critical_path,
    exclusive_times,
    slowest_spans,
)
from repro.observability.fleet import FleetHealthEngine
from repro.observability.health import HEALTH_TASK, HealthEngine, HealthSensorSource
from repro.observability.openmetrics import (
    escape_label_value,
    parse_openmetrics,
    render_labeled_openmetrics,
    render_openmetrics,
    sanitize_metric_name,
    write_openmetrics,
)
from repro.observability.report import (
    build_report,
    render_json,
    render_markdown,
    report_from_jsonl,
    report_from_run,
    write_report,
)
from repro.observability.slo import EwmaDetector, HealthAlert, SloEvaluator
from repro.observability.snapshot import MetricsSnapshotter
from repro.observability.spec import AnomalySpec, FleetSpec, ObservabilitySpec, SloSpec
from repro.observability.store import RunRecord, RunStore, flatten_metrics, load_record
from repro.observability.watch import EVENT_KINDS, WatchStream, read_watch_stream
from repro.observability.utilization import (
    BusySegment,
    NodeUtilization,
    UtilizationReport,
    build_utilization,
    utilization_from_events,
    utilization_from_launcher,
)

__all__ = [
    # spec
    "ObservabilitySpec",
    "SloSpec",
    "AnomalySpec",
    "FleetSpec",
    # analysis
    "SpanView",
    "CriticalPath",
    "PathEntry",
    "critical_path",
    "exclusive_times",
    "bottlenecks",
    "slowest_spans",
    # utilization
    "BusySegment",
    "NodeUtilization",
    "UtilizationReport",
    "build_utilization",
    "utilization_from_launcher",
    "utilization_from_events",
    # openmetrics
    "render_openmetrics",
    "render_labeled_openmetrics",
    "write_openmetrics",
    "parse_openmetrics",
    "sanitize_metric_name",
    "escape_label_value",
    # fleet plane
    "FleetHealthEngine",
    "WatchStream",
    "read_watch_stream",
    "EVENT_KINDS",
    # run store
    "RunStore",
    "RunRecord",
    "load_record",
    "flatten_metrics",
    # slo / health
    "HealthAlert",
    "SloEvaluator",
    "EwmaDetector",
    "HealthEngine",
    "HealthSensorSource",
    "HEALTH_TASK",
    # snapshots & reports
    "MetricsSnapshotter",
    "build_report",
    "report_from_run",
    "report_from_jsonl",
    "render_markdown",
    "render_json",
    "write_report",
]
