"""Run reports: one document summarizing what a run did and why.

:func:`report_from_run` builds the report from live objects (tracer,
launcher, health engine); :func:`report_from_jsonl` rebuilds the same
shape from a run's JSONL event log, which is what the CLI does::

    python -m repro.observability.report run.jsonl -o report.md --json report.json

The report carries the critical path, the bottleneck attribution, the
per-node utilization table, the alert timeline, the top slow spans, and
a curated metrics summary.  Every section is a pure function of
sim-clock data with deterministic ordering and formatting — two
same-seed runs produce **byte-identical** reports (wall-clock metrics
like ``journal.append.latency`` are deliberately excluded).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Iterable, Mapping

from repro.observability.analysis import (
    SpanView,
    bottlenecks,
    critical_path,
    slowest_spans,
)
from repro.observability.slo import HealthAlert
from repro.observability.utilization import (
    UtilizationReport,
    utilization_from_events,
    utilization_from_launcher,
)

REPORT_SCHEMA = "dyflow-run-report/1"

#: Metric families whose values depend on the wall clock; reports must
#: stay byte-identical across same-seed runs, so these never appear.
_NONDETERMINISTIC_PREFIXES = ("journal.",)


def _deterministic_metrics(snapshot: Mapping[str, Mapping[str, Any]]) -> dict[str, Any]:
    """Filter a registry snapshot down to sim-deterministic families."""
    out: dict[str, Any] = {}
    for name in sorted(snapshot):
        if any(name.startswith(p) for p in _NONDETERMINISTIC_PREFIXES):
            continue
        out[name] = dict(snapshot[name])
    return out


def _utilization_section(util: UtilizationReport | None) -> dict[str, Any] | None:
    if util is None:
        return None
    return {
        "start": util.start,
        "end": util.end,
        "total_cores": util.total_cores,
        "busy_core_seconds": util.busy_core_seconds,
        "aggregate": util.utilization,
        "nodes": [
            {
                "node": n.node_id,
                "cores": n.cores,
                "busy_core_seconds": n.busy_core_seconds,
                "quarantined_seconds": n.quarantined_seconds,
                "utilization": n.utilization,
            }
            for n in util.nodes
        ],
    }


def build_report(
    spans: Iterable[SpanView],
    utilization: UtilizationReport | None = None,
    alerts: Iterable[HealthAlert] = (),
    metrics: Mapping[str, Mapping[str, Any]] | None = None,
    top_n: int = 5,
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the report document from analysis inputs."""
    views = list(spans)
    path = critical_path(views)
    report: dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "meta": dict(meta or {}),
        "critical_path": {
            "total": path.total,
            "entries": [
                {
                    "name": e.name, "category": e.category, "depth": e.depth,
                    "start": e.start, "end": e.end,
                    "duration": e.duration, "slack": e.slack,
                }
                for e in path.entries
            ],
        },
        "bottlenecks": bottlenecks(views, top_n=top_n),
        "slow_spans": [
            {
                "name": v.name, "category": v.category,
                "start": v.start, "end": v.end, "duration": v.duration,
            }
            for v in slowest_spans(views, top_n=top_n)
        ],
        "utilization": _utilization_section(utilization),
        "alerts": [a.to_dict() for a in alerts],
        "metrics": _deterministic_metrics(metrics) if metrics is not None else {},
    }
    return report


def report_from_run(
    tracer,
    launcher=None,
    alerts: Iterable[HealthAlert] = (),
    top_n: int = 5,
    end: float | None = None,
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Build the report from live run objects."""
    views = [SpanView.from_span(s) for s in tracer.spans if s.end is not None]
    util = None
    if launcher is not None:
        util = utilization_from_launcher(launcher, end=end)
    return build_report(
        views,
        utilization=util,
        alerts=alerts,
        metrics=tracer.metrics.snapshot() if tracer.enabled else {},
        top_n=top_n,
        meta=meta,
    )


def report_from_jsonl(
    records: Iterable[Mapping[str, Any]],
    top_n: int = 5,
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Rebuild the report from a run's JSONL records."""
    records = list(records)
    views = [SpanView.from_record(r) for r in records
             if r.get("kind") == "span" and r.get("end") is not None]
    alerts = [
        HealthAlert.from_dict(r["attrs"])
        for r in records
        if r.get("kind") == "point" and r.get("name") == "health.alert"
    ]
    has_wms = any(
        r.get("kind") == "point" and r.get("name") == "run.allocation" for r in records
    )
    util = utilization_from_events(records) if has_wms else None
    snapshots = [r for r in records if r.get("kind") == "metrics"]
    metrics = snapshots[-1]["metrics"] if snapshots else {}
    return build_report(
        views, utilization=util, alerts=alerts, metrics=metrics,
        top_n=top_n, meta=meta,
    )


def read_jsonl(path: str) -> list[dict[str, Any]]:
    out: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# -- rendering --------------------------------------------------------------------
def _f(x: float) -> str:
    return f"{x:.3f}"


def _pct(x: float) -> str:
    return f"{100.0 * x:.1f}%"


def render_markdown(report: Mapping[str, Any]) -> str:
    """The report as deterministic markdown."""
    lines: list[str] = ["# DYFLOW run report", ""]
    meta = report.get("meta") or {}
    if meta:
        for key in sorted(meta):
            lines.append(f"- **{key}**: {meta[key]}")
        lines.append("")

    cp = report["critical_path"]
    lines.append("## Critical path")
    lines.append("")
    if cp["entries"]:
        lines.append(f"Total: {_f(cp['total'])} s over {len(cp['entries'])} span(s).")
        lines.append("")
        lines.append("| depth | span | category | start | duration (s) | slack (s) |")
        lines.append("|---|---|---|---|---|---|")
        for e in cp["entries"]:
            lines.append(
                f"| {e['depth']} | {e['name']} | {e['category']} | "
                f"{_f(e['start'])} | {_f(e['duration'])} | {_f(e['slack'])} |"
            )
    else:
        lines.append("No closed spans recorded.")
    lines.append("")

    lines.append("## Bottlenecks (exclusive time)")
    lines.append("")
    if report["bottlenecks"]:
        lines.append("| span | stage | count | exclusive (s) | total (s) | max excl (s) |")
        lines.append("|---|---|---|---|---|---|")
        for b in report["bottlenecks"]:
            lines.append(
                f"| {b['name']} | {b['category']} | {b['count']} | "
                f"{_f(b['exclusive'])} | {_f(b['total'])} | {_f(b['max_exclusive'])} |"
            )
    else:
        lines.append("No spans to attribute.")
    lines.append("")

    util = report.get("utilization")
    lines.append("## Utilization")
    lines.append("")
    if util is not None:
        lines.append(
            f"Aggregate: {_pct(util['aggregate'])} of {util['total_cores']} cores over "
            f"[{_f(util['start'])}, {_f(util['end'])}] s "
            f"({_f(util['busy_core_seconds'])} busy core-seconds)."
        )
        lines.append("")
        lines.append("| node | cores | busy core-s | quarantined (s) | utilization |")
        lines.append("|---|---|---|---|---|")
        for n in util["nodes"]:
            lines.append(
                f"| {n['node']} | {n['cores']} | {_f(n['busy_core_seconds'])} | "
                f"{_f(n['quarantined_seconds'])} | {_pct(n['utilization'])} |"
            )
    else:
        lines.append("No allocation events recorded.")
    lines.append("")

    lines.append("## Alert timeline")
    lines.append("")
    if report["alerts"]:
        lines.append("| time (s) | alert | kind | severity | value | threshold |")
        lines.append("|---|---|---|---|---|---|")
        for a in report["alerts"]:
            lines.append(
                f"| {_f(a['time'])} | {a['source']} | {a['kind']} | {a['severity']} | "
                f"{_f(a['value'])} | {_f(a['threshold'])} |"
            )
    else:
        lines.append("No health alerts.")
    lines.append("")

    lines.append("## Slowest spans")
    lines.append("")
    if report["slow_spans"]:
        lines.append("| span | category | start | end | duration (s) |")
        lines.append("|---|---|---|---|---|")
        for s in report["slow_spans"]:
            lines.append(
                f"| {s['name']} | {s['category']} | {_f(s['start'])} | "
                f"{_f(s['end'])} | {_f(s['duration'])} |"
            )
    else:
        lines.append("No spans recorded.")
    lines.append("")

    metrics = report.get("metrics") or {}
    hists = {
        name: m for name, m in metrics.items()
        if m.get("type") == "histogram" and m.get("count")
    }
    if hists:
        lines.append("## Stage latency summary")
        lines.append("")
        lines.append("| metric | count | p50 (s) | p95 (s) | p99 (s) |")
        lines.append("|---|---|---|---|---|")
        for name in sorted(hists):
            m = hists[name]
            lines.append(
                f"| {name} | {m['count']} | {_f(m['p50'])} | "
                f"{_f(m['p95'])} | {_f(m['p99'])} |"
            )
        lines.append("")
    return "\n".join(lines)


def render_json(report: Mapping[str, Any]) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def write_report(
    report: Mapping[str, Any],
    path: str | None = None,
    json_path: str | None = None,
) -> None:
    """Write the markdown and/or JSON renderings."""
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(render_markdown(report))
    if json_path is not None:
        with open(json_path, "w", encoding="utf-8") as fh:
            fh.write(render_json(report))


# -- CLI --------------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.report",
        description="Turn a run's JSONL telemetry log into a run report.",
    )
    parser.add_argument("jsonl", help="path to the run's JSONL event log")
    parser.add_argument("-o", "--output", help="write markdown report here")
    parser.add_argument("--json", dest="json_output", help="write JSON report here")
    parser.add_argument("--top", type=int, default=5, help="rows in top-N tables")
    parser.add_argument(
        "--format", choices=("md", "json"), default="md",
        help="stdout format when no output file is given",
    )
    parser.add_argument(
        "--require-critical-path", action="store_true",
        help="exit 1 unless the critical path is non-empty (CI smoke)",
    )
    args = parser.parse_args(argv)
    report = report_from_jsonl(
        read_jsonl(args.jsonl), top_n=args.top, meta={"source": args.jsonl}
    )
    write_report(report, path=args.output, json_path=args.json_output)
    if args.output is None and args.json_output is None:
        text = render_markdown(report) if args.format == "md" else render_json(report)
        sys.stdout.write(text)
    if args.require_critical_path and not report["critical_path"]["entries"]:
        sys.stderr.write("run report has an empty critical path\n")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
