"""Periodic metrics snapshots into the JSONL event log.

The :class:`MetricsSnapshotter` emits the full
:class:`~repro.telemetry.metrics.MetricsRegistry` snapshot as a
``kind="metrics"`` JSONL record on a fixed runtime-clock cadence — sim
seconds under the simulated driver, wall seconds under the threaded one.
The next-due time is part of the crash-recovery state so a resumed run
snapshots at exactly the instants the uninterrupted run would have.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.events import JsonlEventLog
from repro.telemetry.metrics import MetricsRegistry

_EPS = 1e-9


class MetricsSnapshotter:
    """Emit registry snapshots every ``every`` runtime seconds."""

    def __init__(
        self,
        registry: MetricsRegistry,
        log: JsonlEventLog | None,
        every: float,
    ) -> None:
        self.registry = registry
        self.log = log
        self.every = float(every)
        self._next = 0.0
        self.emitted = 0

    @property
    def enabled(self) -> bool:
        return self.every > 0.0 and self.log is not None

    def maybe_snapshot(self, now: float) -> bool:
        """Emit a snapshot if one is due; returns whether one was emitted."""
        if not self.enabled or now + _EPS < self._next:
            return False
        assert self.log is not None
        self.log.emit("metrics", now, seq=self.emitted, metrics=self.registry.snapshot())
        self.emitted += 1
        while self._next <= now + _EPS:
            self._next += self.every
        return True

    def state_dict(self) -> dict[str, Any]:
        return {"next": self._next, "emitted": self.emitted}

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self._next = float(state.get("next", 0.0))
        self.emitted = int(state.get("emitted", 0))
