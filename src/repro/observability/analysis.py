"""Critical-path and bottleneck analysis over closed span trees.

Spans nest through parent ids (a ``loop.tick`` contains its stage spans,
a plan execution contains its per-op spans).  The *critical path* of a
tree is the root-to-leaf chain found by always descending into the
longest child; each entry carries its **slack** — how much longer that
span could have run without lengthening its parent.  **Exclusive time**
(duration minus the children's durations) attributes cost to the span
that actually did the work, which is what the bottleneck tables rank.

Everything here is a pure function of the span list, uses only the
runtime clock (simulated seconds under the sim driver), and breaks every
tie deterministically — the run report built on top must be
byte-identical across same-seed runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.telemetry.tracer import TraceSpan


@dataclass(frozen=True)
class SpanView:
    """The analysis-relevant slice of a span (tracer- or JSONL-sourced)."""

    name: str
    category: str
    span_id: int
    parent_id: int | None
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @classmethod
    def from_span(cls, span: TraceSpan) -> "SpanView":
        return cls(
            name=span.name, category=span.category, span_id=span.span_id,
            parent_id=span.parent_id, start=span.start, end=float(span.end),  # type: ignore[arg-type]
        )

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "SpanView":
        """Build from one ``kind == "span"`` JSONL record."""
        return cls(
            name=record["name"], category=record["category"],
            span_id=int(record["span_id"]),
            parent_id=None if record.get("parent_id") is None else int(record["parent_id"]),
            start=float(record["start"]), end=float(record["end"]),
        )


@dataclass(frozen=True)
class PathEntry:
    """One critical-path hop: a span plus its slack inside its parent."""

    name: str
    category: str
    span_id: int
    start: float
    end: float
    duration: float
    slack: float
    depth: int


@dataclass(frozen=True)
class CriticalPath:
    """Root-to-leaf longest chain; ``total`` is the root's duration."""

    entries: tuple[PathEntry, ...]
    total: float

    def __bool__(self) -> bool:
        return bool(self.entries)


def as_views(spans: Iterable[TraceSpan | SpanView]) -> list[SpanView]:
    """Closed spans only, as :class:`SpanView`, in deterministic order."""
    views = [
        s if isinstance(s, SpanView) else SpanView.from_span(s)
        for s in spans
        if isinstance(s, SpanView) or s.end is not None
    ]
    views.sort(key=lambda v: (v.start, v.span_id))
    return views


def _forest(views: Sequence[SpanView]) -> tuple[list[SpanView], dict[int, list[SpanView]]]:
    """Roots + children map.  A span whose parent is absent is a root."""
    by_id = {v.span_id: v for v in views}
    children: dict[int, list[SpanView]] = {}
    roots: list[SpanView] = []
    for v in views:
        if v.parent_id is not None and v.parent_id in by_id:
            children.setdefault(v.parent_id, []).append(v)
        else:
            roots.append(v)
    order = lambda v: (-v.duration, v.start, v.span_id)  # noqa: E731
    roots.sort(key=order)
    for kids in children.values():
        kids.sort(key=order)
    return roots, children


def critical_path(spans: Iterable[TraceSpan | SpanView]) -> CriticalPath:
    """Longest-duration chain from the longest root down to a leaf.

    At each level the longest child is taken (ties: earliest start, then
    lowest span id).  Slack of a chain entry is ``parent.duration -
    entry.duration`` (the root's slack is 0 by definition).
    """
    roots, children = _forest(as_views(spans))
    if not roots:
        return CriticalPath(entries=(), total=0.0)
    entries: list[PathEntry] = []
    node, parent, depth = roots[0], None, 0
    while node is not None:
        slack = 0.0 if parent is None else max(0.0, parent.duration - node.duration)
        entries.append(
            PathEntry(
                name=node.name, category=node.category, span_id=node.span_id,
                start=node.start, end=node.end, duration=node.duration,
                slack=slack, depth=depth,
            )
        )
        kids = children.get(node.span_id, [])
        parent, node, depth = node, (kids[0] if kids else None), depth + 1
    return CriticalPath(entries=tuple(entries), total=roots[0].duration)


def exclusive_times(spans: Iterable[TraceSpan | SpanView]) -> dict[int, float]:
    """span_id → duration not covered by that span's direct children."""
    views = as_views(spans)
    _roots, children = _forest(views)
    out: dict[int, float] = {}
    for v in views:
        covered = sum(c.duration for c in children.get(v.span_id, []))
        out[v.span_id] = max(0.0, v.duration - covered)
    return out


def bottlenecks(
    spans: Iterable[TraceSpan | SpanView], top_n: int = 5
) -> list[dict[str, Any]]:
    """Top-N (category, name) groups by total exclusive time.

    The category is the stage that owns the span (``monitor``,
    ``decision``, ``arbitration``, ``actuation``, ``wms``, ``loop``), so
    the table reads as per-stage cost attribution.
    """
    views = as_views(spans)
    excl = exclusive_times(views)
    groups: dict[tuple[str, str], dict[str, Any]] = {}
    for v in views:
        g = groups.setdefault(
            (v.category, v.name),
            {"category": v.category, "name": v.name, "count": 0,
             "exclusive": 0.0, "total": 0.0, "max_exclusive": 0.0},
        )
        g["count"] += 1
        g["exclusive"] += excl[v.span_id]
        g["total"] += v.duration
        g["max_exclusive"] = max(g["max_exclusive"], excl[v.span_id])
    ranked = sorted(
        groups.values(), key=lambda g: (-g["exclusive"], g["category"], g["name"])
    )
    return ranked[:top_n]


def slowest_spans(
    spans: Iterable[TraceSpan | SpanView], top_n: int = 5
) -> list[SpanView]:
    """Top-N individual spans by duration (ties: earliest, lowest id)."""
    views = as_views(spans)
    views.sort(key=lambda v: (-v.duration, v.start, v.span_id))
    return views[:top_n]
