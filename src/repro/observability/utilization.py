"""Per-node / per-allocation utilization timelines.

Reconstructs what every allocated node was doing over the run —
busy (cores assigned to running task instances), idle, or quarantined —
from either the live :class:`~repro.wms.launcher.Savanna` object or from
the JSONL point events the launcher emits (``wms.task-running`` /
``wms.task-end`` / ``run.allocation`` / ``run.quarantine-history``), so
the report CLI can rebuild the exact same timelines from a log file
alone (the SIM-SITU premise: evaluation needs reconstructable
per-resource timelines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping


@dataclass(frozen=True)
class BusySegment:
    """One task instance holding cores on one node for an interval."""

    node_id: str
    cores: int
    start: float
    end: float
    task: str


@dataclass(frozen=True)
class NodeUtilization:
    """One node's aggregate view over the analysis horizon."""

    node_id: str
    cores: int
    busy_core_seconds: float
    quarantined_seconds: float
    utilization: float  # busy core-seconds / (cores * horizon)
    timeline: tuple[tuple[float, float, int], ...]  # (start, end, busy cores)


@dataclass(frozen=True)
class UtilizationReport:
    """Busy/idle/quarantined accounting for one allocation."""

    start: float
    end: float
    nodes: tuple[NodeUtilization, ...]
    total_cores: int
    busy_core_seconds: float
    utilization: float

    @property
    def horizon(self) -> float:
        return self.end - self.start


def _clip(seg_start: float, seg_end: float, start: float, end: float) -> tuple[float, float]:
    return max(seg_start, start), min(seg_end, end)


def _node_timeline(
    segments: list[BusySegment], start: float, end: float
) -> tuple[tuple[float, float, int], ...]:
    """Merge per-task segments into (interval, busy-core-count) steps."""
    deltas: dict[float, int] = {}
    for seg in segments:
        s, e = _clip(seg.start, seg.end, start, end)
        if e <= s:
            continue
        deltas[s] = deltas.get(s, 0) + seg.cores
        deltas[e] = deltas.get(e, 0) - seg.cores
    points = sorted(set(deltas) | {start, end})
    timeline: list[tuple[float, float, int]] = []
    level = 0
    for t0, t1 in zip(points, points[1:]):
        level += deltas.get(t0, 0)
        if t1 > t0:
            if timeline and timeline[-1][2] == level and timeline[-1][1] == t0:
                prev = timeline.pop()
                timeline.append((prev[0], t1, level))
            else:
                timeline.append((t0, t1, level))
    return tuple(timeline)


def quarantine_intervals(
    history: Iterable[Any], end: float
) -> dict[str, list[tuple[float, float]]]:
    """Pair quarantined/released events into per-node exclusion intervals.

    *history* holds :class:`~repro.resilience.quarantine.QuarantineEvent`
    objects or ``(time, node_id, kind)``-shaped mappings/sequences.
    A node still quarantined when the run ends is clamped to *end*.
    """
    opened: dict[str, float] = {}
    out: dict[str, list[tuple[float, float]]] = {}
    for ev in history:
        if isinstance(ev, Mapping):
            t, node, kind = float(ev["time"]), ev["node_id"], ev["kind"]
        elif isinstance(ev, (list, tuple)):
            t, node, kind = float(ev[0]), ev[1], ev[2]
        else:
            t, node, kind = ev.time, ev.node_id, ev.kind
        if kind == "quarantined":
            opened.setdefault(node, t)
        elif kind == "released" and node in opened:
            out.setdefault(node, []).append((opened.pop(node), t))
    for node, t in sorted(opened.items()):
        if end > t:
            out.setdefault(node, []).append((t, end))
    return out


def build_utilization(
    node_cores: Mapping[str, int],
    segments: Iterable[BusySegment],
    start: float = 0.0,
    end: float | None = None,
    quarantine_history: Iterable[Any] = (),
) -> UtilizationReport:
    """Assemble the report from explicit inputs (both front-ends call this)."""
    segments = list(segments)
    if end is None:
        end = max((s.end for s in segments), default=start)
    end = max(end, start)
    horizon = end - start
    q_intervals = quarantine_intervals(quarantine_history, end)
    by_node: dict[str, list[BusySegment]] = {}
    for seg in segments:
        by_node.setdefault(seg.node_id, []).append(seg)
    nodes: list[NodeUtilization] = []
    total_busy = 0.0
    total_cores = 0
    for node_id in sorted(node_cores):
        cores = int(node_cores[node_id])
        total_cores += cores
        segs = sorted(
            by_node.get(node_id, []), key=lambda s: (s.start, s.end, s.task)
        )
        busy = 0.0
        for seg in segs:
            s, e = _clip(seg.start, seg.end, start, end)
            if e > s:
                busy += seg.cores * (e - s)
        quarantined = sum(
            max(0.0, min(e, end) - max(s, start))
            for s, e in q_intervals.get(node_id, [])
        )
        capacity = cores * horizon
        nodes.append(
            NodeUtilization(
                node_id=node_id,
                cores=cores,
                busy_core_seconds=busy,
                quarantined_seconds=quarantined,
                utilization=busy / capacity if capacity > 0 else 0.0,
                timeline=_node_timeline(segs, start, end),
            )
        )
        total_busy += busy
    total_capacity = total_cores * horizon
    return UtilizationReport(
        start=start,
        end=end,
        nodes=tuple(nodes),
        total_cores=total_cores,
        busy_core_seconds=total_busy,
        utilization=total_busy / total_capacity if total_capacity > 0 else 0.0,
    )


def utilization_from_launcher(launcher, start: float = 0.0, end: float | None = None) -> UtilizationReport:
    """Live path: read instances, allocation, and quarantine off Savanna."""
    if end is None:
        end = launcher.engine.now
    node_cores = {n.node_id: n.cores for n in launcher.allocation.nodes}
    segments: list[BusySegment] = []
    for name, rec in sorted(launcher.records.items()):
        for inst in rec.history:
            if inst.start_time is None:
                continue  # never reached RUNNING
            seg_end = inst.end_time if inst.end_time is not None else end
            for node_id, cores in inst.resources.items():
                segments.append(
                    BusySegment(node_id=node_id, cores=cores,
                                start=inst.start_time, end=seg_end, task=name)
                )
    history = launcher.quarantine.history if launcher.quarantine is not None else ()
    return build_utilization(node_cores, segments, start=start, end=end,
                             quarantine_history=history)


def utilization_from_events(
    records: Iterable[Mapping[str, Any]],
    start: float = 0.0,
    end: float | None = None,
) -> UtilizationReport:
    """Offline path: rebuild the same report from JSONL point records.

    Consumes ``run.allocation`` (node → cores), ``wms.task-running`` /
    ``wms.task-end`` pairs (matched by instance id; an unmatched running
    task is clamped to the horizon), and ``run.quarantine-history``.
    """
    node_cores: dict[str, int] = {}
    open_runs: dict[str, tuple[str, float, dict[str, int]]] = {}
    segments: list[BusySegment] = []
    history: list[tuple[float, str, str]] = []
    max_time = start
    for rec in records:
        if rec.get("kind") != "point":
            continue
        max_time = max(max_time, float(rec.get("time", start)))
        name = rec.get("name")
        attrs = rec.get("attrs", {}) or {}
        if name == "run.allocation":
            for node_id, cores in attrs.get("nodes", {}).items():
                node_cores[node_id] = int(cores)
        elif name == "wms.task-running":
            open_runs[attrs["instance"]] = (
                attrs["task"], float(rec["time"]),
                {k: int(v) for k, v in attrs.get("nodes", {}).items()},
            )
        elif name == "wms.task-end":
            entry = open_runs.pop(attrs.get("instance"), None)
            if entry is not None:
                task, t0, nodes = entry
                for node_id, cores in sorted(nodes.items()):
                    segments.append(
                        BusySegment(node_id=node_id, cores=cores,
                                    start=t0, end=float(rec["time"]), task=task)
                    )
        elif name == "run.quarantine-history":
            for ev in attrs.get("events", []):
                history.append((float(ev[0]), ev[1], ev[2]))
    if end is None:
        end = max_time
    # Tasks still running when the log ends occupy their cores to the horizon.
    for instance_id in sorted(open_runs):
        task, t0, nodes = open_runs[instance_id]
        for node_id, cores in sorted(nodes.items()):
            segments.append(
                BusySegment(node_id=node_id, cores=cores, start=t0, end=end, task=task)
            )
    return build_utilization(node_cores, segments, start=start, end=end,
                             quarantine_history=history)
