"""SLO evaluation and anomaly detection with firing/clearing semantics.

Evaluators are plain state machines over the health engine's evaluation
cadence: an :class:`SloEvaluator` tracks consecutive violating/healthy
evaluations of one :class:`~repro.observability.spec.SloSpec`; an
:class:`EwmaDetector` scores each value's z-score against an
EWMA-smoothed rolling window.  Both emit typed :class:`HealthAlert`
records on state *transitions* only (firing / clearing), are pure
functions of the value sequence (deterministic under the sim clock), and
serialize their full state for the crash-recovery journal so alerts
never double-fire across a WAL replay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.observability.spec import AnomalySpec, SloSpec


@dataclass(frozen=True)
class HealthAlert:
    """One health state transition.

    Attributes:
        time: runtime-clock instant of the evaluation that transitioned.
        source: alert identity (``slo:<metric>.<stat>`` or
            ``anomaly:<metric>.<stat>``).
        kind: ``"firing"`` or ``"clearing"``.
        severity: from the owning spec.
        value: the metric value at the transition.
        threshold: the objective bound (for anomalies, the z threshold).
        message: human-readable one-liner.
    """

    time: float
    source: str
    kind: str
    severity: str
    value: float
    threshold: float
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "source": self.source,
            "kind": self.kind,
            "severity": self.severity,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "HealthAlert":
        return cls(
            time=float(d["time"]),
            source=d["source"],
            kind=d["kind"],
            severity=d["severity"],
            value=float(d["value"]),
            threshold=float(d["threshold"]),
            message=d.get("message", ""),
        )


class SloEvaluator:
    """Streak-counting evaluator for one SLO objective."""

    def __init__(self, spec: SloSpec) -> None:
        spec.validate()
        self.spec = spec
        self.firing = False
        self._bad_streak = 0
        self._good_streak = 0

    @property
    def source(self) -> str:
        return f"slo:{self.spec.key}"

    def evaluate(self, now: float, value: float | None) -> HealthAlert | None:
        """Feed one observation; returns an alert on a state transition.

        ``value=None`` (metric not yet observed) leaves the streaks and
        the firing state untouched.
        """
        if value is None:
            return None
        spec = self.spec
        if spec.healthy(value):
            self._good_streak += 1
            self._bad_streak = 0
            if self.firing and self._good_streak >= spec.clear_after:
                self.firing = False
                return HealthAlert(
                    time=now, source=self.source, kind="clearing",
                    severity=spec.severity, value=value, threshold=spec.threshold,
                    message=(
                        f"{spec.key} back within objective "
                        f"({spec.op} {spec.threshold:g}): {value:g}"
                    ),
                )
        else:
            self._bad_streak += 1
            self._good_streak = 0
            if not self.firing and self._bad_streak >= spec.fire_after:
                self.firing = True
                return HealthAlert(
                    time=now, source=self.source, kind="firing",
                    severity=spec.severity, value=value, threshold=spec.threshold,
                    message=(
                        f"{spec.key} violates objective "
                        f"({spec.op} {spec.threshold:g}): {value:g}"
                    ),
                )
        return None

    def state_dict(self) -> dict[str, Any]:
        return {
            "firing": self.firing,
            "bad": self._bad_streak,
            "good": self._good_streak,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self.firing = bool(state.get("firing", False))
        self._bad_streak = int(state.get("bad", 0))
        self._good_streak = int(state.get("good", 0))


class EwmaDetector:
    """Rolling-window z-score detector with EWMA smoothing."""

    def __init__(self, spec: AnomalySpec) -> None:
        spec.validate()
        self.spec = spec
        self.firing = False
        self._ewma: float | None = None
        self._window: list[float] = []

    @property
    def source(self) -> str:
        return f"anomaly:{self.spec.key}"

    def _score(self, value: float) -> float | None:
        """z-score of *value* against the smoothed window, or None."""
        if len(self._window) < self.spec.min_points:
            return None
        n = len(self._window)
        mean = sum(self._window) / n
        var = sum((x - mean) ** 2 for x in self._window) / n
        std = math.sqrt(var)
        if std <= 0.0:
            # A perfectly flat history: any deviation at all is anomalous.
            return math.inf if value != mean else 0.0
        return (value - mean) / std

    def evaluate(self, now: float, value: float | None) -> HealthAlert | None:
        if value is None:
            return None
        spec = self.spec
        z = self._score(value)
        # Smooth *after* scoring so the current value never defends itself.
        self._ewma = value if self._ewma is None else (
            spec.alpha * value + (1.0 - spec.alpha) * self._ewma
        )
        self._window.append(self._ewma)
        if len(self._window) > spec.window:
            self._window = self._window[-spec.window:]
        if z is None:
            return None
        anomalous = abs(z) > spec.z
        if anomalous and not self.firing:
            self.firing = True
            return HealthAlert(
                time=now, source=self.source, kind="firing",
                severity=spec.severity, value=value, threshold=spec.z,
                message=f"{spec.key} anomalous: z={'inf' if math.isinf(z) else f'{z:.2f}'}",
            )
        if not anomalous and self.firing:
            self.firing = False
            return HealthAlert(
                time=now, source=self.source, kind="clearing",
                severity=spec.severity, value=value, threshold=spec.z,
                message=f"{spec.key} back to baseline: z={z:.2f}",
            )
        return None

    def state_dict(self) -> dict[str, Any]:
        return {
            "firing": self.firing,
            "ewma": self._ewma,
            "window": list(self._window),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self.firing = bool(state.get("firing", False))
        ewma = state.get("ewma")
        self._ewma = None if ewma is None else float(ewma)
        self._window = [float(x) for x in state.get("window", [])]
