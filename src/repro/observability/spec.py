"""Observability configuration: SLOs, anomaly detectors, export targets.

:class:`ObservabilitySpec` mirrors :class:`~repro.telemetry.config.TelemetrySpec`:
a frozen dataclass consumed identically by the simulated and threaded
runtimes, and by the ``<observability>`` XML element (see
``docs/xml-reference.md``).  The spec is pure configuration — the moving
parts live in :mod:`repro.observability.health`.

An :class:`SloSpec` states an *objective* (``stage.decision.latency p95
LT 50``): the alert fires when the objective is violated for
``fire_after`` consecutive evaluations and clears after ``clear_after``
consecutive healthy ones.  An :class:`AnomalySpec` needs no threshold —
it flags values whose z-score against an EWMA-smoothed rolling window
exceeds ``z``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ObservabilityError

SEVERITIES = ("info", "warning", "critical")
SLO_STATS = ("p50", "p95", "p99", "mean", "min", "max", "count", "value")
SLO_OPS = ("LT", "LE", "GT", "GE")


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over a metric statistic.

    Attributes:
        metric: metric name — a histogram/counter/gauge in the run's
            :class:`~repro.telemetry.metrics.MetricsRegistry` (e.g.
            ``stage.decision.latency``) or a runtime aggregate published
            by the health engine (``utilization``, ``quarantine.count``).
        stat: statistic of the metric (``p50``/``p95``/``p99``/``mean``/
            ``min``/``max``/``count`` for histograms, ``value`` for
            counters/gauges/aggregates).
        op: objective comparator — the value is *healthy* when
            ``value <op> threshold`` holds.
        threshold: objective bound, in the metric's own unit.
        severity: alert severity when the objective is violated.
        fire_after: consecutive violating evaluations before firing.
        clear_after: consecutive healthy evaluations before clearing.
        tenant: optional tenant scope — when set, the objective reads
            the named tenant's registry under a campaign service (and
            DY412 checks the id against the ``<tenants>`` declaration).
    """

    metric: str
    stat: str = "p95"
    op: str = "LT"
    threshold: float = 0.0
    severity: str = "warning"
    fire_after: int = 1
    clear_after: int = 1
    tenant: str = ""

    @property
    def key(self) -> str:
        """Stable identity of the objective (``[tenant:]metric.stat``)."""
        base = f"{self.metric}.{self.stat}"
        return f"{self.tenant}:{base}" if self.tenant else base

    def validate(self) -> None:
        if not self.metric:
            raise ObservabilityError("slo needs a metric name")
        if self.stat not in SLO_STATS:
            raise ObservabilityError(f"slo stat must be one of {SLO_STATS}, got {self.stat!r}")
        if self.op not in SLO_OPS:
            raise ObservabilityError(f"slo op must be one of {SLO_OPS}, got {self.op!r}")
        if self.severity not in SEVERITIES:
            raise ObservabilityError(
                f"slo severity must be one of {SEVERITIES}, got {self.severity!r}"
            )
        if self.fire_after < 1 or self.clear_after < 1:
            raise ObservabilityError("slo fire_after/clear_after must be >= 1")

    def healthy(self, value: float) -> bool:
        """Does *value* meet the objective?"""
        if self.op == "LT":
            return value < self.threshold
        if self.op == "LE":
            return value <= self.threshold
        if self.op == "GT":
            return value > self.threshold
        return value >= self.threshold


@dataclass(frozen=True)
class AnomalySpec:
    """EWMA/z-score anomaly detector over a rolling window of a metric.

    Each evaluation appends the EWMA-smoothed value to a rolling window;
    the *raw* value is scored against the window's mean and standard
    deviation.  ``|z| > z`` (with at least ``min_points`` history) fires.
    """

    metric: str
    stat: str = "value"
    window: int = 20
    z: float = 3.0
    alpha: float = 0.3
    min_points: int = 5
    severity: str = "warning"

    @property
    def key(self) -> str:
        return f"{self.metric}.{self.stat}"

    def validate(self) -> None:
        if not self.metric:
            raise ObservabilityError("anomaly detector needs a metric name")
        if self.stat not in SLO_STATS:
            raise ObservabilityError(
                f"anomaly stat must be one of {SLO_STATS}, got {self.stat!r}"
            )
        if self.window < 2:
            raise ObservabilityError(f"anomaly window must be >= 2, got {self.window}")
        if self.z <= 0.0:
            raise ObservabilityError(f"anomaly z must be > 0, got {self.z}")
        if not 0.0 < self.alpha <= 1.0:
            raise ObservabilityError(f"anomaly alpha must be in (0, 1], got {self.alpha}")
        if self.min_points < 2:
            raise ObservabilityError(f"anomaly min_points must be >= 2, got {self.min_points}")
        if self.severity not in SEVERITIES:
            raise ObservabilityError(
                f"anomaly severity must be one of {SEVERITIES}, got {self.severity!r}"
            )


@dataclass(frozen=True)
class FleetSpec:
    """Fleet-plane configuration for multi-tenant campaigns.

    Consumed by :class:`~repro.observability.fleet.FleetHealthEngine`
    and :meth:`~repro.campaign.service.CampaignService.watch`.

    Attributes:
        enabled: master switch for the fleet plane.
        openmetrics_path: if set, fleet rollups are rendered there as
            tenant-labeled OpenMetrics families at campaign finalize.
        top_k: how many noisy tenants the rollup ranks.
        watch_path: if set, the campaign's watch stream is mirrored to
            this JSONL file (otherwise it lives under the journal root).
        flight_recorder: ring-buffer capacity (events) for the crash /
            poison-quarantine flight recorder; 0 disables it.
    """

    enabled: bool = True
    openmetrics_path: str | None = None
    top_k: int = 3
    watch_path: str | None = None
    flight_recorder: int = 256

    def validate(self) -> None:
        if self.top_k < 1:
            raise ObservabilityError(f"fleet top_k must be >= 1, got {self.top_k}")
        if self.flight_recorder < 0:
            raise ObservabilityError(
                f"fleet flight_recorder must be >= 0, got {self.flight_recorder}"
            )


@dataclass(frozen=True)
class ObservabilitySpec:
    """What to analyze, watch, and export.

    Attributes:
        enabled: master switch; a disabled spec costs nothing at runtime.
        eval_every: health-evaluation cadence in runtime seconds
            (simulated seconds under the sim driver, wall seconds under
            the threaded driver).
        snapshot_every: metrics-snapshot cadence in runtime seconds
            (0 disables the :class:`MetricsSnapshotter`).
        openmetrics_path: if set, the runtime renders the final
            :class:`MetricsRegistry` there in OpenMetrics text format.
        report_path: if set, a markdown run report is written there when
            the run finishes.
        report_json_path: if set, the same report as JSON.
        analysis: run critical-path/utilization analysis at finalize
            (the report exporters need it; benchmarks gate its cost).
        top_n: how many bottleneck/slow-span rows reports carry.
        slos: declarative objectives evaluated every ``eval_every``.
        anomalies: EWMA/z-score detectors evaluated on the same cadence.
        fleet: optional fleet-plane configuration (multi-tenant rollups,
            watch stream, flight recorder); ``None`` means no fleet plane.
    """

    enabled: bool = True
    eval_every: float = 5.0
    snapshot_every: float = 0.0
    openmetrics_path: str | None = None
    report_path: str | None = None
    report_json_path: str | None = None
    analysis: bool = True
    top_n: int = 5
    slos: tuple[SloSpec, ...] = field(default_factory=tuple)
    anomalies: tuple[AnomalySpec, ...] = field(default_factory=tuple)
    fleet: FleetSpec | None = None

    def __post_init__(self) -> None:
        # Tolerate lists from programmatic callers; store tuples so the
        # spec stays hashable and XML round-trips compare equal.
        object.__setattr__(self, "slos", tuple(self.slos))
        object.__setattr__(self, "anomalies", tuple(self.anomalies))

    def validate(self) -> None:
        if self.eval_every <= 0.0:
            raise ObservabilityError(f"eval_every must be > 0, got {self.eval_every}")
        if self.snapshot_every < 0.0:
            raise ObservabilityError(f"snapshot_every must be >= 0, got {self.snapshot_every}")
        if self.top_n < 1:
            raise ObservabilityError(f"top_n must be >= 1, got {self.top_n}")
        keys = [s.key for s in self.slos]
        if len(set(keys)) != len(keys):
            raise ObservabilityError(f"duplicate slo objectives: {sorted(keys)}")
        for slo in self.slos:
            slo.validate()
        for det in self.anomalies:
            det.validate()
        if self.fleet is not None:
            self.fleet.validate()
