"""Live campaign status streaming: a durable, seekable JSONL event log.

:class:`WatchStream` is the transport behind
:meth:`~repro.campaign.service.CampaignService.watch`: every admission,
lease decision, cell attempt, breaker trip, and SLO transition lands
here as one typed JSON line.  Three properties make the stream safe to
consume while the campaign is being crash/resumed:

* **Durable** — events append to a file and survive the writer; a torn
  trailing line (crash mid-write) is detected and discarded on reopen.
* **Idempotent** — every event carries a content-derived ``key``; a
  resumed supervisor re-submitting the same cells re-emits the same
  keys, which dedup against the committed prefix, so the stream stays
  byte-identical to an uncrashed run.
* **Seekable** — each line carries a monotonically increasing ``seq``;
  :meth:`read` returns everything at or after a cursor, so a consumer
  can disconnect and catch up.

Lines render via ``json.dumps(..., sort_keys=True)`` with fixed
separators, so same-event sequences are byte-identical across runs.
"""

from __future__ import annotations

import io
import json
import os
from typing import Any

from repro.errors import ObservabilityError

#: The typed event vocabulary; ``emit`` rejects anything else so
#: consumers can exhaustively match on ``kind``.
EVENT_KINDS = (
    "campaign-open",
    "admit",
    "reject",
    "lease-grant",
    "lease-deny",
    "cell-start",
    "cell-retry",
    "cell-complete",
    "cell-poison",
    "breaker-trip",
    "alert",
    "slo-transition",
)


def _render(event: dict[str, Any]) -> str:
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class WatchStream:
    """Append-only typed event stream over one campaign.

    Pass ``path=None`` for a purely in-memory stream (tests, disabled
    journaling); otherwise the file at *path* is the durable record and
    reopening it resumes ``seq`` and the dedup index from the committed
    prefix.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._events: list[dict[str, Any]] = []
        self._seen: set[str] = set()
        self._fh: io.TextIOWrapper | None = None
        if path is not None:
            self._load(path)
            self._fh = open(path, "a", encoding="utf-8")

    def _load(self, path: str, repair: bool = True) -> None:
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as fh:
            raw = fh.read()
        committed = raw
        if raw and not raw.endswith("\n"):
            # Torn tail from a crash mid-append: drop the partial line
            # and (when reopening for append) truncate the file back to
            # the committed prefix.
            committed = raw[: raw.rfind("\n") + 1] if "\n" in raw else ""
            if repair:
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(committed)
        for line in committed.splitlines():
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(f"corrupt watch stream {path}: {exc}") from None
            self._events.append(event)
            self._seen.add(event["key"])

    # -- writing -------------------------------------------------------

    def emit(self, kind: str, key: str, time: float, **payload: Any) -> bool:
        """Append one event; returns False if *key* was already emitted.

        *key* must be content-derived (cell id + attempt, trip ordinal,
        alert source + ordinal, ...) so a crash/resume that replays the
        same logical event deduplicates instead of double-appending.
        """
        if kind not in EVENT_KINDS:
            raise ObservabilityError(f"unknown watch event kind {kind!r}")
        if key in self._seen:
            return False
        event: dict[str, Any] = {"seq": len(self._events), "kind": kind,
                                 "key": key, "time": time}
        for name, value in payload.items():
            if name in event:
                raise ObservabilityError(f"watch payload field {name!r} is reserved")
            event[name] = value
        self._events.append(event)
        self._seen.add(key)
        if self._fh is not None:
            self._fh.write(_render(event) + "\n")
            self._fh.flush()
        return True

    def seen(self, key: str) -> bool:
        """True if *key* was already emitted (committed prefix included)."""
        return key in self._seen

    def sync(self) -> None:
        """fsync the stream file (called at campaign WAL barriers)."""
        if self._fh is not None:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- reading -------------------------------------------------------

    @property
    def seq(self) -> int:
        """The next sequence number to be assigned."""
        return len(self._events)

    def read(self, since: int = 0) -> list[dict[str, Any]]:
        """All events with ``seq >= since``, in order."""
        if since < 0:
            raise ObservabilityError(f"watch cursor must be >= 0, got {since}")
        return [dict(e) for e in self._events[since:]]

    def render(self, since: int = 0) -> str:
        """The stream (from *since*) as canonical JSONL text."""
        return "".join(_render(e) + "\n" for e in self._events[since:])


def read_watch_stream(path: str) -> list[dict[str, Any]]:
    """Parse a committed watch-stream file without opening it for append."""
    stream = WatchStream(None)
    stream._load(path, repair=False)
    return stream.read()
