"""OpenMetrics text rendering of a :class:`MetricsRegistry`.

:func:`render_openmetrics` turns the registry into the Prometheus /
OpenMetrics text exposition format: counters as ``_total`` samples,
gauges as plain samples, latency histograms as cumulative ``le`` buckets
plus a companion ``*_quantile`` gauge family carrying the interpolated
p50/p95/p99 with ``quantile`` labels.  Output is deterministic — metric
families are sorted by name and floats render via ``repr`` — so
same-seed runs produce byte-identical exports.

:func:`parse_openmetrics` is a deliberately *strict* parser used by the
test suite to keep the renderer honest: it validates name syntax, label
syntax, TYPE declarations, cumulative bucket monotonicity, and the
terminal ``# EOF`` marker.
"""

from __future__ import annotations

import math
import re
from typing import Any

from repro.errors import ObservabilityError
from repro.telemetry.metrics import MetricsRegistry

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")
_QUANTILES = ((0.5, "p50"), (0.95, "p95"), (0.99, "p99"))


def sanitize_metric_name(name: str, prefix: str = "dyflow_") -> str:
    """Dotted registry name → legal OpenMetrics family name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return prefix + cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value for the text exposition format.

    The three escapes the spec defines: backslash, double-quote, and
    line feed.  Everything else (including non-ASCII UTF-8) passes
    through verbatim.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


_UNESCAPE_RE = re.compile(r"\\(.)")
_UNESCAPE_MAP = {"\\": "\\", '"': '"', "n": "\n"}


def _unescape_label_value(raw: str, where: str) -> str:
    """Strict left-to-right unescape of a quoted label value."""

    def repl(m: re.Match[str]) -> str:
        ch = m.group(1)
        out = _UNESCAPE_MAP.get(ch)
        if out is None:
            raise ObservabilityError(f"{where}: bad escape sequence '\\{ch}' in label value")
        return out

    return _UNESCAPE_RE.sub(repl, raw)


def _fmt(value: float) -> str:
    """Deterministic number rendering (ints without the trailing ``.0``)."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_openmetrics(registry: MetricsRegistry, prefix: str = "dyflow_") -> str:
    """The registry as OpenMetrics text, ending in ``# EOF``."""
    lines: list[str] = []
    for counter in registry.counters():
        name = sanitize_metric_name(counter.name, prefix)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"# HELP {name} Counter {counter.name}")
        lines.append(f"{name}_total {_fmt(counter.value)}")
    for gauge in registry.gauges():
        name = sanitize_metric_name(gauge.name, prefix)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"# HELP {name} Gauge {gauge.name}")
        lines.append(f"{name} {_fmt(gauge.value)}")
    for hist in registry.histograms():
        name = sanitize_metric_name(hist.name, prefix)
        lines.append(f"# TYPE {name} histogram")
        lines.append(f"# HELP {name} Histogram {hist.name}")
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        lines.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{name}_count {hist.count}")
        lines.append(f"{name}_sum {_fmt(hist.total)}")
        if hist.count > 0:
            qname = f"{name}_quantile"
            lines.append(f"# TYPE {qname} gauge")
            lines.append(f"# HELP {qname} Interpolated quantiles of {hist.name}")
            for q, _label in _QUANTILES:
                lines.append(
                    f'{qname}{{quantile="{_fmt(q)}"}} {_fmt(hist.percentile(q * 100.0))}'
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(path: str, registry: MetricsRegistry, prefix: str = "dyflow_") -> str:
    """Render to *path*; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_openmetrics(registry, prefix))
    return path


def render_labeled_openmetrics(
    registries: dict[str, MetricsRegistry],
    label: str = "tenant",
    prefix: str = "dyflow_",
) -> str:
    """Merge per-key registries into labeled OpenMetrics families.

    Same-named instruments across the *registries* mapping become one
    family whose samples carry ``label="<key>"`` — the fleet rollup
    export (one registry per tenant → tenant-labeled families).  Output
    is deterministic: families sorted by name, then samples sorted by
    label value, and label values escaped per the exposition format.
    """
    if not _LABEL_NAME_RE.match(label):
        raise ObservabilityError(f"bad label name {label!r}")
    counters: dict[str, list[tuple[str, Any]]] = {}
    gauges: dict[str, list[tuple[str, Any]]] = {}
    hists: dict[str, list[tuple[str, Any]]] = {}
    for key in sorted(registries):
        reg = registries[key]
        for c in reg.counters():
            counters.setdefault(c.name, []).append((key, c))
        for g in reg.gauges():
            gauges.setdefault(g.name, []).append((key, g))
        for h in reg.histograms():
            hists.setdefault(h.name, []).append((key, h))

    lines: list[str] = []
    for cname in sorted(counters):
        name = sanitize_metric_name(cname, prefix)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"# HELP {name} Counter {cname}")
        for key, c in counters[cname]:
            tag = escape_label_value(key)
            lines.append(f'{name}_total{{{label}="{tag}"}} {_fmt(c.value)}')
    for gname in sorted(gauges):
        name = sanitize_metric_name(gname, prefix)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"# HELP {name} Gauge {gname}")
        for key, g in gauges[gname]:
            tag = escape_label_value(key)
            lines.append(f'{name}{{{label}="{tag}"}} {_fmt(g.value)}')
    for hname in sorted(hists):
        name = sanitize_metric_name(hname, prefix)
        lines.append(f"# TYPE {name} histogram")
        lines.append(f"# HELP {name} Histogram {hname}")
        quantile_lines: list[str] = []
        for key, h in hists[hname]:
            tag = escape_label_value(key)
            cumulative = 0
            for bound, count in zip(h.bounds, h.counts):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{{label}="{tag}",le="{_fmt(bound)}"}} {cumulative}'
                )
            lines.append(f'{name}_bucket{{{label}="{tag}",le="+Inf"}} {h.count}')
            lines.append(f'{name}_count{{{label}="{tag}"}} {h.count}')
            lines.append(f'{name}_sum{{{label}="{tag}"}} {_fmt(h.total)}')
            if h.count > 0:
                for q, _plabel in _QUANTILES:
                    quantile_lines.append(
                        f'{name}_quantile{{{label}="{tag}",quantile="{_fmt(q)}"}} '
                        f"{_fmt(h.percentile(q * 100.0))}"
                    )
        if quantile_lines:
            qname = f"{name}_quantile"
            lines.append(f"# TYPE {qname} gauge")
            lines.append(f"# HELP {qname} Interpolated quantiles of {hname}")
            lines.extend(quantile_lines)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_value(text: str, where: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ObservabilityError(f"{where}: bad sample value {text!r}") from None


def _parse_labels(text: str | None, where: str) -> dict[str, str]:
    if not text:
        return {}
    labels: dict[str, str] = {}
    # name="value" pairs; values may contain escaped quotes/backslashes.
    pair_re = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
    pos = 0
    while pos < len(text):
        m = pair_re.match(text, pos)
        if m is None:
            raise ObservabilityError(f"{where}: malformed labels {text!r}")
        name, raw = m.group(1), m.group(2)
        if not _LABEL_NAME_RE.match(name):
            raise ObservabilityError(f"{where}: bad label name {name!r}")
        if name in labels:
            raise ObservabilityError(f"{where}: duplicate label {name!r}")
        labels[name] = _unescape_label_value(raw, where)
        pos = m.end()
        if pos < len(text):
            if text[pos] != ",":
                raise ObservabilityError(f"{where}: malformed labels {text!r}")
            pos += 1
    return labels


def _family_of(sample_name: str, families: dict[str, dict[str, Any]]) -> str | None:
    """Resolve a sample line to its declared family, suffix-aware."""
    if sample_name in families:
        return sample_name
    for suffix in ("_total", "_bucket", "_count", "_sum"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families:
                return base
    return None


_ALLOWED_SUFFIXES = {
    "counter": {"_total"},
    "gauge": {""},
    "histogram": {"_bucket", "_count", "_sum"},
    "summary": {"", "_count", "_sum"},
    "untyped": {""},
}


def parse_openmetrics(text: str) -> dict[str, dict[str, Any]]:
    """Strictly parse OpenMetrics text; returns family → metadata/samples.

    Raises :class:`ObservabilityError` on any deviation: unknown or
    re-declared families, samples before their TYPE, malformed names,
    labels or values, non-cumulative histogram buckets, a missing
    ``+Inf`` bucket, missing or non-terminal ``# EOF``.
    """
    families: dict[str, dict[str, Any]] = {}
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        raise ObservabilityError("openmetrics text must end with '# EOF'")
    for i, line in enumerate(lines[:-1], start=1):
        where = f"line {i}"
        if "# EOF" == line:
            raise ObservabilityError(f"{where}: '# EOF' before end of input")
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in ("TYPE", "HELP", "UNIT"):
                raise ObservabilityError(f"{where}: malformed comment {line!r}")
            keyword, fname = parts[1], parts[2]
            if not _NAME_RE.match(fname):
                raise ObservabilityError(f"{where}: bad metric name {fname!r}")
            if keyword == "TYPE":
                ftype = parts[3] if len(parts) > 3 else ""
                if ftype not in _TYPES:
                    raise ObservabilityError(f"{where}: unknown metric type {ftype!r}")
                if fname in families:
                    raise ObservabilityError(f"{where}: family {fname!r} re-declared")
                families[fname] = {"type": ftype, "help": None, "samples": []}
            elif keyword == "HELP":
                if fname not in families:
                    raise ObservabilityError(f"{where}: HELP before TYPE for {fname!r}")
                families[fname]["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if not line.strip():
            raise ObservabilityError(f"{where}: blank lines are not allowed")
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ObservabilityError(f"{where}: malformed sample {line!r}")
        sample_name = m.group("name")
        fname = _family_of(sample_name, families)
        if fname is None:
            raise ObservabilityError(f"{where}: sample {sample_name!r} has no TYPE")
        suffix = sample_name[len(fname):]
        if suffix not in _ALLOWED_SUFFIXES[families[fname]["type"]]:
            raise ObservabilityError(
                f"{where}: suffix {suffix!r} not allowed for "
                f"{families[fname]['type']} family {fname!r}"
            )
        labels = _parse_labels(m.group("labels"), where)
        value = _parse_value(m.group("value"), where)
        families[fname]["samples"].append(
            {"name": sample_name, "labels": labels, "value": value}
        )
    for fname, family in families.items():
        if family["type"] == "histogram":
            _check_histogram(fname, family)
    return families


def _series_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    """Identity of one histogram series: every label except ``le``."""
    return tuple(sorted((k, v) for k, v in labels.items() if k != "le"))


def _check_histogram(fname: str, family: dict[str, Any]) -> None:
    buckets = [s for s in family["samples"] if s["name"] == f"{fname}_bucket"]
    counts = [s for s in family["samples"] if s["name"] == f"{fname}_count"]
    if not buckets:
        raise ObservabilityError(f"histogram {fname!r} has no buckets")
    # Labeled families (e.g. per-tenant) carry one bucket series per
    # distinct non-`le` label set; each series must be independently
    # sorted, cumulative, and +Inf-terminated.
    series: dict[tuple[tuple[str, str], ...], tuple[list[float], list[float]]] = {}
    for s in buckets:
        le = s["labels"].get("le")
        if le is None:
            raise ObservabilityError(f"histogram {fname!r}: bucket without 'le' label")
        bounds, values = series.setdefault(_series_key(s["labels"]), ([], []))
        bounds.append(_parse_value(le, f"histogram {fname!r} le"))
        values.append(s["value"])
    count_by_series = {_series_key(s["labels"]): s["value"] for s in counts}
    for key, (bounds, values) in series.items():
        where = f"histogram {fname!r}" + (f" {dict(key)!r}" if key else "")
        if bounds != sorted(bounds):
            raise ObservabilityError(f"{where}: bucket bounds not sorted")
        if not math.isinf(bounds[-1]):
            raise ObservabilityError(f"{where}: missing '+Inf' bucket")
        if any(b > a for a, b in zip(values[1:], values)):
            raise ObservabilityError(f"{where}: bucket counts not cumulative")
        if key in count_by_series and count_by_series[key] != values[-1]:
            raise ObservabilityError(f"{where}: _count disagrees with '+Inf' bucket")
