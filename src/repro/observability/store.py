"""Queryable run store: signac-style indexing over committed run JSON.

Every benchmark emits ``BENCH_<name>.json`` (``{"name", "config",
"metrics"}``) and every observed run can emit a ``dyflow-run-report/1``
JSON document.  :class:`RunStore` indexes both into content-addressed
records — the id embeds a statepoint hash of the run's config, the
signac convention reused from :mod:`repro.campaign.statepoint` — and
flattens each document's numeric metrics into dotted keys
(``sizes.1000.events_per_sec``, ``plan.response.p95``) so they can be
queried uniformly::

    store = RunStore()
    store.index("benchmarks")
    worse = store.regressions("metrics.sizes.1000.events_per_sec",
                              direction="lower-is-worse")

The CLI wraps the same API::

    python -m repro.observability.store benchmarks --list
    python -m repro.observability.store benchmarks \
        --regressions metrics.sizes.1000.ticks_per_sec --tolerance 10

Indexing is deterministic: files scan in sorted path order and every
listing sorts by record id.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.campaign.statepoint import ID_HASH_LEN, statepoint_hash
from repro.errors import ObservabilityError

REPORT_SCHEMA = "dyflow-run-report/1"

_OPS: dict[str, Callable[[float, float], bool]] = {
    "LT": lambda a, b: a < b,
    "LE": lambda a, b: a <= b,
    "GT": lambda a, b: a > b,
    "GE": lambda a, b: a >= b,
    "EQ": lambda a, b: a == b,
}


def flatten_metrics(doc: Mapping[str, Any], prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested mapping as dotted keys, sorted."""
    out: dict[str, float] = {}
    for key in sorted(doc, key=str):
        value = doc[key]
        dotted = f"{prefix}{key}"
        if isinstance(value, Mapping):
            out.update(flatten_metrics(value, prefix=f"{dotted}."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            out[dotted] = float(value)
    return out


@dataclass(frozen=True)
class RunRecord:
    """One indexed run document.

    Attributes:
        record_id: content-addressed id — ``<name>-<hash8>`` where the
            hash covers the run's config statepoint.
        kind: ``"bench"`` or ``"report"``.
        name: benchmark name or report workflow name.
        path: source file.
        config: the statepoint (bench config, or report meta).
        metrics: flattened dotted-key numeric metrics.
    """

    record_id: str
    kind: str
    name: str
    path: str
    config: dict[str, Any] = field(hash=False)
    metrics: dict[str, float] = field(hash=False)

    def metric(self, key: str) -> float | None:
        return self.metrics.get(key)


def _classify(doc: Any) -> str | None:
    if not isinstance(doc, Mapping):
        return None
    if doc.get("schema") == REPORT_SCHEMA:
        return "report"
    if {"name", "config", "metrics"} <= set(doc):
        return "bench"
    return None


def load_record(path: str) -> RunRecord | None:
    """Index one JSON file, or ``None`` if it is not a run document."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError:
            return None
    kind = _classify(doc)
    if kind is None:
        return None
    if kind == "bench":
        name = str(doc["name"])
        config = dict(doc["config"])
        metrics = flatten_metrics({"metrics": doc["metrics"]})
    else:
        meta = dict(doc.get("meta") or {})
        name = str(meta.get("workflow") or meta.get("name") or "report")
        config = meta
        metrics = flatten_metrics(
            {"metrics": doc.get("metrics") or {}, "meta": meta}
        )
    record_id = f"{name}-{statepoint_hash(config, name=name, kind=kind)[:ID_HASH_LEN]}"
    return RunRecord(
        record_id=record_id, kind=kind, name=name, path=path,
        config=config, metrics=metrics,
    )


class RunStore:
    """In-memory index of run records with a small query API."""

    def __init__(self) -> None:
        self._records: dict[str, RunRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def add(self, record: RunRecord) -> None:
        self._records[record.record_id] = record

    def add_file(self, path: str) -> RunRecord | None:
        record = load_record(path)
        if record is not None:
            self.add(record)
        return record

    def index(self, root: str) -> int:
        """Recursively index every ``*.json`` under *root* (or one file).

        Returns how many run documents were indexed; non-run JSON is
        skipped silently.
        """
        if os.path.isfile(root):
            return 1 if self.add_file(root) else 0
        count = 0
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for fname in sorted(filenames):
                if fname.endswith(".json"):
                    if self.add_file(os.path.join(dirpath, fname)) is not None:
                        count += 1
        return count

    # -- queries -------------------------------------------------------

    def records(self) -> list[RunRecord]:
        return [self._records[rid] for rid in sorted(self._records)]

    def get(self, record_id: str) -> RunRecord:
        try:
            return self._records[record_id]
        except KeyError:
            raise ObservabilityError(f"no run record {record_id!r}") from None

    def metric_keys(self) -> list[str]:
        keys: set[str] = set()
        for record in self._records.values():
            keys.update(record.metrics)
        return sorted(keys)

    def query(self, metric: str, op: str, value: float) -> list[RunRecord]:
        """Records whose *metric* satisfies ``metric <op> value``."""
        cmp = _OPS.get(op)
        if cmp is None:
            raise ObservabilityError(f"query op must be one of {sorted(_OPS)}, got {op!r}")
        return [
            r for r in self.records()
            if r.metric(metric) is not None and cmp(r.metrics[metric], value)
        ]

    def regressions(
        self,
        metric: str,
        baseline: str | None = None,
        tolerance_pct: float = 0.0,
        direction: str = "higher-is-worse",
    ) -> list[dict[str, Any]]:
        """Runs where *metric* regressed versus a baseline.

        *baseline* names a record id; when ``None`` the best-performing
        record (lowest value under ``higher-is-worse``, highest under
        ``lower-is-worse``) is the baseline.  A run regresses when its
        value is worse than the baseline by more than *tolerance_pct*
        percent.  Results sort worst-first.
        """
        if direction not in ("higher-is-worse", "lower-is-worse"):
            raise ObservabilityError(f"bad regression direction {direction!r}")
        with_metric = [r for r in self.records() if r.metric(metric) is not None]
        if not with_metric:
            return []
        if baseline is not None:
            base = self.get(baseline)
            if base.metric(metric) is None:
                raise ObservabilityError(
                    f"baseline {baseline!r} has no metric {metric!r}"
                )
        elif direction == "higher-is-worse":
            base = min(with_metric, key=lambda r: (r.metrics[metric], r.record_id))
        else:
            base = min(with_metric, key=lambda r: (-r.metrics[metric], r.record_id))
        base_value = base.metrics[metric]
        out: list[dict[str, Any]] = []
        for record in with_metric:
            if record.record_id == base.record_id:
                continue
            value = record.metrics[metric]
            if base_value == 0.0:
                delta_pct = 0.0 if value == base_value else float("inf")
            else:
                delta_pct = (value - base_value) / abs(base_value) * 100.0
            if direction == "lower-is-worse":
                delta_pct = -delta_pct
            if delta_pct > tolerance_pct:
                out.append({
                    "record_id": record.record_id,
                    "path": record.path,
                    "metric": metric,
                    "value": value,
                    "baseline": base.record_id,
                    "baseline_value": base_value,
                    "delta_pct": delta_pct,
                })
        out.sort(key=lambda row: (-row["delta_pct"], row["record_id"]))
        return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.store",
        description="Index and query committed BENCH/run-report JSON.",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to index")
    parser.add_argument("--list", action="store_true", help="list indexed records")
    parser.add_argument("--keys", action="store_true", help="list metric keys")
    parser.add_argument("--query", nargs=3, metavar=("METRIC", "OP", "VALUE"),
                        help="records where METRIC OP VALUE (ops: LT LE GT GE EQ)")
    parser.add_argument("--regressions", metavar="METRIC",
                        help="runs where METRIC regressed vs the baseline")
    parser.add_argument("--baseline", default=None, help="baseline record id")
    parser.add_argument("--tolerance", type=float, default=0.0,
                        help="regression tolerance in percent")
    parser.add_argument("--direction", default="higher-is-worse",
                        choices=("higher-is-worse", "lower-is-worse"))
    parser.add_argument("--json", action="store_true", help="emit JSON instead of text")
    args = parser.parse_args(argv)

    store = RunStore()
    indexed = sum(store.index(path) for path in args.paths)

    def dump(payload: Any) -> None:
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        elif isinstance(payload, list):
            for row in payload:
                print(row if isinstance(row, str) else json.dumps(row, sort_keys=True))
        else:
            print(payload)

    if args.query:
        metric, op, value = args.query
        hits = store.query(metric, op, float(value))
        dump([{"record_id": r.record_id, "path": r.path, "value": r.metrics[metric]}
              for r in hits])
        return 0
    if args.regressions:
        rows = store.regressions(
            args.regressions, baseline=args.baseline,
            tolerance_pct=args.tolerance, direction=args.direction,
        )
        dump(rows)
        return 0
    if args.keys:
        dump(store.metric_keys())
        return 0
    # Default action (and --list): enumerate the indexed records.
    dump([
        {"record_id": r.record_id, "kind": r.kind, "name": r.name,
         "path": r.path, "metrics": len(r.metrics)}
        for r in store.records()
    ])
    sys.stderr.write(f"indexed {indexed} run documents\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
