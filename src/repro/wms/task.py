"""Task lifecycle: instances, records, and legal state transitions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.allocation import ResourceSet
from repro.errors import TaskStateError
from repro.sim.process import Process
from repro.wms.spec import TaskSpec


class TaskState(enum.Enum):
    """Lifecycle of one task *instance*.

    PENDING → LAUNCHING → RUNNING → (STOPPING →) one of
    COMPLETED / STOPPED / FAILED.
    """

    PENDING = "pending"
    LAUNCHING = "launching"
    RUNNING = "running"
    STOPPING = "stopping"
    COMPLETED = "completed"   # exit 0 after finishing its work
    STOPPED = "stopped"       # exit 0 after an orchestrated stop
    FAILED = "failed"         # nonzero exit (signal codes > 128 included)


_TRANSITIONS: dict[TaskState, set[TaskState]] = {
    TaskState.PENDING: {TaskState.LAUNCHING},
    # A stop during launch finalizes as STOPPED without ever RUNNING.
    TaskState.LAUNCHING: {TaskState.RUNNING, TaskState.FAILED, TaskState.STOPPING, TaskState.STOPPED},
    TaskState.RUNNING: {TaskState.STOPPING, TaskState.COMPLETED, TaskState.STOPPED, TaskState.FAILED},
    TaskState.STOPPING: {TaskState.STOPPED, TaskState.FAILED, TaskState.COMPLETED},
    TaskState.COMPLETED: set(),
    TaskState.STOPPED: set(),
    TaskState.FAILED: set(),
}

TERMINAL_STATES = {TaskState.COMPLETED, TaskState.STOPPED, TaskState.FAILED}


@dataclass
class TaskInstance:
    """One incarnation of a workflow task on concrete resources."""

    task: str
    workflow_id: str
    incarnation: int
    resources: ResourceSet
    state: TaskState = TaskState.PENDING
    launch_time: float | None = None
    start_time: float | None = None
    end_time: float | None = None
    exit_code: int | None = None
    stop_requested: bool = False
    proc: Process | None = None
    ctx: Any = None  # the TaskContext once the app is spawned
    notes: dict[str, Any] = field(default_factory=dict)
    # Resilience bookkeeping: freshest app-level sign of life, and who
    # delivered a kill ("orchestrated", "node-failure", "walltime",
    # "watchdog", "chaos") — the retry machinery only resurrects
    # instances whose death was not deliberate.
    last_heartbeat: float | None = None
    kill_cause: str | None = None

    @property
    def nprocs(self) -> int:
        return self.resources.total_cores

    @property
    def instance_id(self) -> str:
        return f"{self.task}#{self.incarnation}"

    @property
    def is_active(self) -> bool:
        return self.state in (TaskState.LAUNCHING, TaskState.RUNNING, TaskState.STOPPING)

    def transition(self, new_state: TaskState) -> None:
        """Move to *new_state*; illegal transitions raise TaskStateError."""
        if new_state not in _TRANSITIONS[self.state]:
            raise TaskStateError(
                f"{self.instance_id}: illegal transition {self.state.value} -> {new_state.value}"
            )
        self.state = new_state


@dataclass
class TaskRecord:
    """Everything the launcher knows about one task name over time."""

    spec: TaskSpec
    current: TaskInstance | None = None
    history: list[TaskInstance] = field(default_factory=list)
    incarnations: int = 0
    # Retry bookkeeping (launcher-level recovery; reset on COMPLETED).
    retries_used: int = 0
    retry_exhausted: bool = False

    @property
    def is_active(self) -> bool:
        return self.current is not None and self.current.is_active

    @property
    def is_running(self) -> bool:
        return self.current is not None and self.current.state == TaskState.RUNNING

    def all_instances(self) -> list[TaskInstance]:
        out = list(self.history)
        if self.current is not None and self.current not in out:
            out.append(self.current)
        return out
