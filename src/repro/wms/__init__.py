"""Workflow management substrate (the Cheetah/Savanna stand-in).

Cheetah composes workflows; Savanna launches them and talks to the
cluster.  DYFLOW is explicitly built as an extension of such a static
WMS (paper §3), driving it exclusively through the low-level actuation
plugin.  This package provides:

* :class:`WorkflowSpec` / :class:`TaskSpec` — workflow composition with
  tight/loose coupling declarations (Cheetah's role).
* :class:`Savanna` — the runtime that owns the allocation's resource
  manager, launches task instances as simulated processes, delivers
  signals, records exit statuses, and exposes the actuation plugin ops
  (``start_task_with_resources``, ``signal_term_task``, ``stop_task``,
  ``request_resources``, ``release_resources``, ``get_resource_status``).
* :class:`Campaign` — Cheetah-like parameter-sweep composition.
"""

from repro.wms.spec import CouplingType, DependencySpec, TaskSpec, WorkflowSpec
from repro.wms.task import TaskInstance, TaskRecord, TaskState
from repro.wms.launcher import Savanna
from repro.wms.campaign import Campaign, CampaignRunner, Sweep

__all__ = [
    "CouplingType",
    "DependencySpec",
    "TaskSpec",
    "WorkflowSpec",
    "TaskState",
    "TaskInstance",
    "TaskRecord",
    "Savanna",
    "Campaign",
    "CampaignRunner",
    "Sweep",
]
