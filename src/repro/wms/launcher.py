"""The Savanna-like workflow runtime.

Savanna "runs on launch/service cluster nodes, communicates with the
cluster scheduler, allocates the required resources, and spawns the
workflow tasks on the allocated resources" (paper §3).  This class plays
that role on the simulation kernel and exposes the **actuation plugin**:
the low-level operations DYFLOW's Actuation stage invokes
(``start_task_with_resources``, ``signal_*_task``, ``stop_task``,
``request_resources``, ``release_resources``, ``get_resource_status``).

Operations that take time (launching, signalling, waiting for graceful
termination) are generators meant to be driven from a simulated process
via ``yield from``.
"""

from __future__ import annotations

from typing import Any, Callable


from repro.apps.base import Signal, TaskContext
from repro.apps.coupling import CouplingRegistry
from repro.cluster.allocation import Allocation, ResourceSet
from repro.cluster.resource_manager import ResourceManager
from repro.errors import AllocationError, LaunchError
from repro.profiler.counters import CounterModel
from repro.resilience.quarantine import NodeQuarantine
from repro.resilience.spec import ResilienceSpec
from repro.sim.engine import SimEngine
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.staging.hub import DataHub
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.wms.spec import WorkflowSpec
from repro.wms.task import TaskInstance, TaskRecord, TaskState

TaskListener = Callable[[TaskInstance], None]

# Kill causes that are deliberate orchestration, not faults: they never
# feed the retry machinery or the node circuit breaker.
_DELIBERATE_KILLS = ("orchestrated", "walltime")


class Savanna:
    """Workflow runtime over one allocation."""

    def __init__(
        self,
        engine: SimEngine,
        workflow: WorkflowSpec,
        allocation: Allocation,
        hub: DataHub | None = None,
        trace: TraceRecorder | None = None,
        rng: RngRegistry | None = None,
        coupling: CouplingRegistry | None = None,
        poll_interval: float = 0.25,
        counters: CounterModel | None = None,
        resilience: ResilienceSpec | None = None,
    ) -> None:
        self.engine = engine
        self.workflow = workflow
        self.allocation = allocation
        self.machine = allocation.machine
        self.perf = allocation.machine.perf
        self.hub = hub if hub is not None else DataHub()
        self.trace = trace if trace is not None else TraceRecorder()
        self.rng = rng if rng is not None else RngRegistry(0)
        self.coupling = coupling if coupling is not None else CouplingRegistry()
        self.poll_interval = poll_interval
        self.counters = counters
        self.rm = ResourceManager(allocation)
        self.records: dict[str, TaskRecord] = {
            name: TaskRecord(spec=spec) for name, spec in workflow.tasks.items()
        }
        self._start_listeners: list[TaskListener] = []
        self._end_listeners: list[TaskListener] = []
        self.tracer: Tracer = NULL_TRACER
        self.resilience: ResilienceSpec | None = None
        self.retry_policy = None
        self.checkpoint_spec = None
        self.quarantine: NodeQuarantine | None = None
        self.configure_resilience(resilience)

    # -- resilience configuration -------------------------------------------------
    def configure_resilience(self, spec: ResilienceSpec | None) -> None:
        """Install (or clear) the recovery layer: retry, quarantine, checkpoint.

        Called from the constructor and by the XML bootstrap when the
        spec carries a ``<resilience>`` element.  The watchdog and the
        fault model live with the orchestrator/chaos engine; the pieces
        the *launcher* owns are retry/backoff, the node circuit breaker,
        and checkpoint-cadence injection into task parameters.

        Re-applying the spec already in force is a no-op: a crash-resumed
        orchestrator re-runs its bootstrap against the live launcher, and
        replacing the quarantine would silently amnesty every blamed node.
        """
        if spec is not None and spec == self.resilience:
            return
        if spec is not None:
            spec.validate()
        self.resilience = spec
        self.retry_policy = spec.retry if spec is not None else None
        self.checkpoint_spec = spec.checkpoint if spec is not None else None
        if spec is not None and spec.quarantine is not None:
            self.quarantine = NodeQuarantine(spec.quarantine, clock=lambda: self.engine.now)
        else:
            self.quarantine = None
        self.rm.quarantine = self.quarantine

    def attach_tracer(self, tracer: Tracer) -> None:
        """Install the run's telemetry tracer on the launcher and its hub."""
        self.tracer = tracer
        self.hub.attach_tracer(tracer)

    # -- listeners (the Monitor stage subscribes here) ---------------------------
    def subscribe_start(self, cb: TaskListener) -> None:
        self._start_listeners.append(cb)

    def subscribe_end(self, cb: TaskListener) -> None:
        self._end_listeners.append(cb)

    def unsubscribe_start(self, cb: TaskListener) -> None:
        """Detach a start listener (crashed orchestrators must not leak)."""
        if cb in self._start_listeners:
            self._start_listeners.remove(cb)

    def unsubscribe_end(self, cb: TaskListener) -> None:
        if cb in self._end_listeners:
            self._end_listeners.remove(cb)

    # -- crash recovery -----------------------------------------------------------
    def retry_audit(self) -> dict:
        """Retry budgets and incarnation counters (journal snapshot audit).

        The launcher survives an orchestrator crash in-process, so this
        state is never *restored* from a journal — it is recorded so a
        post-mortem (and the exactly-once effect probes) can compare the
        journaled view against the live runtime.
        """
        return {
            name: {
                "incarnations": rec.incarnations,
                "retries_used": rec.retries_used,
                "retry_exhausted": rec.retry_exhausted,
            }
            for name, rec in sorted(self.records.items())
        }

    # -- queries ------------------------------------------------------------------
    def record(self, name: str) -> TaskRecord:
        rec = self.records.get(name)
        if rec is None:
            raise LaunchError(f"unknown task {name!r}")
        return rec

    def running_tasks(self) -> list[str]:
        return [name for name, rec in self.records.items() if rec.is_running]

    def active_tasks(self) -> list[str]:
        return [name for name, rec in self.records.items() if rec.is_active]

    def all_idle(self) -> bool:
        """True when no task instance is launching, running, or stopping."""
        return not any(rec.is_active for rec in self.records.values())

    def get_resource_status(self) -> dict[str, str]:
        """Plugin op: per-node health, as the scheduler reports it."""
        return self.rm.node_status()

    # -- workflow start --------------------------------------------------------------
    def launch_workflow(self) -> None:
        """Start every autostart task with its spec-level resources.

        Launches run as independent simulated processes so tasks come up
        concurrently, like Savanna spawning the initial composition.
        """
        for name in self.workflow.autostart_tasks():
            spec = self.workflow.task(name)
            resources = self.rm.assign(name, spec.nprocs, spec.procs_per_node)
            self.engine.process(
                self.start_task_with_resources(name, resources, preassigned=True),
                name=f"launch:{name}",
            )

    # -- plugin: start ------------------------------------------------------------------
    def start_task_with_resources(
        self,
        name: str,
        resources: ResourceSet,
        user_script: str | None = None,
        params: dict[str, Any] | None = None,
        preassigned: bool = False,
    ):
        """Plugin op (generator): launch *name* on *resources*.

        Args:
            resources: explicit core assignment for the instance.
            user_script: optional user script run before launch (the
                paper's ``restart-xgc.sh``), modelled as a fixed overhead.
            params: extra task parameters (action params from policies).
            preassigned: resources were already booked in the resource
                manager by the caller.

        Returns (via StopIteration value) the RUNNING :class:`TaskInstance`.
        """
        rec = self.record(name)
        if rec.is_active:
            raise LaunchError(f"task {name!r} already active")
        if resources.total_cores <= 0:
            raise LaunchError(f"task {name!r}: empty resource set")
        if not preassigned:
            self.rm.assign_set(name, resources)
        instance = TaskInstance(
            task=name,
            workflow_id=self.workflow.workflow_id,
            incarnation=rec.incarnations,
            resources=resources,
            launch_time=self.engine.now,
        )
        rec.incarnations += 1
        rec.current = instance
        rec.history.append(instance)
        instance.transition(TaskState.LAUNCHING)
        launch_span = self.tracer.start_span(
            "wms.launch", "wms", parent=None,
            task=name, nprocs=resources.total_cores, incarnation=instance.incarnation,
        ) if self.tracer.enabled else None

        delay = self.perf.launch_latency + self.perf.per_process_launch * resources.total_cores
        if user_script:
            delay += self.perf.script_overhead
        yield self.engine.timeout(delay, name=f"launch-delay:{name}")

        if instance.stop_requested:
            # Stopped while still launching: never spawn the app.
            self._finalize(instance, exit_code=0, state=TaskState.STOPPED)
            if launch_span is not None:
                self.tracer.end_span(launch_span, outcome="aborted")
            return instance

        ctx = self._make_context(instance, user_script, params)
        app = rec.spec.make_app()
        instance.proc = self.engine.process(app.run(ctx), name=instance.instance_id)
        instance.ctx = ctx
        instance.start_time = self.engine.now
        instance.transition(TaskState.RUNNING)
        self.trace.open_span(
            name, instance.instance_id, self.engine.now, category="task",
            nprocs=resources.total_cores, incarnation=instance.incarnation,
        )
        instance.proc.callbacks.append(lambda _ev, inst=instance: self._on_proc_exit(inst))
        if launch_span is not None:
            self.tracer.end_span(launch_span, outcome="running")
            self.tracer.metrics.counter("wms.launches").inc()
            # Placement record: the utilization analysis reconstructs
            # per-node busy timelines from these (docs/observability.md).
            self.tracer.point(
                "wms.task-running", "wms",
                task=name, instance=instance.instance_id,
                incarnation=instance.incarnation, nodes=resources.as_dict(),
            )
        for cb in self._start_listeners:
            cb(instance)
        return instance

    def _make_context(
        self, instance: TaskInstance, user_script: str | None, params: dict[str, Any] | None
    ) -> TaskContext:
        rank_nodes: dict[int, str] = {}
        rank = 0
        for node_id, ncores in instance.resources.items():
            for _ in range(ncores):
                rank_nodes[rank] = node_id
                rank += 1
        merged = dict(self.record(instance.task).spec.params)
        if params:
            merged.update(params)
        if user_script:
            merged["user_script"] = user_script
        if self.checkpoint_spec is not None:
            if self.checkpoint_spec.every > 0:
                merged.setdefault("checkpoint-every", self.checkpoint_spec.every)
            if self.checkpoint_spec.resume:
                merged.setdefault("resume-from-checkpoint", 1)
        return TaskContext(
            engine=self.engine,
            hub=self.hub,
            coupling=self.coupling,
            perf=self.perf,
            rng=self.rng.stream(f"task:{instance.instance_id}"),
            workflow_id=self.workflow.workflow_id,
            task=instance.task,
            incarnation=instance.incarnation,
            nprocs=instance.nprocs,
            rank_nodes=rank_nodes,
            tight_parents=self.workflow.tight_parents(instance.task),
            params=merged,
            poll_interval=self.poll_interval,
            counters=self.counters,
            heartbeat_cb=lambda t, inst=instance: setattr(inst, "last_heartbeat", t),
        )

    # -- plugin: signals and stop -------------------------------------------------------
    def signal_term_task(self, name: str):
        """Plugin op (generator): deliver SIGTERM (graceful stop request)."""
        yield from self._signal(name, Signal.term())

    def signal_kill_task(self, name: str, code: int = 137, cause: str = "orchestrated"):
        """Plugin op (generator): deliver SIGKILL (immediate death).

        ``cause`` labels who delivered the kill (``"orchestrated"``,
        ``"watchdog"``, ``"chaos"``); deliberate orchestration kills are
        never retried, fault kills are.
        """
        yield from self._signal(name, Signal.kill(code), cause=cause)

    def _signal(self, name: str, sig: Signal, cause: str = "orchestrated"):
        rec = self.record(name)
        instance = rec.current
        if instance is None or not instance.is_active:
            return
        instance.stop_requested = True
        if instance.state == TaskState.RUNNING:
            instance.transition(TaskState.STOPPING)
        yield self.engine.timeout(self.perf.signal_latency, name=f"signal:{name}")
        if instance.proc is not None and instance.is_active:
            if sig.kind == "kill":
                instance.kill_cause = cause
            instance.proc.interrupt(sig)

    def reconfig_task(self, name: str, params: dict[str, Any]):
        """Plugin op (generator): deliver new parameters to a running task.

        The §6 extension: a finer-grained control operation than
        stop-and-relaunch.  Delivery costs one signal latency; the task
        applies the update at its next step boundary.  Returns True if a
        running instance received the update.
        """
        rec = self.record(name)
        instance = rec.current
        if instance is None or instance.state != TaskState.RUNNING or instance.ctx is None:
            return False
        yield self.engine.timeout(self.perf.signal_latency, name=f"reconfig:{name}")
        if instance.ctx is not None and instance.state == TaskState.RUNNING:
            instance.ctx.deliver_control(params)
            self.trace.point(self.engine.now, f"reconfig:{name}", category="action", params=params)
            return True
        return False

    def stop_task(self, name: str, graceful: bool = True):
        """Plugin op (generator): signal *name* and wait for it to exit.

        With ``graceful=True`` the task finishes its current timestep —
        the dominant share of DYFLOW's measured response time (§4.6).
        Returns the final instance (or None if the task was not active).
        """
        rec = self.record(name)
        instance = rec.current
        if instance is None or not instance.is_active:
            return None
        teardown_span = self.tracer.start_span(
            "wms.teardown", "wms", parent=None, task=name, graceful=graceful,
        ) if self.tracer.enabled else None
        sig = Signal.term() if graceful else Signal.kill(137)
        yield from self._signal(name, sig)
        yield from self.wait_task(name)
        if teardown_span is not None:
            self.tracer.end_span(teardown_span)
            self.tracer.metrics.counter("wms.teardowns").inc()
        return instance

    def wait_task(self, name: str):
        """Plugin op (generator): wait until *name* has no active instance."""
        rec = self.record(name)
        while rec.is_active:
            instance = rec.current
            if instance is not None and instance.proc is not None:
                if not instance.proc.triggered:
                    yield instance.proc
                else:
                    yield self.engine.timeout(0.0)
            else:
                yield self.engine.timeout(self.poll_interval)

    # -- plugin: elastic resources -------------------------------------------------------
    def request_resources(self, num_nodes: int) -> bool:
        """Plugin op: ask the scheduler for more nodes.

        On-demand allocation "is not commonplace on supercomputers"
        (paper §3) — the static allocation cannot grow, so this reports
        failure; Arbitration then falls back to victim selection.
        """
        return False

    def release_resources(self, rs: ResourceSet) -> ResourceSet:
        """Plugin op: return cores to the allocation's free pool.

        Cores released by shrinking/stopping tasks are already returned by
        the resource manager; this exists for plugin-interface parity and
        returns the free pool after the (no-op) release.
        """
        return self.rm.free()

    # -- failure handling ------------------------------------------------------------------
    def handle_node_failure(self, node_id: str) -> list[str]:
        """A node died: strip it from assignments and kill affected tasks.

        Returns the task names whose instances were killed (exit > 128).
        """
        affected = self.rm.on_node_failure(node_id)
        for name in affected:
            rec = self.record(name)
            instance = rec.current
            if instance is None or not instance.is_active:
                continue
            instance.stop_requested = True
            instance.kill_cause = "node-failure"
            if instance.state == TaskState.RUNNING:
                instance.transition(TaskState.STOPPING)
            if instance.proc is not None:
                instance.proc.interrupt(Signal.kill(137))
        if self.quarantine is not None:
            # A dead node is blamed immediately: should the scheduler
            # report it UP again, the cooldown still keeps it out.
            if self.quarantine.record_failure(node_id):
                self.trace.point(
                    self.engine.now, f"quarantine:{node_id}", category="failure"
                )
        self.trace.point(self.engine.now, f"node-failure:{node_id}", category="failure")
        self.tracer.point("wms.node_failure", "failure", node=node_id, killed=len(affected))
        return affected

    def handle_walltime_timeout(self) -> None:
        """The batch job hit its walltime: everything is killed (code 140)."""
        for name, rec in self.records.items():
            instance = rec.current
            if instance is not None and instance.is_active and instance.proc is not None:
                instance.stop_requested = True
                instance.kill_cause = "walltime"
                if instance.state == TaskState.RUNNING:
                    instance.transition(TaskState.STOPPING)
                instance.proc.interrupt(Signal.kill(140))
        self.trace.point(self.engine.now, "walltime-timeout", category="failure")

    # -- exit path ------------------------------------------------------------------------
    def _on_proc_exit(self, instance: TaskInstance) -> None:
        proc = instance.proc
        assert proc is not None
        if proc.ok:
            code = int(proc.value) if proc.value is not None else 0
        else:
            code = 1  # app crashed with an exception
        if instance.ctx is not None:
            instance.notes.update(instance.ctx.notes)
        if code != 0:
            state = TaskState.FAILED
        elif instance.stop_requested and not instance.notes.get("completed", False):
            state = TaskState.STOPPED
        else:
            state = TaskState.COMPLETED
        self._finalize(instance, exit_code=code, state=state)

    def _finalize(self, instance: TaskInstance, exit_code: int, state: TaskState) -> None:
        instance.exit_code = exit_code
        instance.end_time = self.engine.now
        if instance.state != state:
            instance.transition(state)
        self.rm.release_if_held(instance.task)
        self.coupling.deregister_everywhere(instance.task)
        # Savanna saves the exit status where the STATUS sensor reads it (§4.5).
        self.hub.filesystem.append_record(
            f"status/{self.workflow.workflow_id}/{instance.task}",
            {
                "code": exit_code,
                "time": self.engine.now,
                "incarnation": instance.incarnation,
                "rank": 0,
                "state": state.value,
            },
            mtime=self.engine.now,
        )
        try:
            self.trace.close_span(
                instance.task, instance.instance_id, self.engine.now,
                exit_code=exit_code, state=state.value,
            )
            self.tracer.point(
                "wms.task-end", "wms",
                task=instance.task, instance=instance.instance_id,
                incarnation=instance.incarnation, state=state.value,
            )
        except ValueError:
            pass  # stopped during launch: span was never opened
        if state == TaskState.COMPLETED:
            rec = self.record(instance.task)
            rec.retries_used = 0
            rec.retry_exhausted = False
        elif state == TaskState.FAILED:
            self._on_task_failure(instance)
        for cb in self._end_listeners:
            cb(instance)

    # -- recovery: blame + retry/backoff ---------------------------------------------------
    def _on_task_failure(self, instance: TaskInstance) -> None:
        """A task instance died with a nonzero code: blame and maybe retry.

        Deliberate kills (orchestrated stops, walltime) are not faults.
        Node-failure deaths already blamed the dead node inside
        :meth:`handle_node_failure`, so the surviving nodes of the
        instance are NOT blamed here — only genuinely task-level faults
        (app crash, watchdog kill, chaos kill) count against every node
        the instance ran on.
        """
        cause = instance.kill_cause
        if cause in _DELIBERATE_KILLS:
            return
        if self.quarantine is not None and cause != "node-failure":
            for node_id in instance.resources.node_ids:
                if self.quarantine.record_failure(node_id):
                    self.trace.point(
                        self.engine.now, f"quarantine:{node_id}", category="failure"
                    )
        if self.retry_policy is not None:
            self._schedule_retry(instance.task)

    def _schedule_retry(self, name: str) -> None:
        """Book a relaunch of *name* after an exponential-backoff delay."""
        rec = self.record(name)
        assert self.retry_policy is not None
        if self.retry_policy.exhausted(rec.retries_used):
            if not rec.retry_exhausted:
                rec.retry_exhausted = True
                self.trace.point(
                    self.engine.now, f"retry-exhausted:{name}", category="failure",
                    retries=rec.retries_used,
                )
            return
        attempt = rec.retries_used
        rec.retries_used += 1
        delay = self.retry_policy.delay(attempt, self.rng.stream("resilience:backoff"))
        self.trace.point(
            self.engine.now, f"retry-scheduled:{name}", category="failure",
            attempt=attempt + 1, delay=delay,
        )
        self.engine.call_after(delay, lambda: self._retry_launch(name), name=f"retry:{name}")

    def _retry_launch(self, name: str) -> None:
        """Relaunch *name* on freshly placed cores (quarantine-aware)."""
        rec = self.record(name)
        if rec.is_active or rec.retry_exhausted:
            return  # something else already resurrected or gave up on it
        last = rec.history[-1] if rec.history else None
        ncores = last.nprocs if last is not None else rec.spec.nprocs
        try:
            resources = self.rm.assign(name, ncores, rec.spec.procs_per_node)
        except AllocationError:
            try:
                resources = self.rm.assign(name, ncores)  # packed fallback
            except AllocationError:
                # No room right now (quarantine may shrink the pool):
                # burn another retry slot and wait out a longer backoff.
                self._schedule_retry(name)
                return
        self.engine.process(
            self.start_task_with_resources(name, resources, preassigned=True),
            name=f"retry:{name}",
        )
