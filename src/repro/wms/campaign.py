"""Cheetah-like campaign composition: parameter sweeps over workflows.

Cheetah "is a composition tool used to specify the workflow" and was built
for co-design studies sweeping resource-allocation trade-offs (paper §3).
:class:`Campaign` generates one :class:`WorkflowSpec` per point of a
cartesian parameter sweep, which the benchmark harness uses to run the
same workflow across machines and configurations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.wms.spec import WorkflowSpec


@dataclass(frozen=True)
class Sweep:
    """One swept parameter: a name and its values."""

    name: str
    values: tuple

    def __init__(self, name: str, values: list | tuple) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", tuple(values))
        if not self.values:
            raise ValueError(f"sweep {name!r} has no values")


@dataclass
class Campaign:
    """A named set of runs: a workflow factory applied over a sweep grid.

    Args:
        name: campaign name (used in run ids).
        factory: ``f(**params) -> WorkflowSpec`` building one run's
            workflow from a parameter point.
        sweeps: swept parameters; the grid is their cartesian product.
        fixed: parameters passed to every run unchanged.
    """

    name: str
    factory: Callable[..., WorkflowSpec]
    sweeps: list[Sweep] = field(default_factory=list)
    fixed: dict[str, Any] = field(default_factory=dict)

    def size(self) -> int:
        n = 1
        for s in self.sweeps:
            n *= len(s.values)
        return n

    def points(self) -> Iterator[dict[str, Any]]:
        """Parameter dicts for every grid point, in deterministic order."""
        if not self.sweeps:
            yield dict(self.fixed)
            return
        names = [s.name for s in self.sweeps]
        for combo in itertools.product(*(s.values for s in self.sweeps)):
            params = dict(self.fixed)
            params.update(zip(names, combo))
            yield params

    def runs(self) -> Iterator[tuple[str, dict[str, Any], WorkflowSpec]]:
        """(run_id, params, workflow) triples for the whole campaign."""
        for i, params in enumerate(self.points()):
            yield f"{self.name}.{i}", params, self.factory(**params)
