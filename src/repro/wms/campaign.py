"""Cheetah-like campaign composition: parameter sweeps over workflows.

Cheetah "is a composition tool used to specify the workflow" and was built
for co-design studies sweeping resource-allocation trade-offs (paper §3).
:class:`Campaign` generates one :class:`WorkflowSpec` per point of a
cartesian parameter sweep, which the benchmark harness uses to run the
same workflow across machines and configurations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.wms.spec import WorkflowSpec


@dataclass(frozen=True)
class Sweep:
    """One swept parameter: a name and its values."""

    name: str
    values: tuple

    def __init__(self, name: str, values: list | tuple) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", tuple(values))
        if not self.values:
            raise ValueError(f"sweep {name!r} has no values")


@dataclass
class Campaign:
    """A named set of runs: a workflow factory applied over a sweep grid.

    Args:
        name: campaign name (used in run ids).
        factory: ``f(**params) -> WorkflowSpec`` building one run's
            workflow from a parameter point.
        sweeps: swept parameters; the grid is their cartesian product.
        fixed: parameters passed to every run unchanged.
    """

    name: str
    factory: Callable[..., WorkflowSpec]
    sweeps: list[Sweep] = field(default_factory=list)
    fixed: dict[str, Any] = field(default_factory=dict)

    def size(self) -> int:
        n = 1
        for s in self.sweeps:
            n *= len(s.values)
        return n

    def points(self) -> Iterator[dict[str, Any]]:
        """Parameter dicts for every grid point, in deterministic order."""
        if not self.sweeps:
            yield dict(self.fixed)
            return
        names = [s.name for s in self.sweeps]
        for combo in itertools.product(*(s.values for s in self.sweeps)):
            params = dict(self.fixed)
            params.update(zip(names, combo))
            yield params

    def runs(self) -> Iterator[tuple[str, dict[str, Any], WorkflowSpec]]:
        """(run_id, params, workflow) triples for the whole campaign."""
        for i, params in enumerate(self.points()):
            yield f"{self.name}.{i}", params, self.factory(**params)


class CampaignRunner:
    """Executes a campaign's grid in order, with a crash-recoverable ledger.

    Each run is bracketed by ``run-started`` / ``run-completed`` journal
    records (the latter carrying the run's JSON result summary).  A
    runner pointed at the journal directory of a crashed predecessor
    *resumes* the campaign deterministically: completed runs are not
    re-executed — their journaled results are returned verbatim, marked
    ``replayed`` — and execution picks up at the first run without a
    completion record.  Reopening bumps the journal's fencing epoch, so a
    crashed-but-still-writing predecessor errors out on its next sync
    instead of corrupting the ledger.

    Args:
        campaign: the grid to execute.
        execute: ``f(run_id, params, workflow) -> dict`` running one
            point and returning a JSON-serializable result summary.
        journal: optional :class:`~repro.journal.JournalSpec`; without
            one the runner executes everything and remembers nothing.
    """

    def __init__(
        self,
        campaign: Campaign,
        execute: Callable[[str, dict[str, Any], WorkflowSpec], dict],
        journal=None,
    ) -> None:
        self.campaign = campaign
        self.execute = execute
        self.journal_spec = journal if journal is not None and journal.enabled else None
        self.results: list[dict[str, Any]] = []

    def run(self, stop_after: int | None = None) -> list[dict[str, Any]]:
        """Execute (or resume) the campaign; returns one dict per run.

        ``stop_after`` caps the number of runs *executed* this call
        (replayed completions do not count) — it models a crash between
        runs and is what the resume tests use to kill the runner at a
        chosen point.
        """
        journal = None
        completed: dict[str, dict] = {}
        if self.journal_spec is not None:
            import os

            from repro.journal import Journal, read_journal
            from repro.journal.wal import list_segment_indices

            if os.path.isdir(self.journal_spec.dir) and list_segment_indices(
                self.journal_spec.dir
            ):
                state = read_journal(self.journal_spec.dir)
                for rec in state.records:
                    if rec["kind"] == "run-completed":
                        completed[rec["run_id"]] = rec["result"]
                journal = Journal.reopen(
                    self.journal_spec.dir, spec=self.journal_spec
                )
            else:
                journal = Journal.open(self.journal_spec)
                journal.append("meta", campaign=self.campaign.name,
                               size=self.campaign.size())
        self.results = []
        executed = 0
        try:
            for run_id, params, workflow in self.campaign.runs():
                if run_id in completed:
                    self.results.append(
                        {"run_id": run_id, "params": params,
                         "result": completed[run_id], "replayed": True}
                    )
                    continue
                if stop_after is not None and executed >= stop_after:
                    break
                if journal is not None:
                    journal.append("run-started", run_id=run_id, params=params)
                result = self.execute(run_id, params, workflow)
                if journal is not None:
                    journal.append("run-completed", run_id=run_id, result=result)
                    journal.sync()
                self.results.append(
                    {"run_id": run_id, "params": params,
                     "result": result, "replayed": False}
                )
                executed += 1
        finally:
            if journal is not None:
                journal.close()
        return self.results
