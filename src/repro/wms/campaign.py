"""Cheetah-like campaign composition: parameter sweeps over workflows.

Cheetah "is a composition tool used to specify the workflow" and was built
for co-design studies sweeping resource-allocation trade-offs (paper §3).
:class:`Campaign` generates one :class:`WorkflowSpec` per point of a
cartesian parameter sweep, which the benchmark harness uses to run the
same workflow across machines and configurations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.campaign.statepoint import statepoint_id
from repro.wms.spec import WorkflowSpec


@dataclass(frozen=True)
class Sweep:
    """One swept parameter: a name and its values."""

    name: str
    values: tuple

    def __init__(self, name: str, values: list | tuple) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", tuple(values))
        if not self.values:
            raise ValueError(f"sweep {name!r} has no values")


@dataclass
class Campaign:
    """A named set of runs: a workflow factory applied over a sweep grid.

    Args:
        name: campaign name (used in run ids).
        factory: ``f(**params) -> WorkflowSpec`` building one run's
            workflow from a parameter point.
        sweeps: swept parameters; the grid is their cartesian product.
        fixed: parameters passed to every run unchanged.
        seed: optional campaign seed, folded into every run id's
            statepoint hash (runs with different seeds never share an
            id, so they never replay each other's ledger entries).
        machine: optional machine label, folded into the hash the same
            way.
    """

    name: str
    factory: Callable[..., WorkflowSpec]
    sweeps: list[Sweep] = field(default_factory=list)
    fixed: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None
    machine: str | None = None

    def size(self) -> int:
        n = 1
        for s in self.sweeps:
            n *= len(s.values)
        return n

    def points(self) -> Iterator[dict[str, Any]]:
        """Parameter dicts for every grid point, in deterministic order."""
        if not self.sweeps:
            yield dict(self.fixed)
            return
        names = [s.name for s in self.sweeps]
        for combo in itertools.product(*(s.values for s in self.sweeps)):
            params = dict(self.fixed)
            params.update(zip(names, combo))
            yield params

    def run_id(self, index: int, params: dict[str, Any]) -> str:
        """The content-addressed id of one grid point.

        ``<name>.<index>-<hash8>``: the signac-style statepoint hash of
        (params, seed, machine) namespaces the ordinal, so a resumed or
        renamed campaign can never replay the wrong cell's ledger entry
        — a point whose content changed hashes to a fresh id and simply
        misses the old completion record.
        """
        return statepoint_id(
            self.name, index, params, seed=self.seed, machine=self.machine
        )

    def runs(self) -> Iterator[tuple[str, dict[str, Any], WorkflowSpec]]:
        """(run_id, params, workflow) triples for the whole campaign."""
        for i, params in enumerate(self.points()):
            yield self.run_id(i, params), params, self.factory(**params)


class CampaignRunner:
    """Executes a campaign's grid in order, with a crash-recoverable ledger.

    Each run is bracketed by ``run-started`` / ``run-completed`` journal
    records (the latter carrying the run's JSON result summary).  A
    runner pointed at the journal directory of a crashed predecessor
    *resumes* the campaign deterministically: completed runs are not
    re-executed — their journaled results are returned verbatim, marked
    ``replayed`` — and execution picks up at the first run without a
    completion record.  Reopening bumps the journal's fencing epoch, so a
    crashed-but-still-writing predecessor errors out on its next sync
    instead of corrupting the ledger.

    A run whose ``execute`` raises is retried immediately (up to
    ``max_attempts`` total attempts, each failure journaled as
    ``run-failed``); a run that fails every attempt is *poisoned* —
    recorded in the ledger as ``run-poisoned`` and skipped, so one
    deterministically-crashing cell cannot wedge the grid, and a
    resumed runner skips it without re-executing anything.

    Args:
        campaign: the grid to execute.
        execute: ``f(run_id, params, workflow) -> dict`` running one
            point and returning a JSON-serializable result summary.
        journal: optional :class:`~repro.journal.JournalSpec`; without
            one the runner executes everything and remembers nothing.
        max_attempts: attempts per run before it is poisoned.
    """

    def __init__(
        self,
        campaign: Campaign,
        execute: Callable[[str, dict[str, Any], WorkflowSpec], dict],
        journal=None,
        max_attempts: int = 1,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.campaign = campaign
        self.execute = execute
        self.journal_spec = journal if journal is not None and journal.enabled else None
        self.max_attempts = max_attempts
        self.results: list[dict[str, Any]] = []

    def run(self, stop_after: int | None = None) -> list[dict[str, Any]]:
        """Execute (or resume) the campaign; returns one dict per run.

        ``stop_after`` caps the number of runs *executed* this call
        (replayed completions do not count) — it models a crash between
        runs and is what the resume tests use to kill the runner at a
        chosen point.
        """
        journal = None
        completed: dict[str, dict] = {}
        poisoned: set[str] = set()
        if self.journal_spec is not None:
            import os

            from repro.journal import Journal, read_journal
            from repro.journal.wal import list_segment_indices

            if os.path.isdir(self.journal_spec.dir) and list_segment_indices(
                self.journal_spec.dir
            ):
                state = read_journal(self.journal_spec.dir)
                for rec in state.records:
                    if rec["kind"] == "run-completed":
                        completed[rec["run_id"]] = rec["result"]
                    elif rec["kind"] == "run-poisoned":
                        poisoned.add(rec["run_id"])
                journal = Journal.reopen(
                    self.journal_spec.dir, spec=self.journal_spec
                )
            else:
                journal = Journal.open(self.journal_spec)
                journal.append("meta", campaign=self.campaign.name,
                               size=self.campaign.size())
        self.results = []
        executed = 0
        try:
            for run_id, params, workflow in self.campaign.runs():
                if run_id in completed:
                    self.results.append(
                        {"run_id": run_id, "params": params, "status": "completed",
                         "result": completed[run_id], "replayed": True}
                    )
                    continue
                if run_id in poisoned:
                    # Quarantined by a previous runner: never re-executed.
                    self.results.append(
                        {"run_id": run_id, "params": params, "status": "poisoned",
                         "result": None, "replayed": True}
                    )
                    continue
                if stop_after is not None and executed >= stop_after:
                    break
                if journal is not None:
                    journal.append("run-started", run_id=run_id, params=params)
                result, failures = self._attempt(journal, run_id, params, workflow)
                executed += 1
                if failures is not None:
                    if journal is not None:
                        journal.append("run-poisoned", run_id=run_id,
                                       failures=failures)
                        journal.sync()
                    self.results.append(
                        {"run_id": run_id, "params": params, "status": "poisoned",
                         "result": None, "replayed": False}
                    )
                    continue
                if journal is not None:
                    journal.append("run-completed", run_id=run_id, result=result)
                    journal.sync()
                self.results.append(
                    {"run_id": run_id, "params": params, "status": "completed",
                     "result": result, "replayed": False}
                )
        finally:
            if journal is not None:
                journal.close()
        return self.results

    def _attempt(self, journal, run_id, params, workflow):
        """Run one point with retries; (result, None) or (None, failures)."""
        failures: list[str] = []
        for attempt in range(1, self.max_attempts + 1):
            try:
                return self.execute(run_id, params, workflow), None
            except Exception as err:  # noqa: BLE001 - a failed attempt is data
                detail = f"{type(err).__name__}: {err}"
                failures.append(detail)
                if journal is not None:
                    journal.append("run-failed", run_id=run_id,
                                   attempt=attempt, error=detail)
        return None, failures
