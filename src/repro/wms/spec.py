"""Workflow specification: tasks and their couplings.

The arbitration rules in the paper distinguish *tight* dependencies (the
dependent runs concurrently with its parent and receives data via an
in-situ medium — stopping the parent forces the dependent to restart)
from *loose* ones (data via disk; the dependent runs uncoupled).  Both
live here, and the spec validates that tight couplings form a DAG.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

import networkx as nx

from repro.apps.base import IterativeApp
from repro.errors import WorkflowSpecError
from repro.util.validation import check_positive


class CouplingType(enum.Enum):
    """How a dependent task is coupled to its parent (paper §2.3).

    TIGHT — runs concurrently with the parent and receives data in situ;
    stopping or restarting the parent forces the dependent to restart.
    LOOSE — runs uncoupled, data via disk; no restart propagation.
    """

    TIGHT = "tight"
    LOOSE = "loose"


@dataclass(frozen=True)
class DependencySpec:
    """``task`` depends on ``parent`` with the given coupling type."""

    task: str
    parent: str
    type: CouplingType = CouplingType.TIGHT


@dataclass
class TaskSpec:
    """One workflow task.

    Attributes:
        name: unique task name within the workflow.
        app: the behaviour model run by each instance, or a factory
            ``() -> IterativeApp`` when instances must not share state.
        nprocs: initial process (core) count.
        procs_per_node: placement constraint (Tables 1–3 all specify one).
        autostart: start with the workflow; False = wait for a policy
            START (XGCa initially "waits in the queue", §4.3).
        params: initial task parameters, visible in the TaskContext.
    """

    name: str
    app: IterativeApp | Callable[[], IterativeApp]
    nprocs: int
    procs_per_node: int | None = None
    autostart: bool = True
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive(self.nprocs, "nprocs")
        if self.procs_per_node is not None:
            check_positive(self.procs_per_node, "procs_per_node")

    def make_app(self) -> IterativeApp:
        return self.app() if callable(self.app) else self.app


class WorkflowSpec:
    """A named set of tasks plus their dependency edges."""

    def __init__(
        self,
        workflow_id: str,
        tasks: list[TaskSpec],
        dependencies: list[DependencySpec] | None = None,
    ) -> None:
        if not tasks:
            raise WorkflowSpecError("workflow needs at least one task")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise WorkflowSpecError(f"duplicate task names in workflow {workflow_id!r}")
        self.workflow_id = workflow_id
        self.tasks: dict[str, TaskSpec] = {t.name: t for t in tasks}
        self.dependencies: list[DependencySpec] = list(dependencies or [])
        self._validate()

    def _validate(self) -> None:
        for dep in self.dependencies:
            for endpoint in (dep.task, dep.parent):
                if endpoint not in self.tasks:
                    raise WorkflowSpecError(
                        f"dependency references unknown task {endpoint!r}"
                    )
            if dep.task == dep.parent:
                raise WorkflowSpecError(f"task {dep.task!r} cannot depend on itself")
        g = nx.DiGraph()
        g.add_nodes_from(self.tasks)
        g.add_edges_from(
            (d.parent, d.task) for d in self.dependencies if d.type == CouplingType.TIGHT
        )
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise WorkflowSpecError(f"tight dependencies form a cycle: {cycle}")

    # -- queries -----------------------------------------------------------------
    def task(self, name: str) -> TaskSpec:
        spec = self.tasks.get(name)
        if spec is None:
            raise WorkflowSpecError(f"no task {name!r} in workflow {self.workflow_id!r}")
        return spec

    def task_names(self) -> list[str]:
        return list(self.tasks)

    def tight_parents(self, name: str) -> list[str]:
        """Parents *name* consumes from in situ, in declaration order."""
        return [
            d.parent
            for d in self.dependencies
            if d.task == name and d.type == CouplingType.TIGHT
        ]

    def parents(self, name: str) -> list[str]:
        return [d.parent for d in self.dependencies if d.task == name]

    def tight_dependents(self, name: str) -> list[str]:
        """Tasks tightly coupled to *name* (must restart when it does)."""
        return [
            d.task
            for d in self.dependencies
            if d.parent == name and d.type == CouplingType.TIGHT
        ]

    def transitive_tight_dependents(self, name: str) -> list[str]:
        """All downstream tight dependents, breadth-first, deduplicated.

        When Isosurface restarts, Rendering must restart too (§4.4); if
        Rendering had its own tight consumers they would follow, etc.
        """
        out: list[str] = []
        frontier = [name]
        seen = {name}
        while frontier:
            nxt: list[str] = []
            for t in frontier:
                for d in self.tight_dependents(t):
                    if d not in seen:
                        seen.add(d)
                        out.append(d)
                        nxt.append(d)
            frontier = nxt
        return out

    def autostart_tasks(self) -> list[str]:
        return [name for name, spec in self.tasks.items() if spec.autostart]

    def total_initial_procs(self) -> int:
        return sum(t.nprocs for t in self.tasks.values() if t.autostart)
