"""Configuration for the write-ahead journal."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import JournalError

FSYNC_MODES = ("off", "always", "batch")


@dataclass(frozen=True)
class JournalSpec:
    """How (and whether) the control loop journals its state.

    ``fsync`` trades durability for throughput: ``always`` syncs after
    every record, ``batch`` after every ``batch_every`` records (and on
    snapshot/close), ``off`` leaves flushing to the OS.  ``snapshot_every``
    is measured in control-loop barriers (ticks).
    """

    dir: str = "journal"
    enabled: bool = True
    fsync: str = "batch"
    batch_every: int = 64
    snapshot_every: int = 20

    def validate(self) -> None:
        if not self.dir:
            raise JournalError("journal dir must be a non-empty path")
        if self.fsync not in FSYNC_MODES:
            raise JournalError(
                f"journal fsync must be one of {FSYNC_MODES}, got {self.fsync!r}"
            )
        if self.batch_every < 1:
            raise JournalError(f"journal batch_every must be >= 1, got {self.batch_every}")
        if self.snapshot_every < 1:
            raise JournalError(
                f"journal snapshot_every must be >= 1, got {self.snapshot_every}"
            )
