"""Read side of the journal: recovery state + equivalence fingerprints."""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.journal.snapshot import SnapshotStore
from repro.journal.wal import list_segment_indices, read_segment


@dataclass
class JournalState:
    """Everything recovery needs from one journal directory."""

    directory: str
    epoch: int
    snapshot_state: dict | None = None
    snapshot_meta: dict | None = None
    records: list[dict] = field(default_factory=list)
    last_seq: int = 0
    next_segment: int = 0
    next_snapshot: int = 0
    journal_spec: dict | None = None


def read_journal(directory: str) -> JournalState:
    """Load the latest snapshot plus the ordered WAL suffix after it.

    Stale-writer debris is discarded: duplicate sequence numbers keep the
    highest epoch, and the epoch must be non-decreasing along the log.
    """
    from repro.journal.wal import current_epoch

    if not os.path.isdir(directory):
        from repro.errors import JournalError

        raise JournalError(f"journal dir {directory!r} does not exist")
    store = SnapshotStore(directory)
    framed = store.load_latest()
    snapshot_seq = framed["seq"] if framed else 0
    start_segment = framed["segment_after"] if framed else 0

    raw: list[dict] = []
    for idx in list_segment_indices(directory):
        if idx < start_segment:
            continue
        raw.extend(read_segment(os.path.join(directory, f"wal-{idx:06d}.jsonl")))

    by_seq: dict[int, dict] = {}
    for rec in raw:
        seq = rec.get("seq")
        if not isinstance(seq, int) or seq <= snapshot_seq:
            continue
        keep = by_seq.get(seq)
        if keep is None or rec.get("e", 0) > keep.get("e", 0):
            by_seq[seq] = rec
    records: list[dict] = []
    max_epoch_seen = 0
    for seq in sorted(by_seq):
        rec = by_seq[seq]
        epoch = rec.get("e", 0)
        if epoch < max_epoch_seen:
            continue  # stale writer's unfenced tail
        max_epoch_seen = max(max_epoch_seen, epoch)
        records.append(rec)

    segments = list_segment_indices(directory)
    next_segment = (segments[-1] + 1) if segments else start_segment
    journal_spec = None
    if framed is not None:
        journal_spec = framed["state"].get("journal_spec")
    for rec in records:
        if "journal_spec" in rec:
            journal_spec = rec["journal_spec"]
    return JournalState(
        directory=directory,
        epoch=current_epoch(directory),
        snapshot_state=framed["state"] if framed else None,
        snapshot_meta=(
            {k: framed[k] for k in ("index", "segment_after", "seq")} if framed else None
        ),
        records=records,
        last_seq=records[-1]["seq"] if records else snapshot_seq,
        next_segment=next_segment,
        next_snapshot=(framed["index"] + 1) if framed else 0,
        journal_spec=dict(journal_spec) if journal_spec else None,
    )


# --------------------------------------------------------------------------- #
# equivalence fingerprints
# --------------------------------------------------------------------------- #
def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=repr)


def scenario_fingerprint(result, *, exclude_categories: tuple[str, ...] = ("journal",)) -> str:
    """SHA-256 over everything observable about a :class:`ScenarioResult`.

    Two runs with equal fingerprints made bit-identical decisions: same
    makespan, same trace spans and points, same plans (including per-op
    execution times), same metric history, same per-task summary.  Trace
    categories in *exclude_categories* (crash/resume bookkeeping points)
    are ignored so a recovered run can match its uninterrupted reference.
    """
    spans = [
        [s.track, s.label, s.start, s.end, s.category, s.meta]
        for s in result.trace.spans
        if s.category not in exclude_categories
    ]
    points = [
        [p.time, p.label, p.category, p.meta]
        for p in result.trace.points
        if p.category not in exclude_categories
    ]
    payload = {
        "makespan": result.makespan,
        "spans": spans,
        "points": points,
        "plans": [p.to_dict() for p in result.plans],
        "metric_history": [u.to_dict() for u in result.metric_history],
        "summary": result.summary_rows() if result.launcher is not None else [],
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()
