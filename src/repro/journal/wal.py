"""Append-only JSONL write-ahead log with CRC-guarded records.

On-disk layout of a journal directory::

    EPOCH             current writer epoch (fencing token, ASCII int)
    wal-000000.jsonl  segment 0 (rotated at every snapshot)
    wal-000001.jsonl  ...

Each line is ``<crc32 hex8> <compact json>``; the CRC covers the JSON
bytes.  A torn final line (partial write at crash) is tolerated and
dropped on read; a corrupt line *followed by* valid data is reported as
corruption, since an append-only log can only tear at the tail.

Fencing: a writer claims the journal by atomically bumping ``EPOCH``.
Before data reaches disk (fsync / rotate / close) the writer re-reads
``EPOCH``; if another writer has claimed a higher epoch the stale writer
gets :class:`~repro.errors.StaleWriterError` instead of silently
interleaving records.
"""

from __future__ import annotations

import json
import os
import zlib

from repro.errors import JournalError, StaleWriterError

EPOCH_FILE = "EPOCH"
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".jsonl"


def segment_path(directory: str, index: int) -> str:
    return os.path.join(directory, f"{SEGMENT_PREFIX}{index:06d}{SEGMENT_SUFFIX}")


def list_segment_indices(directory: str) -> list[int]:
    """Sorted indices of the WAL segments present in *directory*."""
    out = []
    for name in os.listdir(directory):
        if name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX):
            body = name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
            try:
                out.append(int(body))
            except ValueError:
                continue
    return sorted(out)


def current_epoch(directory: str) -> int:
    """The epoch on disk; 0 when the journal has never been claimed."""
    path = os.path.join(directory, EPOCH_FILE)
    try:
        with open(path, encoding="utf-8") as fh:
            return int(fh.read().strip() or "0")
    except FileNotFoundError:
        return 0


def claim_epoch(directory: str) -> int:
    """Atomically bump the epoch and return the new (claimed) value."""
    os.makedirs(directory, exist_ok=True)
    epoch = current_epoch(directory) + 1
    path = os.path.join(directory, EPOCH_FILE)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(f"{epoch}\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return epoch


def encode_record(record: dict) -> str:
    body = json.dumps(record, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {body}\n"


def _decode_line(line: str) -> dict | None:
    """Parse one WAL line; None when the line fails its CRC or framing."""
    if " " not in line:
        return None
    crc_hex, body = line.split(" ", 1)
    if len(crc_hex) != 8:
        return None
    try:
        expect = int(crc_hex, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != expect:
        return None
    try:
        rec = json.loads(body)
    except ValueError:
        return None
    return rec if isinstance(rec, dict) else None


def read_segment(path: str) -> list[dict]:
    """All valid records of one segment, tolerating a torn final line."""
    records: list[dict] = []
    bad_at: int | None = None
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        rec = _decode_line(line)
        if rec is None:
            bad_at = i
            break
        records.append(rec)
    if bad_at is not None:
        # Only the tail may legitimately tear in an append-only log.
        if any(rest.strip() for rest in lines[bad_at + 1 :]):
            raise JournalError(
                f"corrupt WAL record mid-segment at {path}:{bad_at + 1}"
            )
    return records


class WalWriter:
    """Appends CRC-framed records to the current segment of a journal."""

    def __init__(
        self,
        directory: str,
        epoch: int,
        segment_index: int = 0,
        fsync: str = "batch",
        batch_every: int = 64,
    ) -> None:
        self.directory = directory
        self.epoch = epoch
        self.segment_index = segment_index
        self.fsync_mode = fsync
        self.batch_every = max(1, int(batch_every))
        self.fsync_count = 0
        self.appended = 0
        self._since_sync = 0
        self._closed = False
        self._fh = open(segment_path(directory, segment_index), "a", encoding="utf-8")

    # -- fencing ------------------------------------------------------------
    def _check_fence(self) -> None:
        on_disk = current_epoch(self.directory)
        if on_disk > self.epoch:
            raise StaleWriterError(
                f"journal {self.directory!r} claimed by epoch {on_disk} "
                f"(this writer is epoch {self.epoch})"
            )

    # -- writing ------------------------------------------------------------
    def append(self, record: dict) -> int:
        """Write one record; returns the encoded size in bytes."""
        if self._closed:
            raise JournalError("append on closed WAL writer")
        line = encode_record(record)
        self._fh.write(line)
        self.appended += 1
        self._since_sync += 1
        if self.fsync_mode == "always":
            self.sync()
        elif self.fsync_mode == "batch" and self._since_sync >= self.batch_every:
            self.sync()
        return len(line)

    def sync(self) -> None:
        """Fence-check, then force the buffered records to disk."""
        self._check_fence()
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.fsync_count += 1
        self._since_sync = 0

    def rotate(self) -> int:
        """Seal the current segment and start the next one."""
        self.sync()
        self._fh.close()
        self.segment_index += 1
        self._fh = open(
            segment_path(self.directory, self.segment_index), "a", encoding="utf-8"
        )
        return self.segment_index

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.sync()
        finally:
            self._fh.close()
