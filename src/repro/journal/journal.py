"""The journal facade: sequenced WAL appends + periodic snapshots.

One :class:`Journal` instance is one *writer epoch* over a journal
directory.  ``Journal.open`` starts a fresh journal; ``Journal.reopen``
claims an existing one for recovery (bumping the fencing epoch so any
surviving stale writer errors out on its next sync).  All appends get a
monotonic sequence number that survives segment rotation and reopen.

Wall-clock cost flows into the telemetry registry when one is supplied:
``journal.append.latency`` (seconds per append), ``journal.fsync.count``,
and ``journal.snapshot.bytes``.
"""

from __future__ import annotations

import time as _time
from dataclasses import asdict

from repro.errors import JournalError
from repro.journal.records import make_record
from repro.journal.snapshot import SnapshotStore
from repro.journal.spec import JournalSpec
from repro.journal.wal import WalWriter, claim_epoch, list_segment_indices

# Snapshot sizes are bytes, not seconds: log-spaced bounds 256 B – 256 MB.
SNAPSHOT_BYTE_BUCKETS: tuple[float, ...] = tuple(256.0 * 4.0**e for e in range(11))


class Journal:
    """Writer-side handle on a journal directory (one fencing epoch)."""

    def __init__(
        self,
        spec: JournalSpec,
        *,
        metrics=None,
        _segment_index: int = 0,
        _start_seq: int = 0,
        _snapshot_index: int = 0,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.metrics = metrics
        self.epoch = claim_epoch(spec.dir)
        self._writer = WalWriter(
            spec.dir,
            epoch=self.epoch,
            segment_index=_segment_index,
            fsync=spec.fsync,
            batch_every=spec.batch_every,
        )
        self._store = SnapshotStore(spec.dir)
        self._seq = _start_seq
        self._snapshot_index = _snapshot_index
        self._fsyncs_seen = 0
        self._closed = False

    # -- constructors --------------------------------------------------------
    @classmethod
    def open(cls, spec: JournalSpec, metrics=None) -> "Journal":
        """Start a fresh journal; the directory must hold no WAL segments."""
        import os

        os.makedirs(spec.dir, exist_ok=True)
        if list_segment_indices(spec.dir):
            raise JournalError(
                f"journal dir {spec.dir!r} already holds WAL segments; "
                "use Journal.reopen() to recover it"
            )
        return cls(spec, metrics=metrics)

    @classmethod
    def reopen(cls, directory: str, spec: JournalSpec | None = None, metrics=None) -> "Journal":
        """Claim an existing journal for recovery (next epoch, fresh segment).

        Appends resume in a *new* segment — never after a possibly-torn
        tail — and the sequence counter continues past the last durable
        record.  The persisted spec (from the latest snapshot or
        meta/resume record) is reused unless *spec* overrides it.
        """
        from repro.journal.resume import read_journal

        js = read_journal(directory)
        if spec is None:
            persisted = js.journal_spec or {}
            persisted.pop("dir", None)
            spec = JournalSpec(dir=directory, **persisted)
        journal = cls(
            spec,
            metrics=metrics,
            _segment_index=js.next_segment,
            _start_seq=js.last_seq,
            _snapshot_index=js.next_snapshot,
        )
        journal.append("resume", journal_spec=asdict(spec))
        return journal

    # -- writing -------------------------------------------------------------
    @property
    def seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._seq

    def append(self, kind: str, **payload) -> int:
        """Append one record; returns its sequence number."""
        if self._closed:
            raise JournalError("append on closed journal")
        t0 = _time.perf_counter()  # lint: ignore[DY501] -- telemetry latency shim
        rec = make_record(self._seq + 1, self.epoch, kind, payload)
        self._writer.append(rec)
        self._seq += 1
        if self.metrics is not None:
            self.metrics.histogram("journal.append.latency").observe(
                _time.perf_counter() - t0  # lint: ignore[DY501]
            )
            new_syncs = self._writer.fsync_count - self._fsyncs_seen
            if new_syncs:
                self.metrics.counter("journal.fsync.count").inc(new_syncs)
                self._fsyncs_seen = self._writer.fsync_count
        return self._seq

    def snapshot(self, state: dict) -> int:
        """Compact: seal the current segment and persist *state*.

        Returns the snapshot index.  The snapshot covers every record up
        to the current sequence number; older segments and snapshots are
        deleted once the checkpoint pointer has moved.
        """
        if self._closed:
            raise JournalError("snapshot on closed journal")
        index = self._snapshot_index
        self._snapshot_index += 1
        segment_after = self._writer.rotate()
        full = dict(state)
        full["journal_spec"] = asdict(self.spec)
        size = self._store.write(index, full, segment_after=segment_after, seq=self._seq)
        self.append("snapshot-ref", index=index, bytes=size)
        if self.metrics is not None:
            self.metrics.histogram(
                "journal.snapshot.bytes", buckets=SNAPSHOT_BYTE_BUCKETS
            ).observe(size)
            new_syncs = self._writer.fsync_count - self._fsyncs_seen
            if new_syncs:
                self.metrics.counter("journal.fsync.count").inc(new_syncs)
                self._fsyncs_seen = self._writer.fsync_count
        return index

    def sync(self) -> None:
        """Force buffered records to disk (fence-checked)."""
        self._writer.sync()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._writer.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def fsync_count(self) -> int:
        return self._writer.fsync_count
