"""Snapshot store: periodic compaction points for the WAL.

A snapshot is the full runtime state at one barrier, written as a single
CRC-framed JSON line.  The ``CHECKPOINT`` pointer file names the latest
durable snapshot and the WAL segment that starts after it; recovery loads
the snapshot and replays only that segment onward.  Older segments and
snapshots are deleted (compaction) once the pointer has moved past them.
"""

from __future__ import annotations

import json
import os

from repro.errors import JournalError
from repro.journal.wal import (
    _decode_line,
    encode_record,
    list_segment_indices,
    segment_path,
)

CHECKPOINT_FILE = "CHECKPOINT"
SNAPSHOT_PREFIX = "snapshot-"
SNAPSHOT_SUFFIX = ".json"


def snapshot_path(directory: str, index: int) -> str:
    return os.path.join(directory, f"{SNAPSHOT_PREFIX}{index:06d}{SNAPSHOT_SUFFIX}")


class SnapshotStore:
    """Writes snapshots + the checkpoint pointer, and compacts behind them."""

    def __init__(self, directory: str, compact: bool = True) -> None:
        self.directory = directory
        self.compact = compact

    # -- writing ------------------------------------------------------------
    def write(self, index: int, state: dict, segment_after: int, seq: int) -> int:
        """Persist snapshot *index*; returns its size in bytes.

        *segment_after* is the WAL segment whose records postdate this
        snapshot; *seq* is the last record sequence number it covers.
        """
        framed = {"index": index, "segment_after": segment_after, "seq": seq,
                  "state": state}
        line = encode_record(framed)
        path = snapshot_path(self.directory, index)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._write_pointer({"snapshot": index, "segment": segment_after, "seq": seq})
        if self.compact:
            self._compact(index, segment_after)
        return len(line)

    def _write_pointer(self, pointer: dict) -> None:
        path = os.path.join(self.directory, CHECKPOINT_FILE)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(pointer, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def _compact(self, snapshot_index: int, segment_after: int) -> None:
        for idx in list_segment_indices(self.directory):
            if idx < segment_after:
                os.unlink(segment_path(self.directory, idx))
        for name in os.listdir(self.directory):
            if name.startswith(SNAPSHOT_PREFIX) and name.endswith(SNAPSHOT_SUFFIX):
                body = name[len(SNAPSHOT_PREFIX) : -len(SNAPSHOT_SUFFIX)]
                try:
                    idx = int(body)
                except ValueError:
                    continue
                if idx < snapshot_index:
                    os.unlink(os.path.join(self.directory, name))

    # -- reading ------------------------------------------------------------
    def pointer(self) -> dict | None:
        path = os.path.join(self.directory, CHECKPOINT_FILE)
        try:
            with open(path, encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None

    def load_latest(self) -> dict | None:
        """The latest durable snapshot's framed payload, or None."""
        pointer = self.pointer()
        if pointer is None:
            return None
        path = snapshot_path(self.directory, pointer["snapshot"])
        with open(path, encoding="utf-8") as fh:
            line = fh.readline().strip()
        framed = _decode_line(line)
        if framed is None:
            raise JournalError(f"corrupt snapshot file {path}")
        return framed
