"""Write-ahead journal + snapshots: crash recovery for the control loop.

See ``docs/crash-recovery.md`` for the record taxonomy, fencing
semantics, and the resume walkthrough.
"""

from repro.journal.journal import Journal
from repro.journal.ledger import AppliedOpsLedger
from repro.journal.records import RECORD_KINDS, make_record
from repro.journal.resume import JournalState, read_journal, scenario_fingerprint
from repro.journal.snapshot import SnapshotStore
from repro.journal.spec import FSYNC_MODES, JournalSpec
from repro.journal.wal import WalWriter, claim_epoch, current_epoch, read_segment

__all__ = [
    "AppliedOpsLedger",
    "FSYNC_MODES",
    "Journal",
    "JournalSpec",
    "JournalState",
    "RECORD_KINDS",
    "SnapshotStore",
    "WalWriter",
    "claim_epoch",
    "current_epoch",
    "make_record",
    "read_journal",
    "read_segment",
    "scenario_fingerprint",
]
