"""Idempotent-actuation ledger.

Actuation writes ``op-issued`` *before* applying a plan op and
``op-completed`` after it took effect, both keyed by the op's idempotency
key (``plan_id:index:op:task``).  On resume the ledger classifies each op
of an in-flight plan:

``completed``  the effect is durable — skip, never double-apply;
``issued``     the crash fell inside the issue/apply window — probe the
               launcher for the effect before deciding;
``unseen``     the op never started — apply normally.
"""

from __future__ import annotations


class AppliedOpsLedger:
    """What the WAL proves about each plan op's actuation progress."""

    def __init__(self) -> None:
        self.issued: dict[str, dict] = {}
        self.completed: set[str] = set()

    @classmethod
    def from_records(cls, records: list[dict]) -> "AppliedOpsLedger":
        ledger = cls()
        for rec in records:
            kind = rec.get("kind")
            if kind == "op-issued":
                ledger.issued[rec["op_key"]] = rec
            elif kind == "op-completed":
                ledger.completed.add(rec["op_key"])
        return ledger

    def status(self, op_key: str) -> str:
        if op_key in self.completed:
            return "completed"
        if op_key in self.issued:
            return "issued"
        return "unseen"

    def issued_record(self, op_key: str) -> dict | None:
        return self.issued.get(op_key)
