"""The journal record taxonomy.

Every WAL record is one JSON object with three framing fields — ``seq``
(monotonic across segments), ``kind`` (one of :data:`RECORD_KINDS`), and
``e`` (the writer's epoch) — plus kind-specific payload fields.  The
kinds split into three groups:

*replayed*   records whose side effects are re-executed on resume:
             ``obs`` (an envelope delivered to the MonitorServer),
             ``task-restart`` (sensor/window resets on task restart),
             ``barrier`` (a Decision tick; also carries the controller
             state used when it is the last barrier before a crash).

*restored*   records whose payload is state, applied wholesale:
             ``plan`` / ``plan-done`` (ActionPlan creation + execution
             patch), ``snapshot-ref`` (pointer to a snapshot file).

*bookkeeping* ``meta``, ``resume``, ``crash``, ``op-issued`` /
             ``op-completed`` (the idempotent-actuation ledger),
             ``task-checkpoint`` (threaded-runtime step progress, used
             to restart live mini-apps without redoing work), and the
             the campaign-level ``run-started`` / ``run-completed`` /
             ``run-failed`` / ``run-poisoned``, and the tenant-service
             cell ledger (``cell-started`` / ``cell-completed`` /
             ``cell-poisoned``).
"""

from __future__ import annotations

RECORD_KINDS = (
    "meta",          # journal/run identity: workflow id, config fingerprint
    "resume",        # a new epoch took over this journal
    "obs",           # monitor envelope delivered to the server
    "task-restart",  # task (re)started: sensor epochs / history windows reset
    "task-checkpoint",  # threaded runtime: a live task finished a step
    "barrier",       # one control-loop tick completed; carries controller state
    "plan",          # arbitration produced a plan (full serialized ActionPlan)
    "plan-done",     # actuation finished a plan (execution-time patch)
    "op-issued",     # actuation is about to apply one op (idempotency key)
    "op-completed",  # that op took effect
    "snapshot-ref",  # compaction point: snapshot file + first seq it covers
    "crash",         # controller stopped at this barrier (orchestrator_crash)
    "run-started",   # campaign: one run began
    "run-completed", # campaign: one run finished (carries its result summary)
    "run-failed",    # campaign: one run attempt raised (attempt counter)
    "run-poisoned",  # campaign: run quarantined after repeated failures
    "cell-started",  # tenant service: one cell began on its partition
    "cell-completed",  # tenant service: cell finished (carries its result)
    "cell-poisoned",   # tenant service: cell quarantined after max attempts
    "fleet-barrier",   # campaign fleet plane: clock + rollup/breaker/SLO state
)

_KIND_SET = frozenset(RECORD_KINDS)


def make_record(seq: int, epoch: int, kind: str, payload: dict) -> dict:
    """Frame *payload* as a journal record; ``seq``/``kind``/``e`` win."""
    if kind not in _KIND_SET:
        raise ValueError(f"unknown journal record kind {kind!r}")
    rec = dict(payload)
    rec["seq"] = seq
    rec["kind"] = kind
    rec["e"] = epoch
    return rec
