"""Tiny argument-validation helpers with consistent error messages."""

from __future__ import annotations

from collections.abc import Collection
from typing import Any


def check_positive(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_nonneg(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in(value: Any, options: Collection[Any], name: str) -> None:
    """Raise ``ValueError`` unless ``value in options``."""
    if value not in options:
        raise ValueError(f"{name} must be one of {sorted(map(str, options))}, got {value!r}")


def check_type(value: Any, types: type | tuple[type, ...], name: str) -> None:
    """Raise ``TypeError`` unless ``isinstance(value, types)``."""
    if not isinstance(value, types):
        expected = types.__name__ if isinstance(types, type) else "/".join(t.__name__ for t in types)
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
