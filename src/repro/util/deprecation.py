"""Warn-once deprecation shims.

Renamed parameters and methods keep working for one release, emitting a
single :class:`DeprecationWarning` per process no matter how many call
sites still use the old name.  Tests reset the warned set between cases
via :func:`reset_warned`.
"""

from __future__ import annotations

import warnings

_warned: set[str] = set()


def warn_once(key: str, message: str) -> None:
    """Emit *message* as a DeprecationWarning the first time *key* is seen."""
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def reset_warned() -> None:
    """Forget which deprecations have fired (test isolation hook)."""
    _warned.clear()
