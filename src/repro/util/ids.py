"""Deterministic id generation.

The simulator must be reproducible run-to-run, so ids are monotonically
increasing counters per prefix rather than UUIDs.
"""

from __future__ import annotations

from collections import defaultdict


class IdGenerator:
    """Produce ids of the form ``<prefix>-<n>`` with a per-prefix counter.

    >>> gen = IdGenerator()
    >>> gen.next("task")
    'task-0'
    >>> gen.next("task")
    'task-1'
    >>> gen.next("node")
    'node-0'
    """

    def __init__(self) -> None:
        self._counters: defaultdict[str, int] = defaultdict(int)

    def next(self, prefix: str) -> str:
        """Return the next id for *prefix* and advance the counter."""
        n = self._counters[prefix]
        self._counters[prefix] = n + 1
        return f"{prefix}-{n}"

    def peek(self, prefix: str) -> int:
        """Return the counter value that the next id for *prefix* would use."""
        return self._counters[prefix]

    def reset(self, prefix: str | None = None) -> None:
        """Reset one prefix counter, or all counters if *prefix* is None."""
        if prefix is None:
            self._counters.clear()
        else:
            self._counters.pop(prefix, None)

    def state_dict(self) -> dict[str, int]:
        return dict(self._counters)

    def load_state_dict(self, state: dict[str, int]) -> None:
        self._counters.clear()
        for prefix, n in state.items():
            self._counters[prefix] = int(n)
