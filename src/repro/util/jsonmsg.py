"""JSON message envelopes and out-of-order filtering.

The DYFLOW implementation exchanges JSON-formatted messages between the
Monitor clients, the Monitor server, Decision and Arbitration (paper §3,
Fig. 2).  The Monitor server "filters the out of order messages from the
client(s)" and Decision "screens incoming sensor messages for out-of-order
updates" — both behaviours live here so every stage shares one protocol.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Envelope:
    """A routable JSON message.

    Attributes:
        kind: message type, e.g. ``"sensor-update"``, ``"decision"``,
            ``"plan"``, ``"status"``.
        sender: logical id of the sending component.
        seq: per-sender monotonically increasing sequence number.
        time: send timestamp (simulated or wall-clock seconds).
        payload: JSON-serializable body.
    """

    kind: str
    sender: str
    seq: int
    time: float
    payload: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialize to a compact JSON string."""
        return json.dumps(
            {
                "kind": self.kind,
                "sender": self.sender,
                "seq": self.seq,
                "time": self.time,
                "payload": self.payload,
            },
            separators=(",", ":"),
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Envelope":
        """Parse an envelope produced by :meth:`to_json`."""
        obj = json.loads(text)
        return cls(
            kind=obj["kind"],
            sender=obj["sender"],
            seq=int(obj["seq"]),
            time=float(obj["time"]),
            payload=obj.get("payload", {}),
        )


class SequenceTracker:
    """Allocates per-sender sequence numbers."""

    def __init__(self) -> None:
        self._next: dict[str, int] = {}

    def next_seq(self, sender: str) -> int:
        seq = self._next.get(sender, 0)
        self._next[sender] = seq + 1
        return seq

    def stamp(self, kind: str, sender: str, time: float, payload: dict[str, Any] | None = None) -> Envelope:
        """Build an envelope with the next sequence number for *sender*."""
        return Envelope(
            kind=kind,
            sender=sender,
            seq=self.next_seq(sender),
            time=time,
            payload=payload or {},
        )

    def state_dict(self) -> dict[str, int]:
        return dict(self._next)

    def load_state_dict(self, state: dict[str, int]) -> None:
        self._next = {k: int(v) for k, v in state.items()}


class OutOfOrderFilter:
    """Drop stale messages, per sender.

    A message is *stale* when its sequence number is not greater than the
    highest already accepted from the same sender.  When a sender restarts
    (e.g. a Monitor client restarted along with its tasks), call
    :meth:`reset` so the new epoch's numbering is accepted.
    """

    def __init__(self) -> None:
        self._highest: dict[str, int] = {}
        self._dropped = 0
        self._accepted = 0

    @property
    def dropped(self) -> int:
        """Number of messages rejected as out-of-order so far."""
        return self._dropped

    @property
    def accepted(self) -> int:
        """Number of messages accepted so far."""
        return self._accepted

    def accept(self, env: Envelope) -> bool:
        """Return True and record *env* if it is in order; else drop it."""
        highest = self._highest.get(env.sender)
        if highest is not None and env.seq <= highest:
            self._dropped += 1
            return False
        self._highest[env.sender] = env.seq
        self._accepted += 1
        return True

    def reset(self, sender: str) -> None:
        """Forget the sequence history of *sender* (sender restarted)."""
        self._highest.pop(sender, None)

    def senders(self) -> tuple[str, ...]:
        """Every sender with recorded sequence history, insertion-ordered."""
        return tuple(self._highest)

    def reset_all(self) -> None:
        """Forget every sender's epoch; the drop/accept counters persist."""
        for sender in self.senders():
            self.reset(sender)

    def state_dict(self) -> dict[str, Any]:
        return {
            "highest": dict(self._highest),
            "dropped": self._dropped,
            "accepted": self._accepted,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self._highest = {k: int(v) for k, v in state["highest"].items()}
        self._dropped = int(state["dropped"])
        self._accepted = int(state["accepted"])


class DedupFilter:
    """Exactly-once admission over a retransmitting, reordering transport.

    Unlike :class:`OutOfOrderFilter` — which rejects any regression and
    therefore also rejects retransmitted copies of envelopes that never
    arrived — this filter accepts each (sender, seq) exactly once, in
    any order.  Per sender it keeps a contiguous *floor* (every seq at
    or below it was seen) plus the sparse set of seqs seen above it; the
    floor advances as gaps fill in, so with acks/retransmits keeping
    loss bounded the set stays tiny.  Same interface as
    :class:`OutOfOrderFilter` so :class:`~repro.core.monitor.MonitorServer`
    can host either.
    """

    def __init__(self) -> None:
        self._floor: dict[str, int] = {}
        self._seen: dict[str, set[int]] = {}
        self._dropped = 0
        self._accepted = 0

    @property
    def dropped(self) -> int:
        """Number of messages rejected so far (all of them duplicates)."""
        return self._dropped

    @property
    def duplicates(self) -> int:
        """Alias of :attr:`dropped`: every rejection is a duplicate."""
        return self._dropped

    @property
    def accepted(self) -> int:
        return self._accepted

    def accept(self, env: Envelope) -> bool:
        """Return True the first time (sender, seq) is seen; else drop."""
        floor = self._floor.get(env.sender, -1)
        seen = self._seen.setdefault(env.sender, set())
        if env.seq <= floor or env.seq in seen:
            self._dropped += 1
            return False
        seen.add(env.seq)
        while floor + 1 in seen:
            floor += 1
            seen.discard(floor)
        self._floor[env.sender] = floor
        self._accepted += 1
        return True

    def reset(self, sender: str) -> None:
        """Forget *sender*'s history (the sender renumbered from zero)."""
        self._floor.pop(sender, None)
        self._seen.pop(sender, None)

    def senders(self) -> tuple[str, ...]:
        return tuple(self._floor)

    def reset_all(self) -> None:
        for sender in self.senders():
            self.reset(sender)

    def state_dict(self) -> dict[str, Any]:
        return {
            "floor": dict(self._floor),
            "seen": {k: sorted(v) for k, v in self._seen.items()},
            "dropped": self._dropped,
            "accepted": self._accepted,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self._floor = {k: int(v) for k, v in state["floor"].items()}
        self._seen = {k: {int(s) for s in v} for k, v in state["seen"].items()}
        self._dropped = int(state["dropped"])
        self._accepted = int(state["accepted"])
