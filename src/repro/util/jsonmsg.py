"""JSON message envelopes and out-of-order filtering.

The DYFLOW implementation exchanges JSON-formatted messages between the
Monitor clients, the Monitor server, Decision and Arbitration (paper §3,
Fig. 2).  The Monitor server "filters the out of order messages from the
client(s)" and Decision "screens incoming sensor messages for out-of-order
updates" — both behaviours live here so every stage shares one protocol.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from json.encoder import encode_basestring_ascii as _esc
from typing import Any

# One reused encoder instance: json.dumps() rebuilds the encoder (and its
# markers/buffers) on every call; at 10k-task scale the journal serializes
# tens of thousands of envelopes per run.
_ENC = json.JSONEncoder(separators=(",", ":"), sort_keys=True)
_INF = float("inf")

# Pre-tokenized field table for the sensor-update hot path: the update
# dicts produced by MetricUpdate.to_dict() always carry exactly these
# keys, so the canonical (sort_keys) serialization can be assembled from
# constant fragments instead of a generic dict walk.  Kept in canonical
# sorted order; the tokens embed the quoting and separators.
_UPDATE_FIELDS = (
    "granularity", "key", "sensor_id", "step", "task",
    "time", "value", "var", "workflow_id",
)
_UPDATE_TOKENS = tuple(
    ("{" if i == 0 else ",") + f'"{name}":' for i, name in enumerate(_UPDATE_FIELDS)
)
_UPDATE_KEYSET = frozenset(_UPDATE_FIELDS)


class _CodecStats:
    """Envelope-codec cache effectiveness counters.

    Purely observational (the core profiler samples them); they never
    influence encoding, so resetting them is always safe.
    """

    __slots__ = ("encode_hits", "encode_misses")

    def __init__(self) -> None:
        self.encode_hits = 0
        self.encode_misses = 0


_CODEC_STATS = _CodecStats()


def codec_stats() -> dict[str, int]:
    """Current envelope-codec cache counters (hits = memoized to_json)."""
    return {
        "encode_hits": _CODEC_STATS.encode_hits,
        "encode_misses": _CODEC_STATS.encode_misses,
    }


def reset_codec_stats() -> None:
    _CODEC_STATS.encode_hits = 0
    _CODEC_STATS.encode_misses = 0


def _scalar(value: Any) -> str:
    """Canonical JSON for one scalar/primitive (matches json.dumps)."""
    if isinstance(value, str):
        return _esc(value)
    if value is True:
        return "true"
    if value is False:
        return "false"
    if value is None:
        return "null"
    if isinstance(value, float):
        # float.__repr__ matches json.dumps for finite values; inf/nan
        # need the encoder's Infinity/NaN spellings.
        return repr(value) if value == value and value not in (_INF, -_INF) else _ENC.encode(value)
    if isinstance(value, int):
        return str(value)
    return _ENC.encode(value)


def _encode_update(d: dict[str, Any], parts: list[str]) -> bool:
    """Append the canonical encoding of one update dict to *parts*.

    Returns False (leaving *parts* for the caller to truncate) when the
    dict does not match the pre-tokenized field table.
    """
    if len(d) != len(_UPDATE_FIELDS) or d.keys() != _UPDATE_KEYSET:
        return False
    for token, name in zip(_UPDATE_TOKENS, _UPDATE_FIELDS):
        parts.append(token)
        value = d[name]
        if name == "key":
            # MetricUpdate.to_dict() emits the group key as a list of
            # scalars; anything else is not the hot-path shape.
            if not isinstance(value, list):
                return False
            parts.append("[" + ",".join(_scalar(v) for v in value) + "]")
        else:
            parts.append(_scalar(value))
    parts.append("}")
    return True


@dataclass(frozen=True)
class Envelope:
    """A routable JSON message.

    Attributes:
        kind: message type, e.g. ``"sensor-update"``, ``"decision"``,
            ``"plan"``, ``"status"``.
        sender: logical id of the sending component.
        seq: per-sender monotonically increasing sequence number.
        time: send timestamp (simulated or wall-clock seconds).
        payload: JSON-serializable body.

    Envelopes are immutable once stamped — treat ``payload`` as frozen
    too: :meth:`to_json` memoizes its result, and transports cache the
    decoded form (:meth:`attach_decoded`) across retransmitted copies.
    """

    kind: str
    sender: str
    seq: int
    time: float
    payload: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialize to the canonical compact JSON string (memoized).

        Sensor-update payloads take a pre-tokenized fast path that
        assembles the same bytes ``json.dumps(..., sort_keys=True)``
        would produce without walking generic dicts; everything else
        goes through one shared :class:`json.JSONEncoder`.
        """
        cached = getattr(self, "_json_cache", None)
        if cached is not None:
            _CODEC_STATS.encode_hits += 1
            return cached
        _CODEC_STATS.encode_misses += 1
        text = self._encode()
        object.__setattr__(self, "_json_cache", text)
        return text

    def _encode(self) -> str:
        payload = self.payload
        updates = payload.get("updates") if len(payload) == 1 else None
        if isinstance(updates, list):
            parts = [
                '{"kind":', _esc(self.kind),
                ',"payload":{"updates":[',
            ]
            n = len(parts)
            ok = True
            for i, d in enumerate(updates):
                if i:
                    parts.append(",")
                if not isinstance(d, dict) or not _encode_update(d, parts):
                    ok = False
                    break
            if ok:
                # Canonical key order: kind < payload < sender < seq < time.
                parts.append(
                    f']}},"sender":{_esc(self.sender)},"seq":{self.seq},'
                    f'"time":{_scalar(self.time)}}}'
                )
                return "".join(parts)
            del parts[n:]
        return _ENC.encode(
            {
                "kind": self.kind,
                "sender": self.sender,
                "seq": self.seq,
                "time": self.time,
                "payload": self.payload,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "Envelope":
        """Parse an envelope produced by :meth:`to_json`."""
        obj = json.loads(text)
        return cls(
            kind=obj["kind"],
            sender=obj["sender"],
            seq=int(obj["seq"]),
            time=float(obj["time"]),
            payload=obj.get("payload", {}),
        )

    # -- decoded-object cache ----------------------------------------------------
    # A sender that stamps an envelope from in-memory objects can attach
    # them so an in-process receiver skips re-decoding the payload dicts
    # (repro.core.events.MetricUpdate round-trips to_dict/from_dict
    # exactly, so sharing the originals is bit-identical).  The cache is
    # advisory: envelopes reconstructed via from_json (journal replay,
    # fabric resume) simply have none and the receiver falls back.

    def attach_decoded(self, objs: tuple) -> None:
        """Cache the decoded form of this envelope's payload."""
        object.__setattr__(self, "_decoded_cache", objs)

    def decoded(self) -> tuple | None:
        """The cached decoded payload objects, or None if never attached."""
        return getattr(self, "_decoded_cache", None)


class SequenceTracker:
    """Allocates per-sender sequence numbers."""

    def __init__(self) -> None:
        self._next: dict[str, int] = {}

    def next_seq(self, sender: str) -> int:
        seq = self._next.get(sender, 0)
        self._next[sender] = seq + 1
        return seq

    def stamp(self, kind: str, sender: str, time: float, payload: dict[str, Any] | None = None) -> Envelope:
        """Build an envelope with the next sequence number for *sender*."""
        return Envelope(
            kind=kind,
            sender=sender,
            seq=self.next_seq(sender),
            time=time,
            payload=payload or {},
        )

    def state_dict(self) -> dict[str, int]:
        return dict(self._next)

    def load_state_dict(self, state: dict[str, int]) -> None:
        self._next = {k: int(v) for k, v in state.items()}


class OutOfOrderFilter:
    """Drop stale messages, per sender.

    A message is *stale* when its sequence number is not greater than the
    highest already accepted from the same sender.  When a sender restarts
    (e.g. a Monitor client restarted along with its tasks), call
    :meth:`reset` so the new epoch's numbering is accepted.
    """

    def __init__(self) -> None:
        self._highest: dict[str, int] = {}
        self._dropped = 0
        self._accepted = 0

    @property
    def dropped(self) -> int:
        """Number of messages rejected as out-of-order so far."""
        return self._dropped

    @property
    def accepted(self) -> int:
        """Number of messages accepted so far."""
        return self._accepted

    def accept(self, env: Envelope) -> bool:
        """Return True and record *env* if it is in order; else drop it."""
        highest = self._highest.get(env.sender)
        if highest is not None and env.seq <= highest:
            self._dropped += 1
            return False
        self._highest[env.sender] = env.seq
        self._accepted += 1
        return True

    def reset(self, sender: str) -> None:
        """Forget the sequence history of *sender* (sender restarted)."""
        self._highest.pop(sender, None)

    def senders(self) -> tuple[str, ...]:
        """Every sender with recorded sequence history, insertion-ordered."""
        return tuple(self._highest)

    def reset_all(self) -> None:
        """Forget every sender's epoch; the drop/accept counters persist."""
        for sender in self.senders():
            self.reset(sender)

    def state_dict(self) -> dict[str, Any]:
        return {
            "highest": dict(self._highest),
            "dropped": self._dropped,
            "accepted": self._accepted,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self._highest = {k: int(v) for k, v in state["highest"].items()}
        self._dropped = int(state["dropped"])
        self._accepted = int(state["accepted"])


class DedupFilter:
    """Exactly-once admission over a retransmitting, reordering transport.

    Unlike :class:`OutOfOrderFilter` — which rejects any regression and
    therefore also rejects retransmitted copies of envelopes that never
    arrived — this filter accepts each (sender, seq) exactly once, in
    any order.  Per sender it keeps a contiguous *floor* (every seq at
    or below it was seen) plus the sparse set of seqs seen above it; the
    floor advances as gaps fill in, so with acks/retransmits keeping
    loss bounded the set stays tiny.  Same interface as
    :class:`OutOfOrderFilter` so :class:`~repro.core.monitor.MonitorServer`
    can host either.
    """

    def __init__(self) -> None:
        self._floor: dict[str, int] = {}
        self._seen: dict[str, set[int]] = {}
        self._dropped = 0
        self._accepted = 0

    @property
    def dropped(self) -> int:
        """Number of messages rejected so far (all of them duplicates)."""
        return self._dropped

    @property
    def duplicates(self) -> int:
        """Alias of :attr:`dropped`: every rejection is a duplicate."""
        return self._dropped

    @property
    def accepted(self) -> int:
        return self._accepted

    def accept(self, env: Envelope) -> bool:
        """Return True the first time (sender, seq) is seen; else drop."""
        floor = self._floor.get(env.sender, -1)
        seen = self._seen.setdefault(env.sender, set())
        if env.seq <= floor or env.seq in seen:
            self._dropped += 1
            return False
        seen.add(env.seq)
        while floor + 1 in seen:
            floor += 1
            seen.discard(floor)
        self._floor[env.sender] = floor
        self._accepted += 1
        return True

    def reset(self, sender: str) -> None:
        """Forget *sender*'s history (the sender renumbered from zero)."""
        self._floor.pop(sender, None)
        self._seen.pop(sender, None)

    def senders(self) -> tuple[str, ...]:
        return tuple(self._floor)

    def reset_all(self) -> None:
        for sender in self.senders():
            self.reset(sender)

    def state_dict(self) -> dict[str, Any]:
        return {
            "floor": dict(self._floor),
            "seen": {k: sorted(v) for k, v in self._seen.items()},
            "dropped": self._dropped,
            "accepted": self._accepted,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self._floor = {k: int(v) for k, v in state["floor"].items()}
        self._seen = {k: {int(s) for s in v} for k, v in state["seen"].items()}
        self._dropped = int(state["dropped"])
        self._accepted = int(state["accepted"])
