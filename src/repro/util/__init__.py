"""Shared utilities: id generation, statistics, messaging, validation."""

from repro.util.deprecation import reset_warned, warn_once
from repro.util.ids import IdGenerator
from repro.util.stats import RunningStats, SlidingWindow
from repro.util.jsonmsg import DedupFilter, Envelope, OutOfOrderFilter, SequenceTracker
from repro.util.validation import (
    check_in,
    check_nonneg,
    check_positive,
    check_type,
)

__all__ = [
    "IdGenerator",
    "warn_once",
    "reset_warned",
    "RunningStats",
    "SlidingWindow",
    "DedupFilter",
    "Envelope",
    "OutOfOrderFilter",
    "SequenceTracker",
    "check_in",
    "check_nonneg",
    "check_positive",
    "check_type",
]
