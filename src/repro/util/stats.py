"""Streaming statistics used by sensors and policies.

The Decision stage keeps a *history* of sensor outputs — "like a sliding
window of a specified size" (paper §2.2) — and computes pre-analysis
operations (running average, min, max, trend) over it.  These helpers are
deliberately small and allocation-free on the hot path.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable, Iterator

from repro.errors import ReproError
from repro.util.validation import check_positive


class SlidingWindow:
    """Fixed-capacity window over a stream of floats.

    Maintains sum and sum-of-squares incrementally so ``mean`` and ``std``
    are O(1); ``min``/``max`` scan the window (windows are small — the paper
    uses 10).
    """

    def __init__(self, capacity: int) -> None:
        check_positive(capacity, "capacity")
        self._capacity = int(capacity)
        self._values: deque[float] = deque()
        self._sum = 0.0
        self._sumsq = 0.0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    @property
    def full(self) -> bool:
        return len(self._values) == self._capacity

    def push(self, value: float) -> None:
        """Append *value*, evicting the oldest entry when at capacity."""
        value = float(value)
        if len(self._values) == self._capacity:
            old = self._values.popleft()
            self._sum -= old
            self._sumsq -= old * old
        self._values.append(value)
        self._sum += value
        self._sumsq += value * value

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.push(v)

    def clear(self) -> None:
        self._values.clear()
        self._sum = 0.0
        self._sumsq = 0.0

    # -- aggregates --------------------------------------------------------
    def mean(self) -> float:
        if not self._values:
            raise ReproError("mean of empty window")
        return self._sum / len(self._values)

    def std(self) -> float:
        """Population standard deviation of the current window.

        Two-pass over the (small) window: the incremental sum-of-squares
        shortcut loses catastrophically to cancellation when values are
        large relative to their spread.
        """
        n = len(self._values)
        if n == 0:
            raise ReproError("std of empty window")
        mean = self._sum / n
        return math.sqrt(sum((v - mean) ** 2 for v in self._values) / n)

    def min(self) -> float:
        if not self._values:
            raise ReproError("min of empty window")
        return min(self._values)

    def max(self) -> float:
        if not self._values:
            raise ReproError("max of empty window")
        return max(self._values)

    def sum(self) -> float:
        return self._sum

    def last(self) -> float:
        if not self._values:
            raise ReproError("last of empty window")
        return self._values[-1]

    def first(self) -> float:
        if not self._values:
            raise ReproError("first of empty window")
        return self._values[0]

    def trend(self) -> float:
        """Least-squares slope over window positions 0..n-1.

        Used by the predictive-arbitration extension (paper §6): a positive
        slope on a pace metric means the task is slowing down.
        """
        n = len(self._values)
        if n < 2:
            return 0.0
        # x = 0..n-1; slope = cov(x, y) / var(x), computed in one pass.
        mean_x = (n - 1) / 2.0
        mean_y = self._sum / n
        num = 0.0
        den = 0.0
        for i, y in enumerate(self._values):
            dx = i - mean_x
            num += dx * (y - mean_y)
            den += dx * dx
        return num / den if den else 0.0

    def values(self) -> list[float]:
        return list(self._values)


class RunningStats:
    """Welford running mean/variance over an unbounded stream."""

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, value: float) -> None:
        value = float(value)
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ReproError("mean of empty stats")
        return self._mean

    @property
    def variance(self) -> float:
        if self._n == 0:
            raise ReproError("variance of empty stats")
        if self._n == 1:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        if self._n == 0:
            raise ReproError("min of empty stats")
        return self._min

    @property
    def max(self) -> float:
        if self._n == 0:
            raise ReproError("max of empty stats")
        return self._max
