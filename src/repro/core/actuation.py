"""Actuation stage: execute plans through the WMS plugin (paper §2.4).

Low-level operations "serve as a plugin to any static service that
interacts directly with the cluster resource manager and launches
workflow tasks" — here the Savanna launcher.  Execution is sequential in
plan order (releases before acquires), which is also why graceful
terminations dominate measured response times.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.resource_manager import place_cores
from repro.core.lowlevel import ActionPlan, DegradationReport, LowLevelOp
from repro.errors import ActuationError, AllocationError, LaunchError
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.wms.launcher import Savanna


class ActuationStage:
    """Executes action plans against the launcher plugin.

    When a :class:`~repro.journal.Journal` is attached, every op is
    bracketed by ``op-issued`` / ``op-completed`` records keyed on the
    op's idempotency key, so a crash-resumed orchestrator can finish an
    interrupted plan without double-applying anything (see
    :meth:`resume_plan`).  ``abort_requested`` models the orchestrator
    process dying between ops: the generator stops at the next op
    boundary without running ``on_done``.
    """

    def __init__(self, launcher: Savanna) -> None:
        self.launcher = launcher
        self.executed_plans: list[ActionPlan] = []
        self.failed_ops: list[tuple[str, str]] = []  # (plan_id, op description)
        self.tracer: Tracer = NULL_TRACER
        self.journal = None  # Journal | None, attached by the orchestrator
        self.abort_requested = False

    def set_tracer(self, tracer: Tracer) -> None:
        self.tracer = tracer

    # -- journal bracket ---------------------------------------------------------
    def _journal_issue(self, plan: ActionPlan, op: LowLevelOp) -> None:
        if self.journal is None:
            return
        payload = {"plan": plan.plan_id, "op_key": op.op_key, "op": op.op, "task": op.task}
        if op.op == "start_task":
            rec = self.launcher.records.get(op.task)
            payload["incarnation_before"] = rec.incarnations if rec is not None else 0
        self.journal.append("op-issued", **payload)

    def _journal_complete(
        self, plan: ActionPlan, op: LowLevelOp, failed: bool, reconciled: bool = False
    ) -> None:
        if self.journal is None:
            return
        payload = {"plan": plan.plan_id, "op_key": op.op_key, "failed": failed}
        if reconciled:
            payload["reconciled"] = True
        self.journal.append("op-completed", **payload)

    def execute(self, plan: ActionPlan, on_done: Callable[[ActionPlan], None] | None = None):
        """Generator: run every op of *plan* in order; drive via a process.

        Individual op failures are recorded and skipped — a plan must
        degrade, not deadlock, when the cluster state drifted between
        planning and execution.  Every failed op leaves a ``failure``
        trace point; after the sweep, compensating releases unwind any
        cores a failed acquire left booked, and a
        :class:`~repro.core.lowlevel.DegradationReport` is attached to
        the plan.  Calls ``on_done(plan)`` at the end.
        """
        tracer = self.tracer
        plan.execution_start = self.launcher.engine.now
        plan_span = (
            tracer.start_span(
                "actuation.plan", "actuation", parent=None,
                plan=plan.plan_id, ops=len(plan.ops),
            )
            if tracer.enabled
            else None
        )
        plan_failures: list[tuple[LowLevelOp, str]] = []
        for op in plan.ordered_ops():
            if self.abort_requested:
                return plan  # orchestrator died between ops; resume_plan finishes
            self._journal_issue(plan, op)
            if self.abort_requested:
                return plan  # died after issuing but before applying
            op.exec_start = self.launcher.engine.now
            failed = False
            try:
                yield from self._run_op(op)
            except (ActuationError, AllocationError, LaunchError) as err:
                failed = True
                self.failed_ops.append((plan.plan_id, f"{op.describe()}: {err}"))
                plan_failures.append((op, str(err)))
                self.launcher.trace.point(
                    self.launcher.engine.now,
                    f"op-failed:{op.task}",
                    category="failure",
                    plan=plan.plan_id,
                    op=op.describe(),
                    error=str(err),
                )
            finally:
                op.exec_end = self.launcher.engine.now
            self._journal_complete(plan, op, failed=failed)
            if plan_span is not None:
                tracer.add_span(
                    f"op.{op.op}", "actuation",
                    start=op.exec_start, end=op.exec_end, parent=plan_span,
                    task=op.task, reason=op.reason,
                )
        if plan_failures:
            self._compensate(plan, plan_failures)
            if tracer.enabled:
                tracer.metrics.counter("actuation.degraded_plans").inc()
                tracer.metrics.counter("actuation.failed_ops").inc(len(plan_failures))
        plan.execution_end = self.launcher.engine.now
        if plan_span is not None:
            tracer.end_span(plan_span, failed_ops=len(plan_failures))
            metrics = tracer.metrics
            # Per-stage response-time breakdown (paper §4.6): queueing in
            # Arbitration's handoff, then the execution itself (dominated
            # by graceful stops), then the full event-to-response time.
            metrics.histogram("stage.arbitration.latency").observe(
                max(0.0, plan.execution_start - plan.created)
            )
            metrics.histogram("stage.actuation.latency").observe(
                plan.execution_end - plan.execution_start
            )
            metrics.histogram("plan.response").observe(
                plan.execution_end - plan.created
            )
        self.executed_plans.append(plan)
        if on_done is not None:
            on_done(plan)
        return plan

    def resume_plan(self, plan: ActionPlan, ledger, on_done: Callable[[ActionPlan], None] | None = None):
        """Generator: finish a plan interrupted by an orchestrator crash.

        *ledger* is an :class:`~repro.journal.AppliedOpsLedger` built from
        the journal's ``op-issued`` / ``op-completed`` records.  Each op is
        applied **at most once**:

        * ``completed`` ops are skipped outright;
        * an issued ``start_task`` is probed against the launcher's
          incarnation counter — if it advanced past the journaled
          ``incarnation_before`` the launch took effect and is skipped;
        * an issued ``stop_task`` whose target is already inactive is
          skipped; an active target is re-signalled, which is safe because
          stopping is effect-idempotent (a second TERM/KILL to a stopping
          task changes nothing);
        * ``reconfig_task`` is re-applied — parameter delivery overwrites
          the same keys, so replay converges to the same task state.

        Skips leave ``category="journal"`` trace points (excluded from
        scenario fingerprints) so the exactly-once property is auditable.
        """
        tracer = self.tracer
        launcher = self.launcher
        if plan.execution_start is None:
            plan.execution_start = launcher.engine.now
        plan_failures: list[tuple[LowLevelOp, str]] = []
        for op in plan.ordered_ops():
            status = ledger.status(op.op_key)
            if status == "completed":
                continue
            skip = False
            if status == "issued":
                if op.op == "start_task":
                    issued = ledger.issued_record(op.op_key) or {}
                    before = issued.get("incarnation_before")
                    rec = launcher.records.get(op.task)
                    if before is not None and rec is not None and rec.incarnations > int(before):
                        skip = True
                elif op.op == "stop_task":
                    rec = launcher.records.get(op.task)
                    if rec is None or not rec.is_active:
                        skip = True
            if skip:
                self._journal_complete(plan, op, failed=False, reconciled=True)
                launcher.trace.point(
                    launcher.engine.now,
                    f"op-skipped:{op.task}",
                    category="journal",
                    plan=plan.plan_id,
                    op=op.describe(),
                )
                continue
            if status == "unseen":
                self._journal_issue(plan, op)
            op.exec_start = launcher.engine.now
            failed = False
            try:
                yield from self._run_op(op)
            except (ActuationError, AllocationError, LaunchError) as err:
                failed = True
                self.failed_ops.append((plan.plan_id, f"{op.describe()}: {err}"))
                plan_failures.append((op, str(err)))
                launcher.trace.point(
                    launcher.engine.now,
                    f"op-failed:{op.task}",
                    category="failure",
                    plan=plan.plan_id,
                    op=op.describe(),
                    error=str(err),
                )
            finally:
                op.exec_end = launcher.engine.now
            self._journal_complete(plan, op, failed=failed)
        if plan_failures:
            self._compensate(plan, plan_failures)
            if tracer.enabled:
                tracer.metrics.counter("actuation.degraded_plans").inc()
                tracer.metrics.counter("actuation.failed_ops").inc(len(plan_failures))
        plan.execution_end = launcher.engine.now
        self.executed_plans.append(plan)
        if on_done is not None:
            on_done(plan)
        return plan

    def _compensate(self, plan: ActionPlan, failures: list[tuple[LowLevelOp, str]]) -> None:
        """Unwind failed acquires and attach the degradation report."""
        compensations: list[str] = []
        for op, _err in failures:
            if op.op != "start_task":
                continue
            rec = self.launcher.records.get(op.task)
            if rec is not None and rec.is_active:
                continue  # the task came up after all; nothing to unwind
            released = self.launcher.rm.release_if_held(op.task)
            if released:
                compensations.append(
                    f"released {released.total_cores} cores held for {op.task}"
                )
        plan.degradation = DegradationReport(
            plan_id=plan.plan_id,
            time=self.launcher.engine.now,
            failed_ops=[f"{op.describe()}: {err}" for op, err in failures],
            compensations=compensations,
        )
        self.launcher.trace.point(
            self.launcher.engine.now,
            f"plan-degraded:{plan.plan_id}",
            category="failure",
            failed=len(failures),
            compensations=len(compensations),
        )

    def _run_op(self, op: LowLevelOp):
        launcher = self.launcher
        if op.op == "stop_task":
            yield from launcher.stop_task(op.task, graceful=op.graceful)
            return
        if op.op == "reconfig_task":
            delivered = yield from launcher.reconfig_task(op.task, op.params)
            if not delivered:
                raise ActuationError(f"reconfig target {op.task!r} not running")
            return
        if op.op == "start_task":
            if op.resources is None or op.resources.total_cores == 0:
                raise ActuationError(f"start op for {op.task!r} has no resources")
            resources = op.resources
            try:
                launcher.rm.assign_set(op.task, resources)
            except AllocationError:
                # State drifted since planning (e.g. another exit changed
                # the free pool): re-place the same core count now.
                resources = place_cores(
                    launcher.rm.free(),
                    launcher.allocation.nodes,
                    op.resources.total_cores,
                    exclude_nodes=launcher.rm.excluded_nodes(),
                )
                launcher.rm.assign_set(op.task, resources)
            yield from launcher.start_task_with_resources(
                op.task,
                resources,
                user_script=op.user_script,
                params=op.params,
                preassigned=True,
            )
            return
        raise ActuationError(f"unknown low-level op {op.op!r}")
