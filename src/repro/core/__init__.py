"""DYFLOW proper: the four dynamic-management stages.

The paper's conceptual model compartmentalizes orchestration into
**Monitor → Decision → Arbitration → Actuation**, all running
continuously and feeding each other (§2).  Users program the stages
through sensors, policies, and rules — either directly with the classes
here or through the XML interface in :mod:`repro.xmlspec`.
"""

from repro.core.actions import ActionType, SuggestedAction
from repro.core.events import MetricUpdate
from repro.core.sensors import (
    GroupBySpec,
    JoinSpec,
    SensorInstance,
    SensorSpec,
    REDUCTIONS,
)
from repro.core.policy import PolicyApplication, PolicyRuntime, PolicySpec
from repro.core.decision import DecisionStage
from repro.core.rules import ArbitrationRules
from repro.core.lowlevel import ActionPlan, LowLevelOp
from repro.core.arbitration import ArbitrationStage
from repro.core.actuation import ActuationStage
from repro.core.monitor import MonitorClient, MonitorServer, MonitorTaskBinding

__all__ = [
    "ActionType",
    "SuggestedAction",
    "MetricUpdate",
    "SensorSpec",
    "SensorInstance",
    "GroupBySpec",
    "JoinSpec",
    "REDUCTIONS",
    "PolicySpec",
    "PolicyApplication",
    "PolicyRuntime",
    "DecisionStage",
    "ArbitrationRules",
    "LowLevelOp",
    "ActionPlan",
    "ArbitrationStage",
    "ActuationStage",
    "MonitorClient",
    "MonitorServer",
    "MonitorTaskBinding",
]
