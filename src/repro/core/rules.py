"""Arbitration rules: priorities and dependencies (paper §2.3).

Users guide the plan of action with three rule kinds: policy priorities
(resolve conflicting high-level actions), task priorities (resolve
conflicting low-level operations and pick victims), and task
inter-dependencies (identify dependent operations).  Lower numbers mean
higher priority, matching the paper's "priority 0 (the highest)".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wms.spec import CouplingType, DependencySpec, WorkflowSpec

# Tasks without an explicit priority rank below any ranked task.
DEFAULT_PRIORITY = 1_000_000


@dataclass
class ArbitrationRules:
    """Rules for one workflow."""

    workflow_id: str
    task_priorities: dict[str, int] = field(default_factory=dict)
    policy_priorities: dict[str, int] = field(default_factory=dict)
    dependencies: list[DependencySpec] = field(default_factory=list)

    # -- priorities ----------------------------------------------------------------
    def task_priority(self, task: str) -> int:
        return self.task_priorities.get(task, DEFAULT_PRIORITY)

    def policy_priority(self, policy_id: str) -> int:
        return self.policy_priorities.get(policy_id, DEFAULT_PRIORITY)

    # -- dependencies -----------------------------------------------------------------
    def tight_dependents(self, task: str) -> list[str]:
        return [
            d.task for d in self.dependencies
            if d.parent == task and d.type == CouplingType.TIGHT
        ]

    def transitive_tight_dependents(self, task: str) -> list[str]:
        out: list[str] = []
        frontier = [task]
        seen = {task}
        while frontier:
            nxt: list[str] = []
            for t in frontier:
                for d in self.tight_dependents(t):
                    if d not in seen:
                        seen.add(d)
                        out.append(d)
                        nxt.append(d)
            frontier = nxt
        return out

    @classmethod
    def from_workflow(
        cls,
        workflow: WorkflowSpec,
        task_priorities: dict[str, int] | None = None,
        policy_priorities: dict[str, int] | None = None,
    ) -> "ArbitrationRules":
        """Rules seeded with the workflow's own dependency declarations."""
        return cls(
            workflow_id=workflow.workflow_id,
            task_priorities=dict(task_priorities or {}),
            policy_priorities=dict(policy_priorities or {}),
            dependencies=list(workflow.dependencies),
        )
