"""High-level actions suggested by policies (paper §2.2).

Each high-level operation is "concise and easy to understand" and
encapsulates the low-level operations Arbitration later plans.  The set
matches the paper: ADDCPU, RMCPU, STOP, START, RESTART, SWITCH, each
with optional parameters (``adjust-by``, ``restart-script``,
``switch-to``...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class ActionType(enum.Enum):
    ADDCPU = "ADDCPU"        # restart the task with more processes
    RMCPU = "RMCPU"          # restart the task with fewer processes
    STOP = "STOP"            # terminate the task
    START = "START"          # start a task that is not running
    RESTART = "RESTART"      # stop then start the running task
    SWITCH = "SWITCH"        # stop the assessed task, start a replacement
    # Extension (paper §6): a finer-grained control operation "beyond
    # just stopping and relaunching" — deliver new parameters to the
    # running task in place, no restart, no resource movement.
    RECONFIG = "RECONFIG"

    @property
    def acquires_resources(self) -> bool:
        """Does this action need cores beyond what its target holds?"""
        return self in (ActionType.ADDCPU, ActionType.START, ActionType.SWITCH)

    @property
    def releases_resources(self) -> bool:
        return self in (ActionType.RMCPU, ActionType.STOP)


# Conflicting action pairs on the same task are resolved by policy
# priority (paper: STOP-START, STOP-RESTART, RMCPU-ADDCPU).
CONFLICTS: frozenset[frozenset[ActionType]] = frozenset(
    {
        frozenset({ActionType.STOP, ActionType.START}),
        frozenset({ActionType.STOP, ActionType.RESTART}),
        frozenset({ActionType.RMCPU, ActionType.ADDCPU}),
        frozenset({ActionType.STOP, ActionType.ADDCPU}),
        frozenset({ActionType.STOP, ActionType.RMCPU}),
        frozenset({ActionType.SWITCH, ActionType.START}),
        frozenset({ActionType.SWITCH, ActionType.RESTART}),
        # Reconfiguring a task that the plan stops/restarts is pointless.
        frozenset({ActionType.RECONFIG, ActionType.STOP}),
        frozenset({ActionType.RECONFIG, ActionType.RESTART}),
    }
)


def actions_conflict(a: ActionType, b: ActionType) -> bool:
    """True when *a* and *b* cannot both apply to one task."""
    if a == b:
        return False
    return frozenset({a, b}) in CONFLICTS


@dataclass(frozen=True)
class SuggestedAction:
    """One policy response: an action on one target task.

    Attributes:
        policy_id: the suggesting policy (carries the priority).
        action: the high-level operation.
        target: the task acted on (``act-on-tasks`` in the XML).
        workflow_id: owning workflow.
        assess_task: the task whose metric triggered the policy.
        params: action parameters (``adjust-by``, ``restart-script``...).
        trigger_time: when the triggering metric value was produced —
            the anchor for response-time accounting (§4.6).
        metric_value: the value that satisfied the evaluation condition.
    """

    policy_id: str
    action: ActionType
    target: str
    workflow_id: str
    assess_task: str = ""
    params: dict[str, Any] = field(default_factory=dict)
    trigger_time: float = 0.0
    metric_value: float = 0.0

    def __post_init__(self) -> None:
        # params is part of a frozen dataclass; freeze content by copy.
        object.__setattr__(self, "params", dict(self.params))
