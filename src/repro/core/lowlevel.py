"""Low-level operations and action plans.

Arbitration maps accepted high-level actions onto "the function calls
understood by a resource manager or underlying resource management
service" (§2.3): here, the two primitives every action decomposes into —
stopping a task and starting a task on a concrete resource set — plus
plan ordering metadata.  "If any operation reduces the number of
processes of a task releasing resources, it should precede others that
use those resources": stops are phase 0, starts phase 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cluster.allocation import ResourceSet

PHASE_RELEASE = 0  # stop_task / shrink: frees cores
PHASE_ACQUIRE = 1  # start_task: consumes cores


@dataclass
class LowLevelOp:
    """One plugin invocation in a plan.

    Attributes:
        op: ``"stop_task"``, ``"start_task"`` or ``"reconfig_task"``.
        task: the target task.
        phase: ordering class (releases before acquires).
        graceful: stop flavour (graceful = finish the current timestep).
        resources: planned core assignment (start ops only).
        user_script: script to run before launch (start ops only).
        params: task parameters forwarded into the TaskContext.
        reason: provenance — the policy id, ``"victim"``, ``"dependency"``
            or ``"waiting-queue"``.
        op_key: idempotency key (``<plan_id>:<index>:<op>:<task>``),
            assigned once the plan gets its id; the actuation journal is
            keyed by it so a resumed plan never double-applies an op.
        exec_start / exec_end: stamped by Actuation, for the §4.6 cost
            breakdown (graceful-termination share of response time).
    """

    op: str
    task: str
    phase: int
    graceful: bool = True
    resources: ResourceSet | None = None
    user_script: str | None = None
    params: dict[str, Any] = field(default_factory=dict)
    reason: str = ""
    op_key: str = ""
    exec_start: float | None = None
    exec_end: float | None = None

    @property
    def exec_duration(self) -> float:
        if self.exec_start is None or self.exec_end is None:
            raise ValueError(f"op {self.describe()} not executed")
        return self.exec_end - self.exec_start

    def describe(self) -> str:
        if self.op == "start_task":
            n = self.resources.total_cores if self.resources else 0
            return f"start {self.task} ({n} procs) [{self.reason}]"
        if self.op == "reconfig_task":
            return f"reconfig {self.task} {self.params} [{self.reason}]"
        flavour = "graceful" if self.graceful else "kill"
        return f"stop {self.task} ({flavour}) [{self.reason}]"

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "task": self.task,
            "phase": self.phase,
            "graceful": self.graceful,
            "resources": self.resources.as_dict() if self.resources is not None else None,
            "user_script": self.user_script,
            "params": dict(self.params),
            "reason": self.reason,
            "op_key": self.op_key,
            "exec_start": self.exec_start,
            "exec_end": self.exec_end,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "LowLevelOp":
        resources = d.get("resources")
        return cls(
            op=d["op"],
            task=d["task"],
            phase=int(d["phase"]),
            graceful=bool(d.get("graceful", True)),
            resources=ResourceSet(resources) if resources is not None else None,
            user_script=d.get("user_script"),
            params=dict(d.get("params", {})),
            reason=d.get("reason", ""),
            op_key=d.get("op_key", ""),
            exec_start=d.get("exec_start"),
            exec_end=d.get("exec_end"),
        )


@dataclass(frozen=True)
class DegradationReport:
    """Structured account of a plan that could not execute in full.

    Actuation attaches one of these to a plan whenever at least one
    low-level operation failed: graceful degradation means the rest of
    the plan still ran, the failures are itemized, and any resources a
    failed acquire left booked were released by compensating ops.
    """

    plan_id: str
    time: float
    failed_ops: list[str]       # "<op description>: <error>" per failure
    compensations: list[str]    # compensating release ops that were applied

    @property
    def degraded(self) -> bool:
        return bool(self.failed_ops)

    def describe(self) -> str:
        lines = [f"plan {self.plan_id} degraded ({len(self.failed_ops)} failed ops)"]
        lines.extend(f"  failed: {f}" for f in self.failed_ops)
        lines.extend(f"  compensated: {c}" for c in self.compensations)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan_id": self.plan_id,
            "time": self.time,
            "failed_ops": list(self.failed_ops),
            "compensations": list(self.compensations),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "DegradationReport":
        return cls(
            plan_id=d["plan_id"],
            time=float(d["time"]),
            failed_ops=list(d.get("failed_ops", [])),
            compensations=list(d.get("compensations", [])),
        )


@dataclass
class ActionPlan:
    """An ordered, feasible set of low-level operations plus accounting."""

    plan_id: str
    workflow_id: str
    created: float
    ops: list[LowLevelOp]
    trigger_time: float
    accepted: list[str] = field(default_factory=list)   # accepted high-level actions
    discarded: list[str] = field(default_factory=list)  # dropped suggestions
    victims: list[str] = field(default_factory=list)
    reassignment: dict[str, ResourceSet] = field(default_factory=dict)
    # filled by Actuation:
    execution_start: float | None = None
    execution_end: float | None = None
    degradation: DegradationReport | None = None

    def ordered_ops(self) -> list[LowLevelOp]:
        """Ops in execution order: releases first, stable within phase."""
        return sorted(self.ops, key=lambda o: o.phase)

    def assign_op_keys(self) -> None:
        """Stamp each op's idempotency key (requires a final plan_id)."""
        if not self.plan_id:
            raise ValueError("assign_op_keys() before the plan got its id")
        for idx, op in enumerate(self.ordered_ops()):
            op.op_key = f"{self.plan_id}:{idx}:{op.op}:{op.task}"

    @property
    def response_time(self) -> float:
        """Plan finalization to actuation completion (§4.4's 107 s / 36 s)."""
        if self.execution_end is None:
            raise ValueError(f"plan {self.plan_id} not yet executed")
        return self.execution_end - self.created

    def stop_share(self) -> float:
        """Fraction of the response spent waiting for task termination.

        The paper measured ≈97% of response time waiting for tasks to
        terminate gracefully (§4.6).
        """
        if self.execution_end is None or self.execution_start is None:
            raise ValueError(f"plan {self.plan_id} not yet executed")
        total = self.execution_end - self.created
        if total <= 0:
            return 0.0
        stop_time = sum(
            op.exec_duration
            for op in self.ops
            if op.op == "stop_task" and op.exec_start is not None and op.exec_end is not None
        )
        return min(1.0, stop_time / total)

    @property
    def event_to_response(self) -> float:
        """Triggering event to actuation completion (includes decision lag)."""
        if self.execution_end is None:
            raise ValueError(f"plan {self.plan_id} not yet executed")
        return self.execution_end - self.trigger_time

    def describe(self) -> str:
        lines = [f"plan {self.plan_id} @ {self.created:.2f}s (trigger {self.trigger_time:.2f}s)"]
        lines.extend(f"  {op.describe()}" for op in self.ordered_ops())
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan_id": self.plan_id,
            "workflow_id": self.workflow_id,
            "created": self.created,
            "ops": [op.to_dict() for op in self.ops],
            "trigger_time": self.trigger_time,
            "accepted": list(self.accepted),
            "discarded": list(self.discarded),
            "victims": list(self.victims),
            "reassignment": {t: rs.as_dict() for t, rs in self.reassignment.items()},
            "execution_start": self.execution_start,
            "execution_end": self.execution_end,
            "degradation": self.degradation.to_dict() if self.degradation else None,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ActionPlan":
        degradation = d.get("degradation")
        return cls(
            plan_id=d["plan_id"],
            workflow_id=d["workflow_id"],
            created=float(d["created"]),
            ops=[LowLevelOp.from_dict(o) for o in d.get("ops", [])],
            trigger_time=float(d["trigger_time"]),
            accepted=list(d.get("accepted", [])),
            discarded=list(d.get("discarded", [])),
            victims=list(d.get("victims", [])),
            reassignment={
                t: ResourceSet(rs) for t, rs in d.get("reassignment", {}).items()
            },
            execution_start=d.get("execution_start"),
            execution_end=d.get("execution_end"),
            degradation=DegradationReport.from_dict(degradation) if degradation else None,
        )
