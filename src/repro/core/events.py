"""Metric updates: the data flowing from Monitor to Decision."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class MetricUpdate:
    """One computed metric value at one granularity.

    Attributes:
        sensor_id: producing sensor.
        workflow_id: owning workflow.
        task: task the metric describes ("" for workflow-level metrics).
        granularity: ``task``, ``node-task``, ``workflow`` or
            ``node-workflow``.
        key: the group key (e.g. ``("Isosurface",)`` or
            ``("Isosurface", "summit0003")``).
        value: the reduced metric value.
        time: when the underlying data was produced.
        step: application step the value belongs to (-1 if n/a).
        var: the underlying variable name.
    """

    sensor_id: str
    workflow_id: str
    task: str
    granularity: str
    key: tuple
    value: float
    time: float
    step: int = -1
    var: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (used by the threaded driver)."""
        return {
            "sensor_id": self.sensor_id,
            "workflow_id": self.workflow_id,
            "task": self.task,
            "granularity": self.granularity,
            "key": list(self.key),
            "value": self.value,
            "time": self.time,
            "step": self.step,
            "var": self.var,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "MetricUpdate":
        return cls(
            sensor_id=d["sensor_id"],
            workflow_id=d["workflow_id"],
            task=d["task"],
            granularity=d["granularity"],
            key=tuple(d["key"]),
            value=float(d["value"]),
            time=float(d["time"]),
            step=int(d.get("step", -1)),
            var=d.get("var", ""),
        )
