"""Policies: the Decision stage's programmable constructs (paper §2.2).

A policy names the sensor output to assess (at a granularity), an
optional history window with a pre-analysis operation, an evaluation
condition against a threshold, a suggested action, and an evaluation
frequency.  Policies are portable: one :class:`PolicySpec` can be applied
to many tasks via :class:`PolicyApplication` with different parameters —
exactly the reuse the XML interface exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.actions import ActionType, SuggestedAction
from repro.core.events import MetricUpdate
from repro.core.sensors.groupby import GRANULARITIES
from repro.errors import PolicyError
from repro.util.stats import SlidingWindow
from repro.util.validation import check_in, check_positive

EVAL_OPS = ("GT", "LT", "GE", "LE", "EQ", "NE")
HISTORY_OPS = ("AVG", "MAX", "MIN", "SUM", "LAST", "MEDIAN", "TREND")
_EQ_TOL = 1e-9


def eval_condition(op: str, value: float, threshold: float) -> bool:
    """Apply an evaluation condition (EQ/NE use a small float tolerance)."""
    op = op.upper()
    if op == "GT":
        return value > threshold
    if op == "LT":
        return value < threshold
    if op == "GE":
        return value >= threshold
    if op == "LE":
        return value <= threshold
    if op == "EQ":
        return abs(value - threshold) <= _EQ_TOL
    if op == "NE":
        return abs(value - threshold) > _EQ_TOL
    raise PolicyError(f"unknown eval op {op!r}; known: {EVAL_OPS}")


@dataclass(frozen=True)
class PolicySpec:
    """A reusable policy definition.

    Attributes:
        policy_id: unique name (referenced by arbitration rules).
        sensor_id: sensor output to assess.
        granularity: which of the sensor's group-by streams to use.
        eval_op / threshold: the evaluation condition.
        action: suggested high-level action when the condition holds.
        history_window: >1 enables pre-analysis over a sliding window
            (the paper's PACE policies average the latest 10 values);
            1 evaluates each incoming value instantaneously.
        history_op: pre-analysis operation over the window.
        frequency: minimum seconds between evaluations (events with
            transitory effects are skipped, §2.2).
        default_params: baseline action parameters, overridable per
            application.
    """

    policy_id: str
    sensor_id: str
    eval_op: str
    threshold: float
    action: ActionType
    granularity: str = "task"
    history_window: int = 1
    history_op: str = "AVG"
    frequency: float = 5.0
    default_params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_in(self.eval_op.upper(), EVAL_OPS, "eval_op")
        check_in(self.history_op.upper(), HISTORY_OPS, "history_op")
        check_in(self.granularity, GRANULARITIES, "granularity")
        check_positive(self.history_window, "history_window")
        if self.frequency < 0:
            raise PolicyError(f"frequency must be >= 0, got {self.frequency}")


@dataclass(frozen=True)
class PolicyApplication:
    """Bind a policy to a workflow: which task to assess, which to act on.

    ``assess_task`` may be "" for workflow-granularity policies.  Each
    task in ``act_on_tasks`` receives the suggested action with
    ``action_params`` merged over the spec defaults.
    """

    policy_id: str
    workflow_id: str
    act_on_tasks: tuple[str, ...]
    assess_task: str = ""
    action_params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.act_on_tasks:
            raise PolicyError(f"application of {self.policy_id!r} has no act-on tasks")


class PolicyRuntime:
    """One applied policy: history, pending values, frequency gating."""

    def __init__(self, spec: PolicySpec, application: PolicyApplication) -> None:
        if spec.policy_id != application.policy_id:
            raise PolicyError(
                f"application policy id {application.policy_id!r} != spec {spec.policy_id!r}"
            )
        self.spec = spec
        self.application = application
        self._window = SlidingWindow(max(spec.history_window, 1))
        self._pending: list[tuple[float, float]] = []  # (value, data time)
        self._last_eval: float | None = None
        self._last_time = 0.0
        self.fired = 0

    # -- ingestion ------------------------------------------------------------
    def matches(self, u: MetricUpdate) -> bool:
        spec, app = self.spec, self.application
        if u.sensor_id != spec.sensor_id or u.granularity != spec.granularity:
            return False
        if u.workflow_id != app.workflow_id:
            return False
        if spec.granularity in ("task", "node-task") and app.assess_task:
            return u.task == app.assess_task
        return True

    def ingest(self, u: MetricUpdate) -> bool:
        """Store a matching update; returns whether it matched."""
        if not self.matches(u):
            return False
        self.accept(u)
        return True

    def accept(self, u: MetricUpdate) -> None:
        """Store an update the caller has already routed to this runtime.

        The Decision stage's routing index guarantees :meth:`matches`
        holds, so the hot path skips re-checking the predicate.
        """
        self._window.push(u.value)
        self._pending.append((u.value, u.time))
        if u.time > self._last_time:
            self._last_time = u.time

    # -- evaluation -----------------------------------------------------------
    def due(self, now: float) -> bool:
        """Evaluate on absolute frequency boundaries (0, f, 2f, ...).

        Aligning every policy to the same wall-clock grid means policies
        with equal frequency respond in the *same* Decision batch — the
        paper's Decision module sends all policy responses "as a single
        JSON message", which is what lets Arbitration weigh the analyses'
        competing suggestions against each other (§4.4).
        """
        if self._last_eval is None:
            return True
        freq = self.spec.frequency
        if freq <= 0:
            return True
        import math

        return math.floor(now / freq) > math.floor(self._last_eval / freq)

    def evaluate(self, now: float) -> list[SuggestedAction]:
        """Run the evaluation condition if due; returns suggested actions.

        With a history window the pre-analysed window value is checked —
        and keeps being checked at every due evaluation while the window
        stays in violation, even with no fresh data ("the average time
        per timestep was above the threshold", §4.4, holds across slow
        metric streams).  Without a window, every pending value is
        checked individually so exact-match (EQ) conditions cannot slip
        through between polls, and each value is consumed exactly once.
        """
        if not self.due(now) or (not self._pending and len(self._window) == 0):
            return []
        spec = self.spec
        if spec.history_window > 1:
            candidates = [(self._preanalysis(), self._last_time)]
        elif self._pending:
            candidates = list(self._pending)
        else:
            return []  # instantaneous policy with nothing new to assess
        self._last_eval = now
        self._pending.clear()
        for value, data_time in candidates:
            if eval_condition(spec.eval_op, value, spec.threshold):
                self.fired += 1
                params = dict(spec.default_params)
                params.update(self.application.action_params)
                return [
                    SuggestedAction(
                        policy_id=spec.policy_id,
                        action=spec.action,
                        target=target,
                        workflow_id=self.application.workflow_id,
                        assess_task=self.application.assess_task,
                        params=params,
                        trigger_time=data_time,
                        metric_value=value,
                    )
                    for target in self.application.act_on_tasks
                ]
        return []

    def _preanalysis(self) -> float:
        op = self.spec.history_op.upper()
        if op == "AVG":
            return self._window.mean()
        if op == "MAX":
            return self._window.max()
        if op == "MIN":
            return self._window.min()
        if op == "SUM":
            return self._window.sum()
        if op == "LAST":
            return self._window.last()
        if op == "MEDIAN":
            import statistics

            return statistics.median(self._window.values())
        if op == "TREND":
            return self._window.trend()
        raise PolicyError(f"unknown history op {op!r}")

    def reset_history(self) -> None:
        """Clear history (used when the assessed task restarts)."""
        self._window.clear()
        self._pending.clear()

    # -- crash recovery --------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "window": list(self._window.values()),
            "pending": [[v, t] for v, t in self._pending],
            "last_eval": self._last_eval,
            "last_time": self._last_time,
            "fired": self.fired,
        }

    def load_state_dict(self, state: dict) -> None:
        self._window.clear()
        for v in state.get("window", []):
            self._window.push(float(v))
        self._pending = [(float(v), float(t)) for v, t in state.get("pending", [])]
        last_eval = state.get("last_eval")
        self._last_eval = float(last_eval) if last_eval is not None else None
        self._last_time = float(state.get("last_time", 0.0))
        self.fired = int(state.get("fired", 0))
