"""Decision stage: route metric updates to policies and collect responses.

"This module screens incoming sensor message(s) ... and maps them to the
policies.  Each policy uses these updates to trigger evaluation at
defined frequency intervals ... Policy responses (if any) are collected
and sent as a single JSON message to the Arbitration module" (paper §3).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.actions import ActionType, SuggestedAction
from repro.core.events import MetricUpdate
from repro.core.policy import PolicyApplication, PolicyRuntime, PolicySpec
from repro.errors import PolicyError
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.util.jsonmsg import Envelope, SequenceTracker

# Actions that survive degraded mode: failure recovery must proceed even
# on stale data, but performance tuning (resizing, variant switches,
# reconfiguration) on old pace numbers just thrashes the allocation.
ESSENTIAL_ACTIONS = frozenset({ActionType.STOP, ActionType.START, ActionType.RESTART})


class DecisionStage:
    """Holds policy runtimes, ingests updates, emits suggestion batches."""

    def __init__(self) -> None:
        self._specs: dict[str, PolicySpec] = {}
        self._runtimes: list[PolicyRuntime] = []
        # Routing index: (sensor, granularity, workflow) -> (by-task map,
        # wildcard list).  Rebuilt lazily after apply_policy; turns
        # ingest from O(updates x runtimes) into O(updates) — the
        # dominant cost at 10k-task scale.
        self._route: dict[tuple, tuple[dict, list]] | None = None
        self._seq = SequenceTracker()
        self.updates_seen = 0
        self.updates_matched = 0
        # Staleness-aware degraded mode (set by the fabric's
        # DegradedModeController through the driver).
        self.degraded = False
        self.suggestions_gated = 0
        self.tracer: Tracer = NULL_TRACER

    def set_tracer(self, tracer: Tracer) -> None:
        self.tracer = tracer

    # -- configuration ------------------------------------------------------------
    def add_policy(self, spec: PolicySpec) -> None:
        if spec.policy_id in self._specs:
            raise PolicyError(f"duplicate policy id {spec.policy_id!r}")
        self._specs[spec.policy_id] = spec

    def apply_policy(self, application: PolicyApplication) -> PolicyRuntime:
        spec = self._specs.get(application.policy_id)
        if spec is None:
            raise PolicyError(f"apply-policy references unknown policy {application.policy_id!r}")
        runtime = PolicyRuntime(spec, application)
        self._runtimes.append(runtime)
        self._route = None
        return runtime

    @property
    def policies(self) -> list[PolicySpec]:
        return list(self._specs.values())

    @property
    def runtimes(self) -> list[PolicyRuntime]:
        return list(self._runtimes)

    # -- data path ------------------------------------------------------------------
    def _build_route(self) -> dict[tuple, tuple[dict, list]]:
        """Index runtimes by the exact fields :meth:`PolicyRuntime.matches`
        tests: (sensor, granularity, workflow) keys a bucket; inside it,
        task-granularity runtimes with an ``assess-task`` go into a
        per-task map and everything else (workflow granularity, or no
        assess-task) matches any update in the bucket."""
        route: dict[tuple, tuple[dict, list]] = {}
        for rt in self._runtimes:
            spec, app = rt.spec, rt.application
            key = (spec.sensor_id, spec.granularity, app.workflow_id)
            bucket = route.get(key)
            if bucket is None:
                bucket = route[key] = ({}, [])
            by_task, wildcard = bucket
            if spec.granularity in ("task", "node-task") and app.assess_task:
                by_task.setdefault(app.assess_task, []).append(rt)
            else:
                wildcard.append(rt)
        self._route = route
        return route

    def ingest(self, updates: Iterable[MetricUpdate]) -> None:
        """Map incoming updates onto every matching policy runtime."""
        route = self._route
        if route is None:
            route = self._build_route()
        seen = matched = 0
        for u in updates:
            seen += 1
            bucket = route.get((u.sensor_id, u.granularity, u.workflow_id))
            if bucket is None:
                continue
            by_task, wildcard = bucket
            rts = by_task.get(u.task)
            if rts:
                for rt in rts:
                    rt.accept(u)
                matched += len(rts)
            if wildcard:
                for rt in wildcard:
                    rt.accept(u)
                matched += len(wildcard)
        self.updates_seen += seen
        self.updates_matched += matched

    def tick(self, now: float) -> list[SuggestedAction]:
        """Evaluate due policies; returns this round's suggestions."""
        tracer = self.tracer
        span = tracer.start_span("decision.tick", "decision") if tracer.enabled else None
        suggestions: list[SuggestedAction] = []
        for rt in self._runtimes:
            suggestions.extend(rt.evaluate(now))
        if span is not None:
            tracer.end_span(span, suggestions=len(suggestions))
            if suggestions:
                tracer.metrics.counter("decision.suggestions").inc(len(suggestions))
                # Event-to-suggestion latency: from the triggering data's
                # timestamp to the tick that emitted the suggestion
                # (transport lag + the policy's frequency gate).
                hist = tracer.metrics.histogram("stage.decision.latency")
                for s in suggestions:
                    hist.observe(max(0.0, now - s.trigger_time))
        return suggestions

    def set_degraded(self, active: bool) -> None:
        """Toggle degraded mode (monitor data stale — see repro.fabric)."""
        self.degraded = bool(active)

    def gate(self, suggestions: list[SuggestedAction]) -> list[SuggestedAction]:
        """Apply degraded-mode gating to one tick's suggestion batch.

        Called by the live driver *after* :meth:`tick`, never during WAL
        replay: gating filters only the emitted batch and touches no
        policy-runtime state, so replayed ticks stay bit-identical
        regardless of the historical degraded flag.
        """
        if not self.degraded or not suggestions:
            return suggestions
        kept = [s for s in suggestions if s.action in ESSENTIAL_ACTIONS]
        gated = len(suggestions) - len(kept)
        if gated:
            self.suggestions_gated += gated
            if self.tracer.enabled:
                self.tracer.metrics.counter("decision.suggestions_gated").inc(gated)
        return kept

    def tick_envelope(self, now: float) -> Envelope | None:
        """Like :meth:`tick` but packaged as the single JSON message the
        Decision module sends to Arbitration."""
        suggestions = self.tick(now)
        if not suggestions:
            return None
        return self._seq.stamp(
            "decision",
            "decision-stage",
            now,
            {
                "suggestions": [
                    {
                        "policy_id": s.policy_id,
                        "action": s.action.value,
                        "target": s.target,
                        "workflow_id": s.workflow_id,
                        "assess_task": s.assess_task,
                        "params": s.params,
                        "trigger_time": s.trigger_time,
                        "metric_value": s.metric_value,
                    }
                    for s in suggestions
                ]
            },
        )

    def on_task_restart(self, task: str) -> None:
        """Clear windowed history of policies assessing a restarted task.

        A restarted task runs at a new size: averaging its new pace with
        pre-restart values double-counts the old regime and re-triggers
        adjustments that were already applied.  Only windowed policies
        reset — instantaneous (window=1) policies keep their pending
        values so exact-match conditions are never silently dropped.
        (The paper's Fig. 9 shows the metric itself resetting across
        restarts.)
        """
        for rt in self._runtimes:
            if rt.application.assess_task == task and rt.spec.history_window > 1:
                rt.reset_history()

    # -- crash recovery ------------------------------------------------------------
    def state_dict(self) -> dict:
        """Runtime state keyed by creation index (configuration-stable)."""
        return {
            "seq": self._seq.state_dict(),
            "updates_seen": self.updates_seen,
            "updates_matched": self.updates_matched,
            "degraded": self.degraded,
            "suggestions_gated": self.suggestions_gated,
            "runtimes": [rt.state_dict() for rt in self._runtimes],
        }

    def load_state_dict(self, state: dict) -> None:
        runtimes = state.get("runtimes", [])
        if len(runtimes) != len(self._runtimes):
            from repro.errors import JournalError

            raise JournalError(
                f"{len(runtimes)} journaled policy runtimes for "
                f"{len(self._runtimes)} configured — configuration drift"
            )
        self._seq.load_state_dict(state["seq"])
        self.updates_seen = int(state["updates_seen"])
        self.updates_matched = int(state["updates_matched"])
        self.degraded = bool(state.get("degraded", False))
        self.suggestions_gated = int(state.get("suggestions_gated", 0))
        for rt, rt_state in zip(self._runtimes, runtimes):
            rt.load_state_dict(rt_state)
