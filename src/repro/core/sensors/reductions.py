"""Reduction operations: grouped samples → one metric value."""

from __future__ import annotations

import statistics
from collections.abc import Sequence
from typing import Callable

from repro.errors import SensorError

Reduction = Callable[[Sequence[float]], float]


def _first(values: Sequence[float]) -> float:
    return values[0]


def _last(values: Sequence[float]) -> float:
    return values[-1]


REDUCTIONS: dict[str, Reduction] = {
    "MAX": max,
    "MIN": min,
    "SUM": sum,
    "AVG": lambda v: sum(v) / len(v),
    "MEAN": lambda v: sum(v) / len(v),
    "MEDIAN": statistics.median,
    "FIRST": _first,
    "LAST": _last,
    "COUNT": len,
}


def reduce_values(op: str, values: Sequence[float]) -> float:
    """Apply reduction *op* to *values* (non-empty)."""
    fn = REDUCTIONS.get(op.upper())
    if fn is None:
        raise SensorError(f"unknown reduction {op!r}; known: {sorted(REDUCTIONS)}")
    if not values:
        raise SensorError(f"reduction {op!r} over empty group")
    return float(fn(values))
