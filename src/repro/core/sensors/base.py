"""Sensor specification and the bound, pollable sensor instance."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.events import MetricUpdate
from repro.core.sensors.groupby import GRANULARITIES, group_key, task_of_key
from repro.core.sensors.preprocess import preprocess_value
from repro.core.sensors.reductions import reduce_values
from repro.core.sensors.sources import DataSource
from repro.errors import SensorError
from repro.staging.serialization import Sample
from repro.util.validation import check_in


@dataclass(frozen=True)
class GroupBySpec:
    """One granularity/reduction pair of a sensor's group-by clause."""

    granularity: str
    reduction: str = "MAX"

    def __post_init__(self) -> None:
        check_in(self.granularity, GRANULARITIES, "granularity")


@dataclass(frozen=True)
class JoinSpec:
    """Join this sensor's output with another's (paper §2.1 "Join").

    The canonical example is IPC: an instruction-count sensor joined to a
    cycle-count sensor with ``DIV``.
    """

    other_sensor_id: str
    operation: str = "DIV"

    _OPS = ("DIV", "MUL", "ADD", "SUB")

    def __post_init__(self) -> None:
        check_in(self.operation.upper(), self._OPS, "operation")

    def apply(self, a: float, b: float) -> float:
        op = self.operation.upper()
        if op == "DIV":
            if b == 0:
                raise SensorError("join DIV by zero")
            return a / b
        if op == "MUL":
            return a * b
        if op == "ADD":
            return a + b
        return a - b


@dataclass(frozen=True)
class SensorSpec:
    """A portable sensor definition, reusable across tasks and machines.

    Attributes:
        sensor_id: unique name, referenced by policies.
        source_type: one of ADIOS2 / TAUADIOS2 / DISKSCAN / FILEREAD /
            ERRORSTATUS.
        group_by: granularity/reduction pairs; one metric stream each.
        preprocess: optional payload-distilling op (NORM, MEAN, ...).
        join: optional join with another sensor's output.
    """

    sensor_id: str
    source_type: str
    group_by: tuple[GroupBySpec, ...] = (GroupBySpec("task", "MAX"),)
    preprocess: str | None = None
    join: JoinSpec | None = None

    def __post_init__(self) -> None:
        if not self.group_by:
            raise SensorError(f"sensor {self.sensor_id!r} needs at least one group-by")
        grans = [g.granularity for g in self.group_by]
        if len(set(grans)) != len(grans):
            raise SensorError(f"sensor {self.sensor_id!r}: duplicate granularity in group-by")


@dataclass
class SensorInstance:
    """A sensor bound to one monitored task with a concrete data source.

    "Sensors act as portable functions invoked using inputs that vary
    across workflow tasks and architectures" (§2.1) — the spec is the
    function; the instance is the invocation.
    """

    spec: SensorSpec
    workflow_id: str
    task: str
    source: DataSource
    params: dict[str, Any] = field(default_factory=dict)

    def poll(self, now: float) -> list[MetricUpdate]:
        """Procure new samples and turn them into metric updates.

        Samples are grouped per (group key, step, production time) so
        distinct observations stay distinct — an EQ-threshold policy must
        see every progress value, not only the batch extremum.
        """
        samples = self.source.poll(now)
        if not samples:
            return []
        updates: list[MetricUpdate] = []
        for gb in self.spec.group_by:
            groups: dict[tuple, list[Sample]] = {}
            for s in samples:
                groups.setdefault((group_key(gb.granularity, s), s.step, s.time), []).append(s)
            for (key, step, time), members in sorted(groups.items(), key=lambda kv: (kv[0][2], kv[0][1])):
                values = [preprocess_value(self.spec.preprocess, m.value) for m in members]
                updates.append(
                    MetricUpdate(
                        sensor_id=self.spec.sensor_id,
                        workflow_id=self.workflow_id,
                        task=task_of_key(gb.granularity, key),
                        granularity=gb.granularity,
                        key=key,
                        value=reduce_values(gb.reduction, values),
                        time=time,
                        step=step,
                        var=members[0].var,
                    )
                )
        return updates

    def reconnect(self) -> None:
        """Reset the data source after the monitored task restarted."""
        self.source.reconnect()
