"""Preprocessing operations: raw sample payload → scalar.

"Preprocessing operations distill the data before it is processed into
the desired metric ... useful when the input read from each process is
sizeable, for instance, a vector or multi-dimensional array" (§2.1).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import SensorError

Preprocess = Callable[[Any], float]


def _as_array(value: Any) -> np.ndarray:
    return np.asarray(value, dtype=float)


def _identity(value: Any) -> float:
    arr = _as_array(value)
    if arr.ndim == 0:
        return float(arr)
    raise SensorError("IDENTITY preprocessing requires a scalar value")


PREPROCESS: dict[str, Preprocess] = {
    "IDENTITY": _identity,
    "NORM": lambda v: float(np.linalg.norm(_as_array(v))),
    "MEAN": lambda v: float(_as_array(v).mean()),
    "SUM": lambda v: float(_as_array(v).sum()),
    "MAX": lambda v: float(_as_array(v).max()),
    "MIN": lambda v: float(_as_array(v).min()),
    "ABSMAX": lambda v: float(np.abs(_as_array(v)).max()),
    "STD": lambda v: float(_as_array(v).std()),
}


def preprocess_value(op: str | None, value: Any) -> float:
    """Distill *value* with *op* (None = expect a scalar)."""
    if op is None:
        return _identity(value)
    fn = PREPROCESS.get(op.upper())
    if fn is None:
        raise SensorError(f"unknown preprocessing op {op!r}; known: {sorted(PREPROCESS)}")
    arr = _as_array(value)
    if arr.size == 0:
        raise SensorError(f"preprocessing {op!r} over empty value")
    return float(fn(value))
