"""Sensors: the Monitor stage's programmable constructs (paper §2.1).

A sensor defines *what* to procure (source type), optional
*preprocessing* of raw values, *group-by and reduction* to turn samples
into metrics at a chosen granularity, and optional *joins* with other
sensors for compound metrics like IPC.
"""

from repro.core.sensors.reductions import REDUCTIONS, reduce_values
from repro.core.sensors.preprocess import PREPROCESS, preprocess_value
from repro.core.sensors.groupby import GRANULARITIES, group_key
from repro.core.sensors.base import GroupBySpec, JoinSpec, SensorInstance, SensorSpec
from repro.core.sensors.sources import (
    DataSource,
    DiskScanSource,
    ErrorStatusSource,
    FileReadSource,
    StreamSource,
    make_source,
)

__all__ = [
    "REDUCTIONS",
    "reduce_values",
    "PREPROCESS",
    "preprocess_value",
    "GRANULARITIES",
    "group_key",
    "SensorSpec",
    "SensorInstance",
    "GroupBySpec",
    "JoinSpec",
    "DataSource",
    "StreamSource",
    "DiskScanSource",
    "FileReadSource",
    "ErrorStatusSource",
    "make_source",
]
