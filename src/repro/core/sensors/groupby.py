"""Group-by granularities (paper §2.1).

* ``task`` — all processes of one task, cluster-wide.
* ``node-task`` — processes of one task sharing a compute node.
* ``workflow`` — all tasks of the workflow.
* ``node-workflow`` — all workflow processes sharing a compute node.
"""

from __future__ import annotations

from repro.errors import SensorError
from repro.staging.serialization import Sample

GRANULARITIES = ("task", "node-task", "workflow", "node-workflow")


def group_key(granularity: str, sample: Sample) -> tuple:
    """The group key a sample falls into at *granularity*."""
    if granularity == "task":
        return (sample.task,)
    if granularity == "node-task":
        return (sample.task, sample.node_id)
    if granularity == "workflow":
        return (sample.workflow_id,)
    if granularity == "node-workflow":
        return (sample.workflow_id, sample.node_id)
    raise SensorError(f"unknown granularity {granularity!r}; known: {GRANULARITIES}")


def task_of_key(granularity: str, key: tuple) -> str:
    """The task a group key refers to ("" for workflow granularities)."""
    if granularity in ("task", "node-task"):
        return key[0]
    return ""
