"""Source-type adapters: where monitoring data comes from (paper §2.1/§3).

The implementation supports the paper's source types:

* ``ADIOS2`` — application output streamed in situ,
* ``TAUADIOS2`` — TAU profiler measurements streamed via ADIOS2,
* ``DISKSCAN`` — scan the filesystem for new output files,
* ``FILEREAD`` — read a variable from a (changing) file,
* ``ERRORSTATUS`` — exit statuses saved by Savanna when tasks end.

Each adapter exposes ``poll(now) -> list[Sample]`` (new observations
since the previous poll), ``reconnect()`` for task restarts, and
``read_lag(perf)`` — the per-source read latency the cost analysis in
§4.6 measured (≈0.2 s for a file variable, ≈0.5 s for streamed TAU data).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.cluster.machine import MachinePerf
from repro.errors import SensorError
from repro.staging.filesystem import SimFilesystem
from repro.staging.hub import DataHub
from repro.staging.serialization import Sample
from repro.staging.stream import StreamReader

SOURCE_TYPES = ("ADIOS2", "TAUADIOS2", "DISKSCAN", "FILEREAD", "ERRORSTATUS", "HEALTH")


class DataSource:
    """Base adapter; subclasses implement the actual procurement."""

    def poll(self, now: float) -> list[Sample]:
        raise NotImplementedError

    def reconnect(self) -> None:
        """Re-establish connections after the monitored task restarted."""

    def read_lag(self, perf: MachinePerf) -> float:
        """Seconds between data availability and the metric reaching DYFLOW."""
        return perf.file_read_lag

    # -- crash recovery ------------------------------------------------------
    def cursor_state(self) -> dict:
        """JSON-serializable read position (journal barrier state)."""
        return {}

    def restore_cursor(self, state: dict) -> None:
        """Resume reading exactly where :meth:`cursor_state` left off."""


class StreamSource(DataSource):
    """ADIOS2/TAUADIOS2: drain a staging stream channel.

    Stream steps carry lists of :class:`Sample` (profiler output) or raw
    dict payloads, which are wrapped into samples using the bound task
    identity.
    """

    def __init__(
        self,
        hub: DataHub,
        channel_name: str,
        workflow_id: str,
        task: str,
        var: str | None = None,
    ) -> None:
        self.hub = hub
        self.channel_name = channel_name
        self.workflow_id = workflow_id
        self.task = task
        self.var = var
        self._reader: StreamReader | None = None

    def _ensure_reader(self) -> StreamReader:
        if self._reader is None:
            channel = self.hub.channel(self.channel_name)
            self._reader = channel.open_reader(f"monitor:{self.task}")
            self._reader.seek_latest()
        return self._reader

    def poll(self, now: float) -> list[Sample]:
        reader = self._ensure_reader()
        out: list[Sample] = []
        for record in reader.drain():
            if isinstance(record.data, list):
                for s in record.data:
                    if isinstance(s, Sample) and (self.var is None or s.var == self.var):
                        out.append(s)
            elif isinstance(record.data, dict):
                for var, value in record.data.items():
                    if self.var is not None and var != self.var:
                        continue
                    out.append(
                        Sample(
                            time=record.time,
                            workflow_id=self.workflow_id,
                            task=self.task,
                            rank=-1,
                            node_id="",
                            var=var,
                            value=value,
                            step=record.step,
                        )
                    )
        return out

    def reconnect(self) -> None:
        """Re-open the reader immediately at the newest staged step.

        Eager (not lazy) so that data published between the reconnect and
        the next poll is observed rather than skipped.
        """
        self._reader = None
        self._ensure_reader()

    def read_lag(self, perf: MachinePerf) -> float:
        return perf.stream_read_lag

    def cursor_state(self) -> dict:
        if self._reader is None:
            return {"connected": False}
        return {
            "connected": True,
            "cursor": self._reader.cursor,
            "missed": self._reader.missed_steps,
        }

    def restore_cursor(self, state: dict) -> None:
        if not state.get("connected"):
            self._reader = None
            return
        reader = self._ensure_reader()
        reader._cursor = int(state["cursor"])
        reader.missed_steps = int(state.get("missed", 0))


class DiskScanSource(DataSource):
    """DISKSCAN: new files matching a glob become samples.

    The value is extracted from each file (default: its ``step`` metadata
    plus one — "number of timesteps completed", so file ``...out.N``
    reports N+1 completed steps).
    """

    def __init__(
        self,
        fs: SimFilesystem,
        pattern: str,
        workflow_id: str,
        task: str,
        var: str = "nsteps",
        value_fn: Callable[[Any], float] | None = None,
    ) -> None:
        self.fs = fs
        self.pattern = pattern
        self.workflow_id = workflow_id
        self.task = task
        self.var = var
        self.value_fn = value_fn
        self._seen: set[str] = set()

    def _value_of(self, entry) -> float:
        if self.value_fn is not None:
            return float(self.value_fn(entry))
        meta = entry.meta or {}
        if "step" in meta:
            return float(meta["step"]) + 1.0
        if isinstance(entry.data, dict) and "step" in entry.data:
            return float(entry.data["step"]) + 1.0
        raise SensorError(f"DISKSCAN cannot extract a value from {entry.path!r}")

    def poll(self, now: float) -> list[Sample]:
        out: list[Sample] = []
        for entry in self.fs.scan(self.pattern):
            if entry.path in self._seen:
                continue
            self._seen.add(entry.path)
            out.append(
                Sample(
                    time=entry.mtime,
                    workflow_id=self.workflow_id,
                    task=self.task,
                    rank=-1,
                    node_id="",
                    var=self.var,
                    value=self._value_of(entry),
                    step=int(entry.meta.get("step", -1)) if entry.meta else -1,
                )
            )
        return out

    def reconnect(self) -> None:
        # Already-seen files stay seen: a restarted task appends new ones.
        pass

    def cursor_state(self) -> dict:
        return {"seen": sorted(self._seen)}

    def restore_cursor(self, state: dict) -> None:
        self._seen = set(state.get("seen", []))


class FileReadSource(DataSource):
    """FILEREAD: sample a variable from one file whenever its mtime moves."""

    def __init__(
        self,
        fs: SimFilesystem,
        path: str,
        workflow_id: str,
        task: str,
        var: str,
    ) -> None:
        self.fs = fs
        self.path = path
        self.workflow_id = workflow_id
        self.task = task
        self.var = var
        self._last_mtime: float | None = None

    def poll(self, now: float) -> list[Sample]:
        if not self.fs.exists(self.path):
            return []
        entry = self.fs.stat(self.path)
        if self._last_mtime is not None and entry.mtime <= self._last_mtime:
            return []
        self._last_mtime = entry.mtime
        data = entry.data
        if isinstance(data, dict):
            if self.var not in data:
                raise SensorError(f"file {self.path!r} has no variable {self.var!r}")
            value = data[self.var]
        else:
            value = data
        return [
            Sample(
                time=entry.mtime,
                workflow_id=self.workflow_id,
                task=self.task,
                rank=-1,
                node_id="",
                var=self.var,
                value=value,
            )
        ]

    def cursor_state(self) -> dict:
        return {"last_mtime": self._last_mtime}

    def restore_cursor(self, state: dict) -> None:
        mtime = state.get("last_mtime")
        self._last_mtime = float(mtime) if mtime is not None else None


class ErrorStatusSource(DataSource):
    """ERRORSTATUS: new exit-status records saved by the WMS (§4.5).

    Savanna appends ``{code, time, rank, ...}`` records when a task
    instance ends; each new record becomes one sample with the exit code
    as value.
    """

    def __init__(self, fs: SimFilesystem, path: str, workflow_id: str, task: str) -> None:
        self.fs = fs
        self.path = path
        self.workflow_id = workflow_id
        self.task = task
        self._consumed = 0

    def poll(self, now: float) -> list[Sample]:
        if not self.fs.exists(self.path):
            return []
        records = self.fs.read(self.path)
        if not isinstance(records, list):
            raise SensorError(f"status file {self.path!r} is not a record list")
        out: list[Sample] = []
        for record in records[self._consumed:]:
            out.append(
                Sample(
                    time=float(record.get("time", now)),
                    workflow_id=self.workflow_id,
                    task=self.task,
                    rank=int(record.get("rank", 0)),
                    node_id="",
                    var="exit_code",
                    value=float(record["code"]),
                )
            )
        self._consumed = len(records)
        return out

    def cursor_state(self) -> dict:
        return {"consumed": self._consumed}

    def restore_cursor(self, state: dict) -> None:
        self._consumed = int(state.get("consumed", 0))


def make_source(
    source_type: str,
    hub: DataHub,
    workflow_id: str,
    task: str,
    info_source: str | None = None,
    var: str | None = None,
) -> DataSource:
    """Build the adapter for *source_type* bound to one monitored task.

    ``info_source`` is the XML's per-task source string: a channel name
    for stream types, a glob for DISKSCAN, a path for FILEREAD and
    ERRORSTATUS.  Stream and status types default to the launcher's
    naming conventions when omitted.
    """
    st = source_type.upper()
    if st == "TAUADIOS2":
        name = info_source or f"tau-{workflow_id}-{task}"
        return StreamSource(hub, name, workflow_id, task, var=var)
    if st == "ADIOS2":
        name = info_source or f"data-{workflow_id}-{task}"
        return StreamSource(hub, name, workflow_id, task, var=var)
    if st == "DISKSCAN":
        if not info_source:
            raise SensorError("DISKSCAN requires an info-source glob pattern")
        return DiskScanSource(hub.filesystem, info_source, workflow_id, task, var=var or "nsteps")
    if st == "FILEREAD":
        if not info_source:
            raise SensorError("FILEREAD requires an info-source path")
        if not var:
            raise SensorError("FILEREAD requires a variable name")
        return FileReadSource(hub.filesystem, info_source, workflow_id, task, var)
    if st == "ERRORSTATUS":
        path = info_source or f"status/{workflow_id}/{task}"
        return ErrorStatusSource(hub.filesystem, path, workflow_id, task)
    if st == "HEALTH":
        # Health sources read the orchestrator's own health engine, not
        # the data hub — the runtimes bind them directly in monitor_task.
        raise SensorError(
            "HEALTH sources are runtime-bound: configure an ObservabilitySpec "
            "and let the orchestrator's monitor_task bind them"
        )
    raise SensorError(f"unknown source type {source_type!r}; known: {SOURCE_TYPES}")
