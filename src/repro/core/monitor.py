"""Monitor stage: client/server procurement of runtime metrics (paper §3).

The implementation mirrors the paper's architecture: one or more
**clients** execute the sensors — connecting to streams, scanning disks,
reading files — and ship metric updates to a single **server** (running
on the launch node) that filters out-of-order messages, tracks task
restarts, and forwards clean updates to the Decision stage.

The transport is abstract: the simulated driver delivers each client
envelope after the source's read lag (reproducing §4.6's measured
0.2 s file vs ≈0.5 s stream lags); the threaded driver moves the same
envelopes over real queues.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.cluster.machine import MachinePerf
from repro.core.events import MetricUpdate
from repro.core.sensors.base import SensorInstance
from repro.errors import SensorError
from repro.telemetry.metrics import LatencyHistogram
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.util.jsonmsg import DedupFilter, Envelope, OutOfOrderFilter, SequenceTracker

if TYPE_CHECKING:
    from repro.fabric.spec import NetworkSpec

# The observability health engine's pseudo-task name (kept in sync with
# repro.observability.health.HEALTH_TASK; importing it would cycle).
_HEALTH_TASK = "__dyflow__"


@dataclass
class MonitorTaskBinding:
    """One (monitored task, sensor instance) pair living on a client."""

    instance: SensorInstance

    @property
    def task(self) -> str:
        return self.instance.task

    @property
    def sensor_id(self) -> str:
        return self.instance.spec.sensor_id


class MonitorClient:
    """Executes sensors and emits timestamped, sequenced envelopes."""

    def __init__(self, client_id: str, perf: MachinePerf) -> None:
        self.client_id = client_id
        self.perf = perf
        self._bindings: list[MonitorTaskBinding] = []
        self._seq = SequenceTracker()

    # -- configuration -----------------------------------------------------------
    def add_binding(self, instance: SensorInstance) -> MonitorTaskBinding:
        binding = MonitorTaskBinding(instance)
        self._bindings.append(binding)
        return binding

    @property
    def bindings(self) -> list[MonitorTaskBinding]:
        return list(self._bindings)

    # -- lifecycle ----------------------------------------------------------------
    def on_task_restart(self, task: str) -> None:
        """Reset connections of every sensor watching *task* (§2.1)."""
        for b in self._bindings:
            if b.task == task:
                b.instance.reconnect()

    # -- crash recovery ------------------------------------------------------------
    def state_dict(self) -> dict:
        """Sequence counters + per-binding source cursors (creation order)."""
        return {
            "seq": self._seq.state_dict(),
            "cursors": [b.instance.source.cursor_state() for b in self._bindings],
        }

    def load_state_dict(self, state: dict) -> None:
        self._seq.load_state_dict(state["seq"])
        cursors = state.get("cursors", [])
        if len(cursors) != len(self._bindings):
            from repro.errors import JournalError

            raise JournalError(
                f"client {self.client_id}: {len(cursors)} journaled cursors "
                f"for {len(self._bindings)} bindings — configuration drift"
            )
        for binding, cursor in zip(self._bindings, cursors):
            binding.instance.source.restore_cursor(cursor)

    # -- collection ------------------------------------------------------------------
    def collect(self, now: float) -> list[tuple[float, Envelope]]:
        """Run every sensor; return ``(read_lag, envelope)`` pairs.

        One envelope is emitted per sensor per round (collecting the
        updates of all its task bindings).  Joined sensors are resolved
        within the round: a sensor with a ``join`` spec pairs its updates
        with the partner sensor's from the same round, matched on
        (granularity, key, step).
        """
        round_updates: dict[str, list[MetricUpdate]] = {}
        lags: dict[str, float] = {}
        specs: dict[str, SensorInstance] = {}
        for b in self._bindings:
            ups = b.instance.poll(now)
            if ups:
                round_updates.setdefault(b.sensor_id, []).extend(ups)
            lags[b.sensor_id] = max(
                lags.get(b.sensor_id, 0.0), b.instance.source.read_lag(self.perf)
            )
            specs.setdefault(b.sensor_id, b.instance)

        out: list[tuple[float, Envelope]] = []
        for sensor_id, ups in round_updates.items():
            spec = specs[sensor_id].spec
            if spec.join is not None:
                ups = self._join(spec, ups, round_updates.get(spec.join.other_sensor_id, []))
            if not ups:
                continue
            env = self._seq.stamp(
                "sensor-update",
                f"{self.client_id}/{sensor_id}",
                now,
                {"updates": [u.to_dict() for u in ups]},
            )
            # Cache the originals so an in-process server skips re-decoding
            # the payload dicts (to_dict/from_dict round-trips exactly).
            env.attach_decoded(tuple(ups))
            out.append((lags.get(sensor_id, self.perf.file_read_lag), env))
        return out

    @staticmethod
    def _join(spec, ups: list[MetricUpdate], partner: list[MetricUpdate]) -> list[MetricUpdate]:
        by_key = {(p.granularity, p.key, p.step): p for p in partner}
        joined = []
        for u in ups:
            other = by_key.get((u.granularity, u.key, u.step))
            if other is None:
                continue
            joined.append(
                MetricUpdate(
                    sensor_id=u.sensor_id,
                    workflow_id=u.workflow_id,
                    task=u.task,
                    granularity=u.granularity,
                    key=u.key,
                    value=spec.join.apply(u.value, other.value),
                    time=max(u.time, other.time),
                    step=u.step,
                    var=f"{u.var}/{other.var}",
                )
            )
        return joined


class MonitorServer:
    """Filters and forwards client updates to the Decision stage."""

    def __init__(
        self,
        on_updates: Callable[[list[MetricUpdate]], None] | None = None,
        record_history: bool = False,
    ) -> None:
        self._filter: OutOfOrderFilter | DedupFilter = OutOfOrderFilter()
        self._on_updates = on_updates
        self.received = 0
        self.forwarded = 0
        self.record_history = record_history
        self.history: list[MetricUpdate] = []
        # Per-task time of the freshest accepted update — the watchdog's
        # transport-level liveness signal (a hung app stops producing).
        self.last_seen: dict[str, float] = {}
        self.tracer: Tracer = NULL_TRACER
        self._clock: Callable[[], float] | None = None
        # Fabric mode (configure_fabric): bounded ingress queue with
        # priority-aware shedding, seq-based dedup, ingest staleness.
        self._network: "NetworkSpec | None" = None
        self._ingress: deque[Envelope] = deque()
        self.offered = 0
        self.shed_sensor = 0
        self.shed_health = 0
        self.ingest_staleness = LatencyHistogram("monitor.ingest.staleness")

    def set_sink(self, on_updates: Callable[[list[MetricUpdate]], None]) -> None:
        self._on_updates = on_updates

    # -- fabric mode ---------------------------------------------------------------
    def configure_fabric(self, network: "NetworkSpec") -> None:
        """Put the server behind a :class:`~repro.fabric.link.FabricLink`.

        Swaps the out-of-order filter for seq-based dedup (retransmitted
        and reordered envelopes are *expected*, only true duplicates
        drop) and arms the bounded ingress queue.  Call before any
        envelope arrives — the filters' histories are not migrated.
        """
        if self._filter.accepted or self._filter.dropped:
            raise SensorError("configure_fabric must run before the first envelope")
        self._network = network
        self._filter = DedupFilter()

    @property
    def fabric_enabled(self) -> bool:
        return self._network is not None

    @property
    def duplicates(self) -> int:
        """Envelopes rejected as already-delivered (fabric dedup mode)."""
        return self._filter.duplicates if isinstance(self._filter, DedupFilter) else 0

    @property
    def ingress_depth(self) -> int:
        return len(self._ingress)

    @staticmethod
    def _is_health(env: Envelope) -> bool:
        cached = env.decoded()
        if cached is not None:
            return bool(cached) and all(u.task == _HEALTH_TASK for u in cached)
        updates = env.payload.get("updates", [])
        return bool(updates) and all(u.get("task") == _HEALTH_TASK for u in updates)

    def offer(self, env: Envelope) -> bool:
        """Fabric ingress admission; True means queued (and worth acking).

        When the queue is full the oldest SENSOR envelope is shed first
        (freshness beats completeness for pace data); an arriving SENSOR
        envelope finding a queue full of HEALTH updates is itself
        rejected — unacked, so the client's retransmit timer becomes the
        backpressure signal.
        """
        if self._network is None:
            raise SensorError("offer() requires configure_fabric()")
        self.offered += 1
        cap = self._network.ingress_capacity
        if cap and len(self._ingress) >= cap:
            victim = next((e for e in self._ingress if not self._is_health(e)), None)
            if victim is not None:
                self._ingress.remove(victim)
                self.shed_sensor += 1
            elif self._is_health(env):
                self._ingress.popleft()
                self.shed_health += 1
            else:
                self.shed_sensor += 1
                if self.tracer.enabled:
                    self.tracer.metrics.counter("monitor.envelopes_shed").inc()
                return False
            if self.tracer.enabled:
                self.tracer.metrics.counter("monitor.envelopes_shed").inc()
        self._ingress.append(env)
        return True

    def take_ingress(self) -> list[Envelope]:
        """Pop this tick's drain batch (bounded by ``drain_per_tick``)."""
        if self._network is None:
            return []
        budget = self._network.drain_per_tick
        n = len(self._ingress) if budget == 0 else min(budget, len(self._ingress))
        return [self._ingress.popleft() for _ in range(n)]

    def note_staleness(self, age: float) -> None:
        """Record one envelope's ingest staleness (now - envelope.time)."""
        self.ingest_staleness.observe(age)
        if self.tracer.enabled:
            self.tracer.metrics.histogram("monitor.ingest.staleness").observe(age)

    def set_tracer(self, tracer: Tracer, clock: Callable[[], float] | None = None) -> None:
        """Attach a tracer; *clock* (runtime time) enables ingest-latency metrics."""
        self.tracer = tracer
        self._clock = clock

    @property
    def dropped(self) -> int:
        return self._filter.dropped

    def receive(self, envelope: Envelope) -> list[MetricUpdate]:
        """Ingest one client envelope; returns the forwarded updates."""
        self.received += 1
        if envelope.kind != "sensor-update":
            raise SensorError(f"monitor server got unexpected message kind {envelope.kind!r}")
        if not self._filter.accept(envelope):
            if self.tracer.enabled:
                self.tracer.metrics.counter("monitor.envelopes_dropped").inc()
            return []
        cached = envelope.decoded()
        if cached is not None:
            # In-process fast path: the client attached the original
            # MetricUpdate objects at stamp time (bit-identical to
            # re-decoding — to_dict/from_dict round-trips exactly).
            updates = list(cached)
        else:
            updates = [MetricUpdate.from_dict(d) for d in envelope.payload.get("updates", [])]
        self.forwarded += len(updates)
        for u in updates:
            prev = self.last_seen.get(u.task)
            if prev is None or envelope.time > prev:
                self.last_seen[u.task] = envelope.time
        if self.record_history:
            self.history.extend(updates)
        if self.tracer.enabled:
            metrics = self.tracer.metrics
            metrics.counter("monitor.envelopes").inc()
            metrics.counter("monitor.updates").inc(len(updates))
            attrs = {"sender": envelope.sender, "updates": len(updates)}
            if self._clock is not None:
                # Transport latency: how stale the data is on arrival
                # (read lag + network lag under the simulated driver).
                lag = max(0.0, self._clock() - envelope.time)
                metrics.histogram("stage.monitor.latency").observe(lag)
                attrs["lag"] = lag
            span = self.tracer.start_span("monitor.ingest", "monitor", **attrs)
            self.tracer.end_span(span)
        if self._on_updates is not None and updates:
            self._on_updates(updates)
        return updates

    def on_task_restart(self, task: str) -> None:
        """A task restarted: affected clients may renumber their streams.

        The server cannot know which sensors a task feeds, so it resets
        every sender epoch — strictly safe: it only widens what the
        filter will accept going forward.  In fabric mode the dedup
        filter keeps its memory instead: Monitor clients survive task
        restarts and never renumber, and forgetting seen seqs would
        re-admit retransmitted copies as fresh data (double delivery).
        """
        if self.fabric_enabled:
            return
        self._filter.reset_all()

    # -- crash recovery ------------------------------------------------------
    def fabric_state_dict(self) -> dict:
        """The ingress-side state the tick barrier journals in fabric mode.

        The queue itself is journaled here (not rebuilt from ``obs``
        records: those are appended at *drain*, so offered-but-undrained
        envelopes exist only in this snapshot).  The ingest-staleness
        histogram is telemetry, not state — it is not journaled.
        """
        return {
            "queue": [e.to_json() for e in self._ingress],
            "offered": self.offered,
            "shed_sensor": self.shed_sensor,
            "shed_health": self.shed_health,
        }

    def load_fabric_state(self, state: dict) -> None:
        self._ingress = deque(Envelope.from_json(s) for s in state["queue"])
        self.offered = int(state["offered"])
        self.shed_sensor = int(state["shed_sensor"])
        self.shed_health = int(state["shed_health"])

    def state_dict(self) -> dict:
        """Full server state; history included only when recorded."""
        state = {
            "filter": self._filter.state_dict(),
            "received": self.received,
            "forwarded": self.forwarded,
            "last_seen": dict(self.last_seen),
            "history": [u.to_dict() for u in self.history] if self.record_history else [],
        }
        if self.fabric_enabled:
            state["fabric"] = self.fabric_state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        self._filter.load_state_dict(state["filter"])
        self.received = int(state["received"])
        self.forwarded = int(state["forwarded"])
        self.last_seen = {k: float(v) for k, v in state["last_seen"].items()}
        self.history = [MetricUpdate.from_dict(d) for d in state.get("history", [])]
        if self.fabric_enabled and state.get("fabric") is not None:
            self.load_fabric_state(state["fabric"])
