"""Arbitration stage: Algorithm 1 of the paper.

Turns the Decision stage's suggested actions into a feasible, consistent
plan of low-level operations:

1. resolve conflicts among suggestions using policy priorities,
2. add dependent actions (tight dependents restart with their parent),
3. map high-level actions to stop/start primitives and compute the
   resources they need,
4. when free resources are insufficient, victimize the lowest-priority
   running task (strictly lower priority than the acquirer) — or park
   unsatisfiable starts in the waiting queue / discard opportunistic
   growth,
5. when resources free up, start waiting tasks in priority order,
6. order operations (releases before acquires) and emit the revised
   resource assignment.

The stage also implements the two time gates from §4.4: a *warmup*
window at experiment start and a *settle* window after every executed
plan, during which suggestions are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cluster.allocation import ResourceSet
from repro.cluster.resource_manager import place_cores
from repro.core.actions import ActionType, SuggestedAction, actions_conflict
from repro.core.lowlevel import PHASE_ACQUIRE, PHASE_RELEASE, ActionPlan, LowLevelOp
from repro.core.rules import ArbitrationRules
from repro.errors import AllocationError
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.util.ids import IdGenerator
from repro.wms.launcher import Savanna


@dataclass
class WaitingEntry:
    """A task parked until resources become available (T_waiting)."""

    task: str
    nprocs: int
    per_node_limit: int | None
    params: dict[str, Any] = field(default_factory=dict)
    user_script: str | None = None
    enqueued: float = 0.0
    reason: str = ""


class _FeasibilityCache:
    """Negative placement-feasibility memo across plan builds.

    A request shape ``(ncores, per_node_limit)`` that could not be placed
    against the *live* resource state stays infeasible until that state
    changes — so ticks that re-try a parked waiting queue against a full
    machine skip the per-node scan entirely.  The epoch key captures
    everything placement feasibility depends on: the resource manager's
    assignment version, every node's health state, and the quarantine
    set (time-based cooldowns expire outside any mutation hook).  Only
    *pristine* shadows (no plan-local releases/takes yet) may consult or
    feed the cache; once a plan mutates its scratch free-set the shapes
    no longer describe the live machine.
    """

    def __init__(self) -> None:
        self._epoch: tuple | None = None
        self._infeasible: set[tuple[int, int | None]] = set()
        #: Memo effectiveness counters for the core profiler; they never
        #: influence placement, so they are not journaled.
        self.hits = 0
        self.misses = 0

    def sync(self, epoch: tuple) -> None:
        if epoch != self._epoch:
            self._epoch = epoch
            self._infeasible.clear()

    def known_infeasible(self, ncores: int, per_node_limit: int | None) -> bool:
        if (ncores, per_node_limit) in self._infeasible:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def note_infeasible(self, ncores: int, per_node_limit: int | None) -> None:
        self._infeasible.add((ncores, per_node_limit))


class _Shadow:
    """Scratch resource bookkeeping while a plan is being built.

    ``core_quota`` is the machine-wide tenancy cap (see
    ``repro.campaign``): the total cores this workflow may hold at
    once.  It is enforced inside :meth:`place`, so every acquire path —
    fresh starts, waiting-queue drains, dependent restarts, packed
    fallbacks — hits the same gate, and victimizing a same-workflow
    task frees quota exactly like it frees cores.
    """

    def __init__(
        self,
        launcher: Savanna,
        cache: _FeasibilityCache | None = None,
        core_quota: int | None = None,
    ) -> None:
        self.launcher = launcher
        self.core_quota = core_quota
        self.nodes = launcher.allocation.nodes
        self.free = launcher.rm.free()
        self.assigned: dict[str, ResourceSet] = {
            name: launcher.rm.assignment(name)
            for name in launcher.rm.owners()
        }
        # Quarantined nodes are excluded exactly like unhealthy ones:
        # Arbitration "ensures the exclusion of problematic resources".
        # Constant within one plan build (simulated time does not advance),
        # so hoisted out of place().
        self.excluded = launcher.rm.excluded_nodes()
        self.pristine = True
        self.cache = cache
        if cache is not None:
            cache.sync((
                launcher.rm.version,
                tuple(n.state.value for n in self.nodes),
                frozenset(self.excluded),
            ))

    def holds(self, task: str) -> bool:
        return task in self.assigned

    def release(self, task: str) -> ResourceSet:
        self.pristine = False
        rs = self.assigned.pop(task, ResourceSet.empty())
        healthy = {n.node_id for n in self.launcher.allocation.healthy_nodes()}
        self.free = self.free.union(rs.restrict_to(healthy))
        return rs

    def place(self, ncores: int, per_node_limit: int | None) -> ResourceSet:
        if self.core_quota is not None:
            held = sum(rs.total_cores for rs in self.assigned.values())
            if held + ncores > self.core_quota:
                raise AllocationError(
                    f"cannot place {ncores} cores: workflow holds {held} of "
                    f"its {self.core_quota}-core tenancy quota"
                )
        cache = self.cache
        usable = cache is not None and self.pristine
        if usable and cache.known_infeasible(ncores, per_node_limit):
            raise AllocationError(
                f"cannot place {ncores} cores"
                f"{f' (limit {per_node_limit}/node)' if per_node_limit else ''}: "
                "known infeasible against current resources"
            )
        try:
            return place_cores(
                self.free, self.nodes, ncores, per_node_limit,
                exclude_nodes=self.excluded,
            )
        except AllocationError:
            if usable:
                cache.note_infeasible(ncores, per_node_limit)
            raise

    def take(self, task: str, rs: ResourceSet) -> None:
        self.pristine = False
        self.free = self.free.subtract(rs)
        self.assigned[task] = rs


class ArbitrationStage:
    """Builds action plans from suggestion batches (Algorithm 1)."""

    def __init__(
        self,
        launcher: Savanna,
        rules: ArbitrationRules,
        warmup: float = 120.0,
        settle: float = 120.0,
        allow_victims: bool = True,
        graceful_stops: bool = True,
        core_quota: int | None = None,
    ) -> None:
        self.launcher = launcher
        self.rules = rules
        self.warmup = warmup
        self.settle = settle
        self.allow_victims = allow_victims
        # Machine-wide tenancy policy (repro.campaign): cap on the total
        # cores this workflow may hold across its tasks, so two tenants'
        # arbiters can share one machine without either absorbing it.
        self.core_quota = core_quota
        # graceful_stops=False lets tasks be killed without finishing the
        # current timestep — the paper notes response times "significantly
        # reduce" this way, at the cost of losing the in-flight step.
        self.graceful_stops = graceful_stops
        self.waiting: dict[str, WaitingEntry] = {}
        self.plans: list[ActionPlan] = []
        self._feasibility = _FeasibilityCache()
        self.discarded_batches = 0
        self._ids = IdGenerator()
        self._gate_until: float | None = None
        self._in_flight: ActionPlan | None = None
        self.tracer: Tracer = NULL_TRACER

    def set_tracer(self, tracer: Tracer) -> None:
        self.tracer = tracer

    # -- lifecycle --------------------------------------------------------------
    def begin(self, now: float) -> None:
        """Experiment started: open the warmup gate."""
        self._gate_until = now + self.warmup

    def on_plan_executed(self, plan: ActionPlan, now: float) -> None:
        """Actuation finished: start the settle-down window."""
        plan.execution_end = now
        self._in_flight = None
        self._gate_until = now + self.settle

    @property
    def in_flight(self) -> ActionPlan | None:
        return self._in_flight

    def memo_stats(self) -> dict[str, int]:
        """Placement-memo effectiveness (consumed by the core profiler)."""
        return {"hits": self._feasibility.hits, "misses": self._feasibility.misses}

    def gated(self, now: float) -> bool:
        """True while suggestions must be discarded (warmup/settle/in-flight)."""
        if self._in_flight is not None:
            return True
        return self._gate_until is not None and now < self._gate_until

    # -- the protocol --------------------------------------------------------------
    def arbitrate(self, suggestions: list[SuggestedAction], now: float) -> ActionPlan | None:
        """Run Algorithm 1 over one suggestion batch.

        Returns a plan for Actuation, or None when gated / nothing to do.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self._arbitrate(suggestions, now)
        span = tracer.start_span(
            "arbitration.arbitrate", "arbitration", suggestions=len(suggestions)
        )
        gated_before = self.discarded_batches
        plan = self._arbitrate(suggestions, now)
        metrics = tracer.metrics
        if plan is not None:
            metrics.counter("arbitration.plans").inc()
            metrics.counter("arbitration.grants").inc(len(plan.accepted))
            metrics.counter("arbitration.denials").inc(len(plan.discarded))
            if plan.victims:
                metrics.counter("arbitration.victims").inc(len(plan.victims))
        if self.discarded_batches > gated_before:
            metrics.counter("arbitration.gated_batches").inc(
                self.discarded_batches - gated_before
            )
        metrics.gauge("arbitration.waiting").set(len(self.waiting))
        tracer.end_span(
            span,
            plan=plan.plan_id if plan is not None else None,
            ops=len(plan.ops) if plan is not None else 0,
        )
        return plan

    def _arbitrate(self, suggestions: list[SuggestedAction], now: float) -> ActionPlan | None:
        if self.gated(now):
            if suggestions:
                self.discarded_batches += 1
            return None
        filtered = self._resolve_conflicts(suggestions)
        filtered = self._drop_noops(filtered)
        if not filtered and not self._drainable(now):
            return None

        plan = ActionPlan(
            plan_id="",  # assigned only if the plan survives with ops
            workflow_id=self.rules.workflow_id,
            created=now,
            ops=[],
            trigger_time=min((s.trigger_time for s in filtered), default=now),
        )
        shadow = _Shadow(
            self.launcher, cache=self._feasibility, core_quota=self.core_quota
        )
        stop_targets: set[str] = set()   # tasks the plan stops (for good)
        start_targets: set[str] = set()  # tasks the plan (re)starts

        # Dependent actions (line 3): dependents of disturbed parents restart.
        dependents = self._dependent_restarts(filtered)

        # Releases first: STOP-type actions.  A STOP also purges any queued
        # START for the same task — conflict resolution (line 2) applies to
        # the waiting queue just as it does to fresh suggestions.
        for s in filtered:
            if s.action == ActionType.STOP:
                self.waiting.pop(s.target, None)
                self._plan_stop(plan, shadow, s.target, reason=s.policy_id, graceful=True)
                stop_targets.add(s.target)
                plan.accepted.append(f"{s.policy_id}:STOP:{s.target}")
            elif s.action == ActionType.SWITCH and s.assess_task:
                if self.launcher.record(s.assess_task).is_active:
                    self._plan_stop(plan, shadow, s.assess_task, reason=s.policy_id, graceful=True)
                    stop_targets.add(s.assess_task)
                    plan.accepted.append(f"{s.policy_id}:SWITCH-STOP:{s.assess_task}")

        # In-place reconfigurations (§6 extension): no resource movement,
        # no dependent restarts — the whole point of the finer-grained op.
        reconfig_targets: set[str] = set()
        for s in filtered:
            if s.action != ActionType.RECONFIG:
                continue
            if s.target in stop_targets or s.target in reconfig_targets:
                plan.discarded.append(f"{s.policy_id}:RECONFIG:{s.target} (conflicts with plan)")
                continue
            plan.ops.append(
                LowLevelOp(
                    op="reconfig_task",
                    task=s.target,
                    phase=PHASE_ACQUIRE,
                    params=dict(s.params),
                    reason=s.policy_id,
                )
            )
            reconfig_targets.add(s.target)
            plan.accepted.append(f"{s.policy_id}:RECONFIG:{s.target}")

        # Acquiring / restarting actions plus waiting-queue entries, in one
        # pass ordered by task priority; at equal priority a waiting task
        # precedes a fresh suggestion (it asked first).  Waiting entries
        # never victimize — they only use resources that are free (line 16).
        acquires: list[tuple[tuple, SuggestedAction | WaitingEntry]] = []
        for s in filtered:
            if s.action in (ActionType.START, ActionType.RESTART, ActionType.ADDCPU,
                            ActionType.RMCPU, ActionType.SWITCH):
                acquires.append(((self.rules.task_priority(s.target), 1, 0.0, s.target), s))
        for entry in self.waiting.values():
            # Waiting entries drain in enqueue order (queue seniority).
            acquires.append(((self.rules.task_priority(entry.task), 0, entry.enqueued, entry.task), entry))
        acquires.sort(key=lambda pair: pair[0])
        for _key, item in acquires:
            if isinstance(item, WaitingEntry):
                self._try_start_waiting(plan, shadow, item, stop_targets, start_targets)
                continue
            s = item
            if s.target in stop_targets or s.target in start_targets:
                plan.discarded.append(f"{s.policy_id}:{s.action.value}:{s.target} (conflicts with plan)")
                continue
            if s.target in dependents and s.action in (ActionType.ADDCPU, ActionType.RMCPU):
                # The dependency-driven restart supersedes resizing (§4.4:
                # Rendering is restarted, not grown, when Isosurface grows).
                plan.discarded.append(f"{s.policy_id}:{s.action.value}:{s.target} (dependency restart)")
                continue
            ok = self._plan_acquire(plan, shadow, s, stop_targets, start_targets, now)
            if ok:
                start_targets.add(s.target)
                plan.accepted.append(f"{s.policy_id}:{s.action.value}:{s.target}")

        # Dependent restarts for every disturbed parent now in the plan.
        for dep in sorted(dependents, key=lambda d: (self.rules.task_priority(d), d)):
            parent_disturbed = dependents[dep] & (stop_targets | start_targets)
            if not parent_disturbed:
                continue
            if dep in stop_targets or dep in start_targets:
                continue
            if not self.launcher.record(dep).is_running:
                continue
            current = shadow.assigned.get(dep, ResourceSet.empty())
            nprocs = current.total_cores
            self._plan_stop(plan, shadow, dep, reason="dependency", graceful=True)
            try:
                rs = shadow.place(nprocs, None)
            except AllocationError:
                self._enqueue_waiting(dep, nprocs, None, {}, None, now, "dependency")
                continue
            shadow.take(dep, rs)
            self._plan_start(plan, dep, rs, None, {}, reason="dependency")
            start_targets.add(dep)

        # Line 16 second chance: this plan's stops may have freed cores for
        # tasks still waiting (e.g. a SWITCH releasing its assessed task).
        self._drain_waiting(plan, shadow, start_targets, stop_targets, now)

        if not plan.ops:
            return None
        plan.plan_id = self._ids.next("plan")
        plan.assign_op_keys()
        plan.reassignment = dict(shadow.assigned)
        self._in_flight = plan
        self.plans.append(plan)
        return plan

    # -- stage 1: conflict resolution -------------------------------------------------
    def _resolve_conflicts(self, suggestions: list[SuggestedAction]) -> list[SuggestedAction]:
        """Per-target conflict resolution by policy priority (line 2)."""
        by_target: dict[str, list[SuggestedAction]] = {}
        seen: set[tuple] = set()
        for s in suggestions:
            key = (s.policy_id, s.action, s.target)
            if key in seen:
                continue
            seen.add(key)
            by_target.setdefault(s.target, []).append(s)
        out: list[SuggestedAction] = []
        for target, group in by_target.items():
            group.sort(key=lambda s: (self.rules.policy_priority(s.policy_id), s.policy_id))
            kept: list[SuggestedAction] = []
            for s in group:
                if any(actions_conflict(s.action, k.action) for k in kept):
                    continue  # lower-priority conflicting action deferred
                kept.append(s)
            out.extend(kept)
        return out

    # -- stage 2: drop actions that no longer apply ---------------------------------------
    def _drop_noops(self, suggestions: list[SuggestedAction]) -> list[SuggestedAction]:
        out = []
        for s in suggestions:
            rec = self.launcher.record(s.target)
            if s.action == ActionType.START and (rec.is_active or s.target in self.waiting):
                if s.target in self.waiting:
                    # Refresh the waiting entry's parameters.
                    self.waiting[s.target].params.update(s.params)
                continue
            if s.action == ActionType.STOP and not rec.is_active:
                # Nothing to stop — but a STOP still cancels a queued START
                # for the same task (conflict resolution reaches T_waiting).
                self.waiting.pop(s.target, None)
                continue
            if (
                s.action in (ActionType.ADDCPU, ActionType.RMCPU, ActionType.RECONFIG)
                and not rec.is_running
            ):
                continue
            out.append(s)
        return out

    # -- dependency analysis ------------------------------------------------------------
    def _dependent_restarts(self, filtered: list[SuggestedAction]) -> dict[str, set[str]]:
        """dependent task -> set of disturbed parents (from this batch)."""
        out: dict[str, set[str]] = {}
        for s in filtered:
            disturbed = None
            if s.action in (ActionType.STOP, ActionType.RESTART, ActionType.ADDCPU, ActionType.RMCPU):
                disturbed = s.target
            elif s.action == ActionType.SWITCH and s.assess_task:
                disturbed = s.assess_task
            if disturbed is None:
                continue
            for dep in self.rules.transitive_tight_dependents(disturbed):
                out.setdefault(dep, set()).add(disturbed)
        return out

    # -- op planning ----------------------------------------------------------------------
    def _plan_stop(self, plan: ActionPlan, shadow: _Shadow, task: str, reason: str, graceful: bool) -> None:
        if self.launcher.record(task).is_active:
            plan.ops.append(
                LowLevelOp(
                    op="stop_task",
                    task=task,
                    phase=PHASE_RELEASE,
                    graceful=graceful and self.graceful_stops,
                    reason=reason,
                )
            )
        shadow.release(task)

    def _plan_start(
        self,
        plan: ActionPlan,
        task: str,
        rs: ResourceSet,
        user_script: str | None,
        params: dict[str, Any],
        reason: str,
    ) -> None:
        plan.ops.append(
            LowLevelOp(
                op="start_task",
                task=task,
                phase=PHASE_ACQUIRE,
                resources=rs,
                user_script=user_script,
                params=dict(params),
                reason=reason,
            )
        )

    def _plan_acquire(
        self,
        plan: ActionPlan,
        shadow: _Shadow,
        s: SuggestedAction,
        stop_targets: set[str],
        start_targets: set[str],
        now: float,
    ) -> bool:
        """Plan one acquiring/restarting action; may pick victims (lines 6–15)."""
        spec = self.launcher.record(s.target).spec
        running = self.launcher.record(s.target).is_running
        current = shadow.assigned.get(s.target, ResourceSet.empty())
        adjust = int(s.params.get("adjust-by", 1))
        user_script = s.params.get("restart-script") or s.params.get("start-script")
        per_node = spec.procs_per_node

        if s.action == ActionType.ADDCPU:
            nprocs = current.total_cores + adjust
            per_node = None  # growth relaxes the initial placement constraint
        elif s.action == ActionType.RMCPU:
            nprocs = max(1, current.total_cores - adjust)
            per_node = None
        elif s.action == ActionType.RESTART:
            nprocs = current.total_cores if running else int(s.params.get("nprocs", spec.nprocs))
        else:  # START / SWITCH(start half)
            nprocs = int(s.params.get("nprocs", spec.nprocs))

        # Free the target's own cores first (restart semantics).
        if running:
            released = shadow.release(s.target)
        else:
            released = ResourceSet.empty()

        target_pri = self.rules.task_priority(s.target)
        while True:
            try:
                rs = shadow.place(nprocs, per_node)
                break
            except AllocationError:
                victim = self._pick_victim(shadow, target_pri, stop_targets, start_targets, s.target)
                if victim is None and per_node is not None:
                    # Paper's protocol estimates resources; if the strict
                    # per-node layout cannot be met, retry packed.
                    try:
                        rs = shadow.place(nprocs, None)
                        break
                    except AllocationError:
                        pass
                if victim is None:
                    # No victim available: park starts, discard growth (line 13).
                    if running and released:
                        # Put the target's own cores back; nothing happens.
                        shadow.take(s.target, released)
                    if s.action in (ActionType.START, ActionType.RESTART, ActionType.SWITCH) and not running:
                        self._enqueue_waiting(
                            s.target, nprocs, per_node, s.params, user_script, now, s.policy_id
                        )
                        plan.discarded.append(
                            f"{s.policy_id}:{s.action.value}:{s.target} (queued, no resources)"
                        )
                    else:
                        plan.discarded.append(
                            f"{s.policy_id}:{s.action.value}:{s.target} (no resources, no victim)"
                        )
                    return False
                self._victimize(plan, shadow, victim, stop_targets, now)

        if running:
            self._plan_stop(plan, shadow, s.target, reason=s.policy_id, graceful=True)
        shadow.take(s.target, rs)
        self._plan_start(plan, s.target, rs, user_script, s.params, reason=s.policy_id)
        return True

    def _pick_victim(
        self,
        shadow: _Shadow,
        target_priority: int,
        stop_targets: set[str],
        start_targets: set[str],
        acquirer: str,
    ) -> str | None:
        """Lowest-priority running task strictly below the acquirer (line 7)."""
        if not self.allow_victims:
            return None
        candidates = [
            name
            for name in shadow.assigned
            if name != acquirer
            and name not in stop_targets
            and name not in start_targets
            and self.launcher.record(name).is_running
            and self.rules.task_priority(name) > target_priority
        ]
        if not candidates:
            return None
        candidates.sort(key=lambda n: (-self.rules.task_priority(n), n))
        return candidates[0]

    def _victimize(
        self, plan: ActionPlan, shadow: _Shadow, victim: str, stop_targets: set[str], now: float
    ) -> None:
        """Stop *victim* (and its tight dependents), park them in T_waiting."""
        group = [victim] + [
            d for d in self.rules.transitive_tight_dependents(victim)
            if self.launcher.record(d).is_running and d not in stop_targets
        ]
        for name in group:
            held = shadow.assigned.get(name, ResourceSet.empty()).total_cores
            self._plan_stop(plan, shadow, name, reason="victim", graceful=True)
            stop_targets.add(name)
            plan.victims.append(name)
            spec = self.launcher.record(name).spec
            self._enqueue_waiting(
                name, held or spec.nprocs, spec.procs_per_node, {}, None, now, "victim"
            )

    # -- waiting queue ---------------------------------------------------------------------
    def _enqueue_waiting(
        self,
        task: str,
        nprocs: int,
        per_node_limit: int | None,
        params: dict[str, Any],
        user_script: str | None,
        now: float,
        reason: str,
    ) -> None:
        if task not in self.waiting:
            self.waiting[task] = WaitingEntry(
                task=task,
                nprocs=nprocs,
                per_node_limit=per_node_limit,
                params=dict(params),
                user_script=user_script,
                enqueued=now,
                reason=reason,
            )

    def _drainable(self, now: float) -> bool:
        """Could the waiting queue plausibly make progress?"""
        return bool(self.waiting) and self.launcher.rm.free_cores() > 0

    def _try_start_waiting(
        self,
        plan: ActionPlan,
        shadow: _Shadow,
        entry: WaitingEntry,
        stop_targets: set[str],
        start_targets: set[str],
    ) -> bool:
        """Start one waiting task if free resources allow (no victims)."""
        if entry.task in start_targets or entry.task in stop_targets:
            return False
        if self.launcher.record(entry.task).is_active:
            self.waiting.pop(entry.task, None)
            return False
        try:
            rs = shadow.place(entry.nprocs, entry.per_node_limit)
        except AllocationError:
            if entry.per_node_limit is not None:
                try:
                    rs = shadow.place(entry.nprocs, None)
                except AllocationError:
                    return False
            else:
                return False
        shadow.take(entry.task, rs)
        user_script = (
            entry.user_script
            or entry.params.get("restart-script")
            or entry.params.get("start-script")
        )
        self._plan_start(plan, entry.task, rs, user_script, entry.params, reason="waiting-queue")
        start_targets.add(entry.task)
        self.waiting.pop(entry.task, None)
        return True

    def _drain_waiting(
        self,
        plan: ActionPlan,
        shadow: _Shadow,
        start_targets: set[str],
        stop_targets: set[str],
        now: float,
    ) -> None:
        """Start waiting tasks, highest priority first, while cores remain."""
        entries = sorted(
            self.waiting.values(), key=lambda e: (self.rules.task_priority(e.task), e.enqueued)
        )
        for entry in entries:
            self._try_start_waiting(plan, shadow, entry, stop_targets, start_targets)

    # -- crash recovery ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Gates, waiting queue, and id counters; plans travel separately.

        The plans list is reconstructed from the journal's ``plan`` /
        ``plan-done`` records (it can grow without bound, so it is not
        copied into every barrier); ``in_flight`` is stored by plan id
        and resolved by :meth:`load_state_dict` once the list is back.
        """
        return {
            "waiting": {
                task: {
                    "task": e.task,
                    "nprocs": e.nprocs,
                    "per_node_limit": e.per_node_limit,
                    "params": dict(e.params),
                    "user_script": e.user_script,
                    "enqueued": e.enqueued,
                    "reason": e.reason,
                }
                for task, e in self.waiting.items()
            },
            "discarded_batches": self.discarded_batches,
            "gate_until": self._gate_until,
            "in_flight": self._in_flight.plan_id if self._in_flight else None,
            "ids": self._ids.state_dict(),
        }

    def load_state_dict(self, state: dict, plans: list[ActionPlan] | None = None) -> None:
        self.waiting = {
            task: WaitingEntry(
                task=e["task"],
                nprocs=int(e["nprocs"]),
                per_node_limit=e["per_node_limit"],
                params=dict(e.get("params", {})),
                user_script=e.get("user_script"),
                enqueued=float(e.get("enqueued", 0.0)),
                reason=e.get("reason", ""),
            )
            for task, e in state.get("waiting", {}).items()
        }
        self.discarded_batches = int(state.get("discarded_batches", 0))
        gate = state.get("gate_until")
        self._gate_until = float(gate) if gate is not None else None
        self._ids.load_state_dict(state.get("ids", {}))
        if plans is not None:
            self.plans = list(plans)
        in_flight_id = state.get("in_flight")
        self._in_flight = None
        if in_flight_id is not None:
            for plan in self.plans:
                if plan.plan_id == in_flight_id:
                    self._in_flight = plan
                    break
            else:
                from repro.errors import JournalError

                raise JournalError(
                    f"in-flight plan {in_flight_id!r} missing from journaled plans"
                )
