"""The stable public API of the DYFLOW reproduction.

``repro.api`` is the single import surface users should program against:

    from repro.api import (
        DyflowOrchestrator, Savanna, SimEngine, summit,
        SensorSpec, PolicySpec, PolicyApplication, ActionType,
    )

Everything re-exported here is covered by the round-trip/integration
test suite and keeps working across internal refactors; importing from
the implementation packages (``repro.core``, ``repro.wms``, ...) still
works but offers no such guarantee.  The examples under ``examples/``
import exclusively from this module.

The surface groups into:

* **Simulation substrate** — :class:`SimEngine`, :class:`RngRegistry`.
* **Cluster models** — :func:`summit`, :func:`deepthought2`,
  :class:`Allocation`, :class:`BatchScheduler`.
* **Workflows and the WMS** — :class:`WorkflowSpec`, :class:`TaskSpec`,
  :class:`DependencySpec`, :class:`CouplingType`, :class:`Savanna`,
  :class:`Campaign`, :class:`Sweep`, :class:`TaskState`.
* **Applications** — :class:`IterativeApp`, the step-time models, the
  real numerical kernels for the threaded driver.
* **The four-stage control loop** — sensor/policy specs and the two
  drivers (:class:`DyflowOrchestrator`, :class:`ThreadedDyflow`).
* **XML interface** — :func:`parse_dyflow_xml`,
  :func:`write_dyflow_xml`, :func:`configure_orchestrator`,
  :class:`DyflowSpec`.
* **Resilience** — :class:`ResilienceSpec` and its parts.
* **Crash recovery** — :class:`Journal`, :class:`JournalSpec`,
  :class:`CampaignRunner`, :func:`read_journal`,
  :func:`scenario_fingerprint`, :class:`AppliedOpsLedger`.
* **Telemetry** — :class:`TelemetrySpec`, :class:`Tracer`, the metrics
  registry and the Chrome trace exporter.
* **Observability** — :class:`ObservabilitySpec`, critical-path and
  utilization analytics, OpenMetrics export, run reports, and
  SLO/anomaly health alerts fed back into the Monitor stage.
* **Canned experiments** — ``run_*_experiment``, :func:`render_gantt`,
  the paper XML documents, and the report builders.
* **Static analysis** — :func:`verify_spec`, :func:`run_selflint`,
  :class:`Diagnostic`, the ``preflight=`` verification modes, and the
  text/JSON/SARIF renderers (``python -m repro.lint``).
"""

from repro.apps import AmdahlModel, ConstantModel, IterativeApp, PowerLawModel, RampModel
from repro.apps.gray_scott import ANALYSIS_TASKS
from repro.apps.kernels import GrayScottSolver, isosurface_cell_count
from repro.cluster import Allocation, BatchScheduler, deepthought2, summit
from repro.core import (
    ActionPlan,
    ActionType,
    GroupBySpec,
    JoinSpec,
    MetricUpdate,
    PolicyApplication,
    PolicySpec,
    SensorSpec,
    SuggestedAction,
)
from repro.errors import ReproError
from repro.fabric import (
    BoundedShedQueue,
    DegradedModeController,
    FabricLink,
    LinkOverride,
    NetworkSpec,
    PartitionWindow,
)
from repro.experiments import (
    GRAY_SCOTT_XML,
    LAMMPS_XML,
    XGC_XML,
    ScenarioResult,
    render_gantt,
    run_gray_scott_experiment,
    run_lammps_experiment,
    run_xgc_experiment,
)
from repro.experiments.report import build_report, format_report
from repro.lint import (
    Diagnostic,
    PreflightWarning,
    Severity,
    VerificationError,
    lint_xml_text,
    render_sarif,
    run_preflight,
    run_selflint,
    verify_spec,
)
from repro.journal import (
    AppliedOpsLedger,
    Journal,
    JournalSpec,
    JournalState,
    read_journal,
    scenario_fingerprint,
)
from repro.observability import (
    HEALTH_TASK,
    AnomalySpec,
    HealthAlert,
    HealthEngine,
    ObservabilitySpec,
    SloSpec,
    SpanView,
    bottlenecks,
    critical_path,
    parse_openmetrics,
    render_markdown,
    render_openmetrics,
    report_from_jsonl,
    report_from_run,
    utilization_from_events,
    utilization_from_launcher,
    write_openmetrics,
    write_report,
)
from repro.resilience import (
    ChaosEngine,
    CheckpointSpec,
    FaultModelSpec,
    QuarantineSpec,
    ResilienceSpec,
    RetryPolicy,
    WatchdogSpec,
)
from repro.runtime import DyflowOrchestrator, LiveTaskSpec, ThreadedDyflow
from repro.sim import RngRegistry, SimEngine
from repro.telemetry import (
    JsonlEventLog,
    MetricsRegistry,
    NullTracer,
    TelemetrySpec,
    Tracer,
    TraceSpan,
    build_tracer,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.wms import (
    Campaign,
    CampaignRunner,
    CouplingType,
    DependencySpec,
    Savanna,
    Sweep,
    TaskSpec,
    TaskState,
    WorkflowSpec,
)
from repro.xmlspec import DyflowSpec, configure_orchestrator, parse_dyflow_xml, write_dyflow_xml

__all__ = [
    # simulation substrate
    "SimEngine",
    "RngRegistry",
    # cluster models
    "summit",
    "deepthought2",
    "Allocation",
    "BatchScheduler",
    # workflows and the WMS
    "WorkflowSpec",
    "TaskSpec",
    "DependencySpec",
    "CouplingType",
    "TaskState",
    "Savanna",
    "Campaign",
    "CampaignRunner",
    "Sweep",
    # applications
    "IterativeApp",
    "AmdahlModel",
    "ConstantModel",
    "PowerLawModel",
    "RampModel",
    "GrayScottSolver",
    "isosurface_cell_count",
    "ANALYSIS_TASKS",
    # control loop
    "SensorSpec",
    "GroupBySpec",
    "JoinSpec",
    "PolicySpec",
    "PolicyApplication",
    "ActionType",
    "SuggestedAction",
    "MetricUpdate",
    "ActionPlan",
    "DyflowOrchestrator",
    "ThreadedDyflow",
    "LiveTaskSpec",
    # XML interface
    "parse_dyflow_xml",
    "write_dyflow_xml",
    "configure_orchestrator",
    "DyflowSpec",
    # resilience
    "ResilienceSpec",
    "RetryPolicy",
    "WatchdogSpec",
    "QuarantineSpec",
    "CheckpointSpec",
    "FaultModelSpec",
    "ChaosEngine",
    # monitor fabric
    "NetworkSpec",
    "PartitionWindow",
    "LinkOverride",
    "FabricLink",
    "DegradedModeController",
    "BoundedShedQueue",
    # crash recovery
    "Journal",
    "JournalSpec",
    "JournalState",
    "AppliedOpsLedger",
    "read_journal",
    "scenario_fingerprint",
    # telemetry
    "TelemetrySpec",
    "Tracer",
    "NullTracer",
    "TraceSpan",
    "MetricsRegistry",
    "JsonlEventLog",
    "build_tracer",
    "to_chrome_trace",
    "write_chrome_trace",
    # observability
    "ObservabilitySpec",
    "SloSpec",
    "AnomalySpec",
    "HealthAlert",
    "HealthEngine",
    "HEALTH_TASK",
    "SpanView",
    "critical_path",
    "bottlenecks",
    "utilization_from_launcher",
    "utilization_from_events",
    "render_openmetrics",
    "parse_openmetrics",
    "write_openmetrics",
    "report_from_run",
    "report_from_jsonl",
    "render_markdown",
    "write_report",
    # canned experiments
    "run_xgc_experiment",
    "run_gray_scott_experiment",
    "run_lammps_experiment",
    "render_gantt",
    "ScenarioResult",
    "XGC_XML",
    "GRAY_SCOTT_XML",
    "LAMMPS_XML",
    "build_report",
    "format_report",
    # static analysis
    "Diagnostic",
    "Severity",
    "PreflightWarning",
    "VerificationError",
    "verify_spec",
    "lint_xml_text",
    "run_selflint",
    "run_preflight",
    "render_sarif",
    # errors
    "ReproError",
]
