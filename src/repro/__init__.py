"""DYFLOW reproduction: policy-driven dynamic orchestration of scientific
workflows on (simulated) supercomputers.

Reproduces *DYFLOW: A flexible framework for orchestrating scientific
workflows on supercomputers* (ICPP 2021): the four-stage
Monitor -> Decision -> Arbitration -> Actuation model, its sensors /
policies / rules constructs, the XML user interface, and the paper's
three evaluation workflows on models of the Summit and Deepthought2
clusters.

Typical entry points:

* :mod:`repro.api` — the stable public facade; everything user code
  needs, in one import (what the ``examples/`` use).
* :class:`repro.runtime.DyflowOrchestrator` — wire DYFLOW onto a
  workflow programmatically (see ``examples/quickstart.py``).
* :func:`repro.xmlspec.parse_dyflow_xml` +
  :func:`repro.xmlspec.configure_orchestrator` — the paper's XML path.
* :mod:`repro.experiments` — canned reproductions of every experiment
  in the paper's §4 (used by the ``benchmarks/`` harness).
"""

from repro import api
from repro.errors import ReproError
from repro.sim import SimEngine
from repro.cluster import BatchScheduler, deepthought2, summit
from repro.wms import Savanna, TaskSpec, WorkflowSpec, DependencySpec, CouplingType
from repro.apps import IterativeApp
from repro.runtime import DyflowOrchestrator
from repro.xmlspec import configure_orchestrator, parse_dyflow_xml, write_dyflow_xml

__version__ = "1.0.0"

__all__ = [
    "api",
    "ReproError",
    "SimEngine",
    "summit",
    "deepthought2",
    "BatchScheduler",
    "Savanna",
    "TaskSpec",
    "WorkflowSpec",
    "DependencySpec",
    "CouplingType",
    "IterativeApp",
    "DyflowOrchestrator",
    "parse_dyflow_xml",
    "write_dyflow_xml",
    "configure_orchestrator",
    "__version__",
]
