"""Bounded queues with deterministic shed policies.

:class:`BoundedShedQueue` backs the threaded driver's Decision →
Arbitration hand-off: a slow consumer can no longer grow the suggestion
backlog without bound.  When full, the *oldest* item is shed — newer
suggestions supersede older ones for the same policies, so freshness
beats completeness here — and the shed count is kept for telemetry.
"""

from __future__ import annotations

import queue as _queue
import threading
from collections import deque
from typing import Any

from repro.errors import DyflowError


class BoundedShedQueue:
    """Thread-safe FIFO that sheds its oldest item instead of blocking.

    ``capacity=0`` means unbounded (the pre-hardening behavior).
    ``get`` raises :class:`queue.Empty` on timeout, matching the
    ``queue.Queue`` call sites it replaces.
    """

    def __init__(self, capacity: int = 0) -> None:
        if capacity < 0:
            raise DyflowError(f"queue capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._cond = threading.Condition()
        self.shed = 0

    def put(self, item: Any) -> None:
        with self._cond:
            if self.capacity and len(self._items) >= self.capacity:
                self._items.popleft()
                self.shed += 1
            self._items.append(item)
            self._cond.notify()

    def get(self, timeout: float | None = None) -> Any:
        with self._cond:
            if not self._items:
                self._cond.wait(timeout)
            if not self._items:
                raise _queue.Empty
            return self._items.popleft()

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)
