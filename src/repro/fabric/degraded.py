"""Staleness-aware degraded mode for the Decision stage.

When the fabric loses or delays Monitor traffic, the Decision stage is
planning on old data.  The controller watches the per-task data age the
server's ``last_seen`` map implies and — with hysteresis matching the
SLO evaluators — flips the orchestrator into *degraded mode*: the
Decision stage keeps emitting failure-recovery actions (STOP / START /
RESTART) but gates performance-tuning ones (ADDCPU / RMCPU / SWITCH /
RECONFIG), which would otherwise thrash the allocation based on stale
pace numbers.  Partition windows and degraded-mode transitions are
published as :class:`~repro.observability.slo.HealthAlert` records
through the observability loop, so run reports and HEALTH pseudo-task
sensors see them like any SLO transition.
"""

from __future__ import annotations

from repro.fabric.spec import HEALTH_TASK, NetworkSpec
from repro.observability.slo import HealthAlert


class DegradedModeController:
    """Hysteresis state machine over per-task ingest staleness."""

    def __init__(self, network: NetworkSpec) -> None:
        self.network = network
        self.degraded = False
        self.partition = False
        self._stale_streak = 0
        self._fresh_streak = 0
        self.entered = 0
        self.exited = 0
        self.alerts: list[HealthAlert] = []

    def tick(self, now: float, last_seen: dict[str, float]) -> list[HealthAlert]:
        """Evaluate once; returns the alerts this evaluation transitioned."""
        new: list[HealthAlert] = []
        part = self.network.partition_active(now)
        if part != self.partition:
            self.partition = part
            new.append(HealthAlert(
                time=now, source="fabric:partition",
                kind="firing" if part else "clearing",
                severity="warning", value=1.0 if part else 0.0, threshold=0.0,
                message=("network partition window opened"
                         if part else "network partition window closed"),
            ))
        net = self.network
        if net.stale_after > 0:
            # Tasks that never reported don't count: warmup would read as
            # stale before the first envelope ever lands.
            ages = [now - t for task, t in last_seen.items() if task != HEALTH_TASK]
            age = max(ages, default=0.0)
            if age > net.stale_after:
                self._stale_streak += 1
                self._fresh_streak = 0
            else:
                self._fresh_streak += 1
                self._stale_streak = 0
            if not self.degraded and self._stale_streak >= net.degrade_after:
                self.degraded = True
                self.entered += 1
                new.append(HealthAlert(
                    time=now, source="fabric:degraded", kind="firing",
                    severity="warning", value=age, threshold=net.stale_after,
                    message=(f"monitor data is {age:.1f}s stale "
                             f"(> {net.stale_after}s); gating non-essential actions"),
                ))
            elif self.degraded and self._fresh_streak >= net.recover_after:
                self.degraded = False
                self.exited += 1
                new.append(HealthAlert(
                    time=now, source="fabric:degraded", kind="clearing",
                    severity="warning", value=age, threshold=net.stale_after,
                    message=f"monitor data fresh again ({age:.1f}s old)",
                ))
        self.alerts.extend(new)
        return new

    # -- crash recovery --------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "degraded": self.degraded,
            "partition": self.partition,
            "stale_streak": self._stale_streak,
            "fresh_streak": self._fresh_streak,
            "entered": self.entered,
            "exited": self.exited,
            "alerts": [a.to_dict() for a in self.alerts],
        }

    def load_state_dict(self, state: dict) -> None:
        self.degraded = bool(state["degraded"])
        self.partition = bool(state["partition"])
        self._stale_streak = int(state["stale_streak"])
        self._fresh_streak = int(state["fresh_streak"])
        self.entered = int(state["entered"])
        self.exited = int(state["exited"])
        self.alerts = [HealthAlert.from_dict(d) for d in state.get("alerts", [])]
