"""Network transport model configuration (XML ``<resilience><network>``).

The Monitor stage is a client/server fabric crossing the machine
interconnect (paper §3/Fig. 2).  :class:`NetworkSpec` describes that
transport: a deterministic fault model (latency/jitter, drop, duplicate,
reorder, timed partition windows), the client-side reliability layer
(ack/retransmit with exponential backoff, bounded send buffer, circuit
breaker), the server-side backpressure knobs (bounded ingress queue,
priority-aware shedding, per-tick drain budget), and the staleness
thresholds that drive the Decision stage's degraded mode.

Per-link overrides (:class:`LinkOverride`) let individual Monitor
clients see different fault profiles — e.g. one client on a congested
switch — while :class:`PartitionWindow` models timed network splits that
silently eat traffic in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ResilienceError

# The observability health engine publishes its pseudo-task updates
# under this task name (repro.observability.health.HEALTH_TASK); the
# ingress queue sheds ordinary SENSOR samples before these.
HEALTH_TASK = "__dyflow__"


@dataclass(frozen=True)
class PartitionWindow:
    """A timed network split: traffic on the affected link(s) is dropped.

    ``link`` limits the window to one Monitor client's link; ``None``
    partitions every link (the launch node loses the interconnect).
    """

    start: float
    duration: float
    link: str | None = None

    def validate(self) -> None:
        if self.start < 0:
            raise ResilienceError(f"partition start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ResilienceError(f"partition duration must be > 0, got {self.duration}")

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration


@dataclass(frozen=True)
class LinkOverride:
    """Per-client overrides of the default fault profile (``None`` = inherit)."""

    client: str
    latency: float | None = None
    jitter: float | None = None
    drop_prob: float | None = None
    dup_prob: float | None = None
    reorder_prob: float | None = None
    reorder_delay: float | None = None

    def validate(self) -> None:
        if not self.client:
            raise ResilienceError("link override needs a client id")
        for name in ("latency", "jitter", "reorder_delay"):
            v = getattr(self, name)
            if v is not None and v < 0:
                raise ResilienceError(f"link {self.client!r}: {name} must be >= 0, got {v}")
        for name in ("drop_prob", "dup_prob", "reorder_prob"):
            v = getattr(self, name)
            if v is not None and not 0.0 <= v < 1.0:
                raise ResilienceError(f"link {self.client!r}: {name} must be in [0, 1), got {v}")


@dataclass(frozen=True)
class LinkProfile:
    """The resolved fault profile one :class:`FabricLink` runs with."""

    latency: float
    jitter: float
    drop_prob: float
    dup_prob: float
    reorder_prob: float
    reorder_delay: float


@dataclass(frozen=True)
class NetworkSpec:
    """The complete Monitor-fabric transport model.

    Fault model (per link, overridable via ``links``):
        latency/jitter: transit delay is ``latency + U*jitter``;
        drop_prob/dup_prob/reorder_prob: per-copy Bernoulli events;
        reorder_delay: extra delay ``reorder_delay*(1+U)`` a reordered
        copy suffers, letting later envelopes overtake it.

    Reliability (client side):
        ack_timeout: base retransmit timeout; attempt *k* waits
        ``min(ack_timeout * retransmit_factor**k, retransmit_max)``
        scaled by ``1 + U*retransmit_jitter``;
        max_retransmits: retransmit budget per envelope (0 = fire and
        forget: no send buffer, no acks);
        send_buffer: unacked-envelope cap; the oldest entry is evicted
        when full;
        breaker_failures: consecutive give-ups that open the circuit
        breaker (0 disables); while open for ``breaker_reset`` seconds
        new sends are shed at the client.

    Backpressure (server side):
        ingress_capacity: bounded ingress queue (0 = unbounded);
        drain_per_tick: envelopes processed per orchestrator tick
        (0 = drain everything).

    Staleness / degraded mode:
        stale_after: per-task data age (vs ``MonitorServer.last_seen``)
        past which a tick counts as stale (0 disables degraded mode);
        degrade_after/recover_after: consecutive stale/fresh ticks to
        enter/leave degraded mode.
    """

    enabled: bool = True
    latency: float = 0.0
    jitter: float = 0.0
    drop_prob: float = 0.0
    dup_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_delay: float = 0.5
    ack_timeout: float = 2.0
    ack_drop_prob: float = 0.0
    max_retransmits: int = 5
    retransmit_factor: float = 2.0
    retransmit_max: float = 30.0
    retransmit_jitter: float = 0.25
    send_buffer: int = 256
    breaker_failures: int = 0
    breaker_reset: float = 60.0
    ingress_capacity: int = 0
    drain_per_tick: int = 0
    stale_after: float = 0.0
    degrade_after: int = 3
    recover_after: int = 3
    partitions: tuple[PartitionWindow, ...] = ()
    links: tuple[LinkOverride, ...] = ()

    def validate(self) -> None:
        for name in ("latency", "jitter", "reorder_delay"):
            if getattr(self, name) < 0:
                raise ResilienceError(f"network {name} must be >= 0")
        for name in ("drop_prob", "dup_prob", "reorder_prob", "ack_drop_prob"):
            if not 0.0 <= getattr(self, name) < 1.0:
                raise ResilienceError(
                    f"network {name} must be in [0, 1), got {getattr(self, name)}"
                )
        if self.ack_timeout <= 0:
            raise ResilienceError(f"ack_timeout must be > 0, got {self.ack_timeout}")
        if self.max_retransmits < 0:
            raise ResilienceError(f"max_retransmits must be >= 0, got {self.max_retransmits}")
        if self.retransmit_factor < 1.0:
            raise ResilienceError(
                f"retransmit_factor must be >= 1, got {self.retransmit_factor}"
            )
        if self.retransmit_max <= 0:
            raise ResilienceError(f"retransmit_max must be > 0, got {self.retransmit_max}")
        if not 0.0 <= self.retransmit_jitter <= 1.0:
            raise ResilienceError(
                f"retransmit_jitter must be in [0, 1], got {self.retransmit_jitter}"
            )
        if self.send_buffer < 1:
            raise ResilienceError(f"send_buffer must be >= 1, got {self.send_buffer}")
        if self.breaker_failures < 0:
            raise ResilienceError(f"breaker_failures must be >= 0, got {self.breaker_failures}")
        if self.breaker_reset <= 0:
            raise ResilienceError(f"breaker_reset must be > 0, got {self.breaker_reset}")
        if self.ingress_capacity < 0 or self.drain_per_tick < 0:
            raise ResilienceError("ingress_capacity and drain_per_tick must be >= 0")
        if self.stale_after < 0:
            raise ResilienceError(f"stale_after must be >= 0, got {self.stale_after}")
        if self.degrade_after < 1 or self.recover_after < 1:
            raise ResilienceError("degrade_after and recover_after must be >= 1")
        seen: set[str] = set()
        for lo in self.links:
            lo.validate()
            if lo.client in seen:
                raise ResilienceError(f"duplicate link override for client {lo.client!r}")
            seen.add(lo.client)
        for w in self.partitions:
            w.validate()

    def profile_for(self, link_id: str) -> LinkProfile:
        """Resolve the fault profile of one client's link (overrides applied)."""
        override = next((lo for lo in self.links if lo.client == link_id), None)
        values = {}
        for f in fields(LinkProfile):
            v = getattr(override, f.name) if override is not None else None
            values[f.name] = getattr(self, f.name) if v is None else v
        return LinkProfile(**values)

    def partition_active(self, now: float, link_id: str | None = None) -> bool:
        """True when *now* lies inside a window covering *link_id*.

        ``link_id=None`` asks whether *any* partition is active.
        """
        for w in self.partitions:
            if not w.active(now):
                continue
            if w.link is None or link_id is None or w.link == link_id:
                return True
        return False
