"""Monitor fabric: the lossy-network transport model and its defenses.

The paper's Monitor stage crosses the machine interconnect; this package
makes that crossing a first-class, faultable transport:

* :mod:`repro.fabric.spec` — :class:`NetworkSpec`, the XML-configurable
  fault model (latency/jitter, drop, duplicate, reorder, partition
  windows) plus reliability, backpressure and staleness knobs.
* :mod:`repro.fabric.link` — :class:`FabricLink`, the per-client
  transport state machine: ack/retransmit with exponential backoff, a
  bounded send buffer, and a circuit breaker, all on named RNG streams.
* :mod:`repro.fabric.degraded` — :class:`DegradedModeController`,
  staleness-driven degraded planning with HealthAlert transitions.
* :mod:`repro.fabric.queueing` — :class:`BoundedShedQueue`, the bounded
  oldest-first-shed queue used by the threaded driver.

See ``docs/fabric.md`` for the protocol and semantics.
"""

from repro.fabric.degraded import DegradedModeController
from repro.fabric.link import FabricLink, fabric_streams
from repro.fabric.queueing import BoundedShedQueue
from repro.fabric.spec import (
    HEALTH_TASK,
    LinkOverride,
    LinkProfile,
    NetworkSpec,
    PartitionWindow,
)

__all__ = [
    "BoundedShedQueue",
    "DegradedModeController",
    "FabricLink",
    "HEALTH_TASK",
    "LinkOverride",
    "LinkProfile",
    "NetworkSpec",
    "PartitionWindow",
    "fabric_streams",
]
