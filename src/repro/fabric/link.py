"""FabricLink: one Monitor client's lossy, reliable transport link.

The link sits between ``MonitorClient.collect()`` and
``MonitorServer.receive()`` and is a *pure state machine*: it decides
what happens to each envelope (delivery times, extra copies, drops) but
never touches the clock or the event loop itself — the driver registers
the returned ``(deliver_at, envelope)`` outcomes however its substrate
works (engine events under the simulated driver, a pending list under
the threaded one).  All randomness comes from named
:class:`~repro.sim.rng.RngRegistry` streams, so chaos runs replay
bit-identically, and the full in-flight state (send buffer, breaker,
RNG positions) round-trips ``state_dict()`` for the crash journal.

Reliability protocol: every data copy the server *admits* is acked;
unacked envelopes are retransmitted on an exponential-backoff schedule
polled by the driver (tick granularity) until the retransmit budget is
spent, after which the envelope is abandoned and — with a breaker
configured — counts toward opening the circuit breaker, which sheds new
sends at the client until it half-opens after ``breaker_reset``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric.spec import NetworkSpec
from repro.sim.rng import RngRegistry
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.util.jsonmsg import Envelope

# One RNG stream per concern keeps draws independent of code-path
# reordering across concerns (the same discipline as CHAOS_STREAMS).
_STREAM_SUFFIXES = ("net", "drop", "dup", "reorder", "ackdrop", "backoff")


def fabric_streams(link_id: str) -> tuple[str, ...]:
    """The named RNG streams one link draws from (for state capture)."""
    return tuple(f"fabric:{link_id}:{s}" for s in _STREAM_SUFFIXES)


@dataclass
class _Buffered:
    """One unacked envelope awaiting ack or retransmit."""

    env: Envelope
    attempts: int
    next_retry: float


class FabricLink:
    """Client-side reliability + fault model for one Monitor link."""

    def __init__(
        self,
        link_id: str,
        network: NetworkSpec,
        rng: RngRegistry,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.link_id = link_id
        self.network = network
        self.profile = network.profile_for(link_id)
        self.rng = rng
        self.tracer = tracer
        self.streams = fabric_streams(link_id)
        # (sender, seq) -> _Buffered, insertion-ordered for eviction.
        self._buffer: dict[tuple[str, int], _Buffered] = {}
        self._breaker_failures = 0
        self.breaker_open_until: float | None = None
        # Counters (source of truth for telemetry and the fault bench).
        self.sent = 0
        self.transmitted = 0
        self.dropped = 0
        self.partition_dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.retransmits = 0
        self.acked = 0
        self.gave_up = 0
        self.evicted = 0
        self.ack_dropped = 0
        self.breaker_shed = 0
        self.breaker_trips = 0

    # -- helpers -----------------------------------------------------------------
    def _u(self, suffix: str) -> float:
        return float(self.rng.stream(f"fabric:{self.link_id}:{suffix}").random())

    def _count(self, name: str, amount: int = 1) -> None:
        if self.tracer.enabled:
            self.tracer.metrics.counter(f"fabric.{name}").inc(amount)

    def _rto(self, attempt: int) -> float:
        """Timeout before retransmit *attempt* (0-based), jitter included."""
        net = self.network
        base = min(net.ack_timeout * net.retransmit_factor ** attempt, net.retransmit_max)
        if net.retransmit_jitter > 0:
            base *= 1.0 + net.retransmit_jitter * self._u("backoff")
        return base

    @property
    def unacked(self) -> int:
        return len(self._buffer)

    def breaker_open(self, now: float) -> bool:
        return self.breaker_open_until is not None and now < self.breaker_open_until

    # -- transit -----------------------------------------------------------------
    def _transit(self, env: Envelope, depart: float) -> list[tuple[float, Envelope]]:
        """Put one envelope on the wire; return its (deliver_at, copy) list."""
        self.transmitted += 1
        if self.network.partition_active(depart, self.link_id):
            self.partition_dropped += 1
            self._count("partition_dropped")
            return []
        p = self.profile
        if p.drop_prob > 0 and self._u("drop") < p.drop_prob:
            self.dropped += 1
            self._count("dropped")
            return []
        at = depart + p.latency + p.jitter * self._u("net")
        if p.reorder_prob > 0 and self._u("reorder") < p.reorder_prob:
            # The copy dawdles long enough for later sends to overtake it.
            at += p.reorder_delay * (1.0 + self._u("reorder"))
            self.reordered += 1
            self._count("reordered")
        out = [(at, env)]
        if p.dup_prob > 0 and self._u("dup") < p.dup_prob:
            out.append((depart + p.latency + p.jitter * self._u("net"), env))
            self.duplicated += 1
            self._count("duplicated")
        return out

    # -- client API ----------------------------------------------------------------
    def send(self, env: Envelope, now: float, lag: float = 0.0) -> list[tuple[float, Envelope]]:
        """Offer one fresh envelope to the link; returns transit outcomes.

        *lag* is the sensor's source read lag: the envelope leaves the
        client at ``now + lag`` (preserving the un-fabric'd delivery
        semantics), network delay on top.
        """
        if self.breaker_open(now):
            self.breaker_shed += 1
            self._count("breaker_shed")
            return []
        if self.network.max_retransmits > 0:
            if len(self._buffer) >= self.network.send_buffer:
                self._buffer.pop(next(iter(self._buffer)))
                self.evicted += 1
                self._count("evicted")
            self._buffer[(env.sender, env.seq)] = _Buffered(
                env=env, attempts=0, next_retry=now + self._rto(0)
            )
        self.sent += 1
        self._count("sent")
        return self._transit(env, now + lag)

    def poll(self, now: float) -> list[tuple[float, Envelope]]:
        """Retransmit due unacked envelopes; abandon exhausted ones.

        Called by the driver at tick granularity.  While the breaker is
        open retransmits are deferred, not abandoned — the backlog gets
        another chance when the breaker half-opens.
        """
        if self.breaker_open(now):
            return []
        out: list[tuple[float, Envelope]] = []
        for key in [k for k, b in self._buffer.items() if b.next_retry <= now]:
            buffered = self._buffer[key]
            if buffered.attempts >= self.network.max_retransmits:
                del self._buffer[key]
                self.gave_up += 1
                self._count("gave_up")
                self._breaker_failure(now)
                continue
            buffered.attempts += 1
            buffered.next_retry = now + self._rto(buffered.attempts)
            self.retransmits += 1
            self._count("retransmits")
            out.extend(self._transit(buffered.env, now))
        return out

    def on_ack(self, sender: str, seq: int, now: float) -> bool:
        """The server acked (sender, seq): clear it from the send buffer."""
        entry = self._buffer.pop((sender, seq), None)
        if entry is None:
            return False  # duplicate/late ack, or the entry was evicted
        self.acked += 1
        self._count("acked")
        self._breaker_failures = 0
        return True

    def plan_ack(self, env: Envelope, now: float) -> float | None:
        """Schedule the server->client ack; ``None`` if the ack is lost."""
        if self.network.max_retransmits == 0:
            return None  # fire-and-forget mode: nothing listens for acks
        if self.network.partition_active(now, self.link_id):
            self.ack_dropped += 1
            self._count("ack_dropped")
            return None
        if self.network.ack_drop_prob > 0 and self._u("ackdrop") < self.network.ack_drop_prob:
            self.ack_dropped += 1
            self._count("ack_dropped")
            return None
        p = self.profile
        return now + p.latency + p.jitter * self._u("net")

    def _breaker_failure(self, now: float) -> None:
        if self.network.breaker_failures <= 0:
            return
        self._breaker_failures += 1
        if self._breaker_failures >= self.network.breaker_failures:
            self.breaker_open_until = now + self.network.breaker_reset
            self.breaker_trips += 1
            self._count("breaker_trips")
            self._breaker_failures = 0

    # -- crash recovery --------------------------------------------------------------
    _COUNTERS = (
        "sent", "transmitted", "dropped", "partition_dropped", "duplicated",
        "reordered", "retransmits", "acked", "gave_up", "evicted",
        "ack_dropped", "breaker_shed", "breaker_trips",
    )

    def state_dict(self) -> dict:
        return {
            "buffer": [
                {"env": b.env.to_json(), "attempts": b.attempts, "next_retry": b.next_retry}
                for b in self._buffer.values()
            ],
            "breaker_failures": self._breaker_failures,
            "breaker_open_until": self.breaker_open_until,
            "counters": {name: getattr(self, name) for name in self._COUNTERS},
            "rng": self.rng.state_dict(names=self.streams),
        }

    def load_state_dict(self, state: dict) -> None:
        self._buffer = {}
        for item in state["buffer"]:
            env = Envelope.from_json(item["env"])
            self._buffer[(env.sender, env.seq)] = _Buffered(
                env=env,
                attempts=int(item["attempts"]),
                next_retry=float(item["next_retry"]),
            )
        self._breaker_failures = int(state["breaker_failures"])
        raw = state["breaker_open_until"]
        self.breaker_open_until = None if raw is None else float(raw)
        for name, value in state["counters"].items():
            setattr(self, name, int(value))
        self.rng.load_state_dict(state.get("rng", {}))
