"""Span-based tracing of the DYFLOW control loop.

A :class:`TraceSpan` is one timed piece of work (a Decision tick, a plan
execution, a task launch) carrying *two* clocks: the runtime's own time
(simulated seconds on the event clock, or seconds since start for the
threaded driver) and wall-clock seconds.  Spans nest through parent ids,
so a plan execution contains its per-op child spans and a service tick
contains its stage spans.

:class:`Tracer` is the recording object every instrumented component
holds; :class:`NullTracer` is the disabled twin whose every operation is
a shared no-op, so instrumentation left in place costs near-zero when
telemetry is off.  Components default to the module-level
:data:`NULL_TRACER` and never need a None check.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import TelemetryError
from repro.telemetry.metrics import MetricsRegistry, NullMetrics


@dataclass
class TraceSpan:
    """A timed, attributed interval with parent/child nesting.

    ``start``/``end`` are runtime-clock stamps (sim time under the
    simulated driver); ``wall_start``/``wall_end`` are wall-clock stamps
    from :func:`time.perf_counter`.  ``end`` is None while open.
    """

    name: str
    category: str
    span_id: int
    parent_id: int | None
    start: float
    wall_start: float
    end: float | None = None
    wall_end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float:
        """Runtime-clock duration; raises while the span is open."""
        if self.end is None:
            raise TelemetryError(f"span {self.name!r} still open")
        return self.end - self.start

    @property
    def wall_duration(self) -> float:
        if self.wall_end is None:
            raise TelemetryError(f"span {self.name!r} still open")
        return self.wall_end - self.wall_start

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
            "attrs": dict(self.attrs),
        }


# Sentinel for spans dropped by sampling (and everything under them).
_DROPPED = TraceSpan(
    name="<dropped>", category="dropped", span_id=-1, parent_id=None,
    start=0.0, wall_start=0.0, end=0.0, wall_end=0.0,
)


class _SpanContext:
    """Context manager binding one span to one ``with`` block."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: TraceSpan) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> TraceSpan:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self._span)
        self._tracer.end_span(self._span)


class Tracer:
    """Collects spans, point events, and derived metrics for one run.

    Args:
        clock: runtime clock (e.g. ``lambda: engine.now``).  Defaults to
            wall seconds since tracer creation.
        sample: fraction of *root* spans to record, in (0, 1].  Sampling
            is a deterministic stride (every ``1/sample``-th root span),
            so traced runs replay identically.  Children of an unsampled
            root are dropped with it; metrics are always recorded.
        metrics: registry for derived metrics (created if omitted).
        log: optional :class:`~repro.telemetry.events.JsonlEventLog`;
            every finished span and point event is appended to it.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        sample: float = 1.0,
        metrics: MetricsRegistry | None = None,
        log=None,
    ) -> None:
        if not 0.0 < sample <= 1.0:
            raise TelemetryError(f"sample must be in (0, 1], got {sample}")
        self._epoch = time.perf_counter()
        self.clock = clock if clock is not None else (lambda: time.perf_counter() - self._epoch)
        self.sample = float(sample)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.log = log
        self._spans: list[TraceSpan] = []
        self._next_id = 0
        self._roots_seen = 0
        self._roots_kept = 0
        self._lock = threading.Lock()
        self._stacks = threading.local()

    # -- nesting stack (per thread) ------------------------------------------------
    def _stack(self) -> list[TraceSpan]:
        stack = getattr(self._stacks, "value", None)
        if stack is None:
            stack = self._stacks.value = []
        return stack

    def _push(self, span: TraceSpan) -> None:
        self._stack().append(span)

    def _pop(self, span: TraceSpan) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current_span(self) -> TraceSpan | None:
        """Innermost span opened by ``with tracer.span(...)`` on this thread."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- recording -------------------------------------------------------------------
    def span(self, name: str, category: str = "span", **attrs: Any) -> _SpanContext:
        """Open a nested span for a ``with`` block."""
        return _SpanContext(self, self.start_span(name, category, **attrs))

    def start_span(
        self,
        name: str,
        category: str = "span",
        parent: TraceSpan | None = None,
        **attrs: Any,
    ) -> TraceSpan:
        """Begin a span explicitly (for work spread over callbacks).

        The parent defaults to the innermost ``with``-opened span of the
        calling thread.  Pass the returned span to :meth:`end_span`.
        """
        if parent is None:
            parent = self.current_span()
        if parent is _DROPPED:
            return _DROPPED
        if parent is None and not self._keep_root():
            return _DROPPED
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = TraceSpan(
                name=name,
                category=category,
                span_id=span_id,
                parent_id=parent.span_id if parent is not None else None,
                start=self.clock(),
                wall_start=time.perf_counter(),
                attrs=dict(attrs),
            )
            self._spans.append(span)
        return span

    def end_span(self, span: TraceSpan, **attrs: Any) -> None:
        """Close *span*, stamping both clocks and recording its latency."""
        if span is _DROPPED or span.end is not None:
            return
        span.end = self.clock()
        span.wall_end = time.perf_counter()
        if attrs:
            span.attrs.update(attrs)
        self.metrics.histogram(f"span.{span.name}").observe(span.duration)
        if self.log is not None:
            self.log.emit("span", span.end, **span.to_dict())

    def add_span(
        self,
        name: str,
        category: str = "span",
        start: float = 0.0,
        end: float = 0.0,
        parent: TraceSpan | None = None,
        **attrs: Any,
    ) -> TraceSpan:
        """Record an already-timed interval as a closed span.

        For work whose runtime-clock stamps were taken elsewhere (e.g. an
        actuation op's ``exec_start``/``exec_end``).  Both wall stamps are
        taken now, so ``wall_duration`` is ~0 for such spans.
        """
        if parent is None:
            parent = self.current_span()
        if parent is _DROPPED:
            return _DROPPED
        if parent is None and not self._keep_root():
            return _DROPPED
        wall = time.perf_counter()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = TraceSpan(
                name=name,
                category=category,
                span_id=span_id,
                parent_id=parent.span_id if parent is not None else None,
                start=start,
                wall_start=wall,
                end=end,
                wall_end=wall,
                attrs=dict(attrs),
            )
            self._spans.append(span)
        self.metrics.histogram(f"span.{name}").observe(span.duration)
        if self.log is not None:
            self.log.emit("span", end, **span.to_dict())
        return span

    def point(self, name: str, category: str = "event", **attrs: Any) -> None:
        """Record an instantaneous annotated event."""
        now = self.clock()
        self.metrics.counter(f"event.{name}").inc()
        if self.log is not None:
            self.log.emit("point", now, name=name, category=category, attrs=attrs)

    def _keep_root(self) -> bool:
        """Deterministic stride sampling over root spans."""
        self._roots_seen += 1
        target = int(self._roots_seen * self.sample + 1e-9)
        if target > self._roots_kept:
            self._roots_kept += 1
            return True
        return False

    # -- queries -----------------------------------------------------------------------
    @property
    def spans(self) -> list[TraceSpan]:
        with self._lock:
            return list(self._spans)

    def finished_spans(
        self, name: str | None = None, category: str | None = None
    ) -> list[TraceSpan]:
        """Closed spans filtered by name and/or category, in start order."""
        out = [
            s
            for s in self.spans
            if s.end is not None
            and (name is None or s.name == name)
            and (category is None or s.category == category)
        ]
        out.sort(key=lambda s: (s.start, s.span_id))
        return out

    def children_of(self, span: TraceSpan) -> list[TraceSpan]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def flush(self) -> None:
        """Flush the attached JSONL log (if any) to its path."""
        if self.log is not None:
            self.log.flush()


class _NullSpanContext:
    """Reusable no-op context manager returned by :meth:`NullTracer.span`."""

    __slots__ = ()

    def __enter__(self) -> TraceSpan:
        return _DROPPED

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_CTX = _NullSpanContext()


class NullTracer(Tracer):
    """Disabled tracer: every operation is a shared no-op.

    Instrumented code paths keep their tracer calls; with a NullTracer
    each call is a constant-time method on shared singletons, so a run
    with telemetry off pays only attribute lookups.
    """

    enabled = False

    def __init__(self) -> None:
        self.clock = lambda: 0.0
        self.sample = 1.0
        self.metrics = NullMetrics()
        self.log = None

    def span(self, name: str, category: str = "span", **attrs: Any) -> _NullSpanContext:  # type: ignore[override]
        return _NULL_CTX

    def start_span(
        self,
        name: str,
        category: str = "span",
        parent: TraceSpan | None = None,
        **attrs: Any,
    ) -> TraceSpan:
        return _DROPPED

    def end_span(self, span: TraceSpan, **attrs: Any) -> None:
        pass

    def add_span(
        self,
        name: str,
        category: str = "span",
        start: float = 0.0,
        end: float = 0.0,
        parent: TraceSpan | None = None,
        **attrs: Any,
    ) -> TraceSpan:
        return _DROPPED

    def point(self, name: str, category: str = "event", **attrs: Any) -> None:
        pass

    def current_span(self) -> TraceSpan | None:
        return None

    @property
    def spans(self) -> list[TraceSpan]:
        return []

    def finished_spans(
        self, name: str | None = None, category: str | None = None
    ) -> list[TraceSpan]:
        return []

    def children_of(self, span: TraceSpan) -> list[TraceSpan]:
        return []

    def flush(self) -> None:
        pass


#: Shared disabled tracer: the default for every instrumented component.
NULL_TRACER = NullTracer()
