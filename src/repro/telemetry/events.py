"""Structured JSONL event log.

Every telemetry record (finished spans, point events, run metadata) is
one JSON object per line — the exportable execution-trace substrate
WfCommons argues for.  Records accumulate in memory and are written out
by :meth:`JsonlEventLog.flush`, so simulated runs pay no I/O until the
run is over.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Iterator


class JsonlEventLog:
    """Append-only log of JSON records, optionally backed by a file."""

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._records: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._flushed = 0  # records already written to path

    def emit(self, kind: str, time: float, **fields: Any) -> dict[str, Any]:
        """Append one record; ``kind`` and ``time`` lead every line."""
        record = {"kind": kind, "time": time, **fields}
        with self._lock:
            self._records.append(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.records())

    def records(self, kind: str | None = None) -> list[dict[str, Any]]:
        with self._lock:
            records = list(self._records)
        if kind is not None:
            records = [r for r in records if r["kind"] == kind]
        return records

    def lines(self) -> list[str]:
        """Every record as a compact JSON line."""
        return [
            json.dumps(r, separators=(",", ":"), sort_keys=True, default=str)
            for r in self.records()
        ]

    def flush(self) -> None:
        """Append any unwritten records to ``path`` (no-op when in-memory)."""
        if self.path is None:
            return
        with self._lock:
            pending = self._records[self._flushed:]
            self._flushed = len(self._records)
        if not pending:
            return
        with open(self.path, "a", encoding="utf-8") as fh:
            for record in pending:
                fh.write(json.dumps(record, separators=(",", ":"), sort_keys=True, default=str))
                fh.write("\n")
