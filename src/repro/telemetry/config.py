"""Telemetry configuration: one spec, built programmatically or from XML.

:class:`TelemetrySpec` mirrors :class:`~repro.resilience.spec.ResilienceSpec`:
a frozen dataclass consumed identically by the simulated and threaded
runtimes, and by the ``<telemetry>`` XML element
(see ``docs/xml-reference.md``).  :func:`build_tracer` turns a spec into
the right tracer — a recording :class:`~repro.telemetry.tracer.Tracer`
with the configured sinks, or the shared
:data:`~repro.telemetry.tracer.NULL_TRACER` when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import TelemetryError
from repro.telemetry.events import JsonlEventLog
from repro.telemetry.tracer import NULL_TRACER, Tracer


@dataclass(frozen=True)
class TelemetrySpec:
    """What to record and where to ship it.

    Attributes:
        enabled: master switch; disabled runs use the NullTracer.
        sample: fraction of root spans kept (deterministic stride).
        jsonl_path: if set, spans/events are appended there as JSONL on
            :meth:`Tracer.flush`.
        chrome_trace_path: if set, runtimes write a Chrome
            ``trace_event`` JSON file there when the run finishes.
    """

    enabled: bool = True
    sample: float = 1.0
    jsonl_path: str | None = None
    chrome_trace_path: str | None = None

    def validate(self) -> None:
        if not 0.0 < self.sample <= 1.0:
            raise TelemetryError(f"telemetry sample must be in (0, 1], got {self.sample}")


def build_tracer(
    spec: TelemetrySpec | None,
    clock: Callable[[], float] | None = None,
) -> Tracer:
    """Build the tracer a runtime should use for *spec*.

    ``None`` or a disabled spec yields the shared NullTracer, so callers
    can wire telemetry unconditionally.
    """
    if spec is None or not spec.enabled:
        return NULL_TRACER
    spec.validate()
    log = JsonlEventLog(spec.jsonl_path) if spec.jsonl_path is not None else None
    return Tracer(clock=clock, sample=spec.sample, log=log)
