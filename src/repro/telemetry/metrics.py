"""Metrics registry: counters, gauges, and bucketed latency histograms.

The control loop records *what happened how often* (counters), *the
current level of something* (gauges), and *how long stage work took*
(latency histograms with p50/p95/p99 estimates).  Everything is plain
Python on purpose: metric recording sits on the orchestration hot path,
so each instrument is a tiny object with O(1) updates, and the disabled
path (:class:`NullMetrics`) is a handful of shared no-op singletons.
"""

from __future__ import annotations

import bisect
import math
from typing import Any

from repro.errors import TelemetryError

# Log-spaced 1-2.5-5 bucket bounds from 1 ms to 2000 s: wide enough for
# both wall-clock stage costs (sub-millisecond) and simulated response
# times (the paper's 107 s adjustments).
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-3, 4) for m in (1.0, 2.5, 5.0)
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down (queue depth, free cores, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class LatencyHistogram:
    """Bucketed latency distribution with percentile estimation.

    Observations land in fixed buckets (``bounds[i-1] < v <= bounds[i]``,
    with an overflow bucket past the last bound).  Percentiles are
    interpolated linearly inside the winning bucket and clamped to the
    observed min/max, so narrow distributions don't get smeared to a
    whole bucket's width.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise TelemetryError(f"histogram {name!r}: bucket bounds must be sorted and non-empty")
        self.name = name
        self.bounds = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise TelemetryError(f"mean of empty histogram {self.name!r}")
        return self.total / self.count

    def percentile(self, p: float) -> float:
        """Estimate the *p*-th percentile (p in [0, 100]) from the buckets."""
        if not 0.0 <= p <= 100.0:
            raise TelemetryError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            raise TelemetryError(f"percentile of empty histogram {self.name!r}")
        rank = p / 100.0 * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cumulative + c >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                frac = (rank - cumulative) / c
                est = lo + frac * (hi - lo)
                return min(max(est, self.min), self.max)
            cumulative += c
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def snapshot(self) -> dict[str, Any]:
        out: dict[str, Any] = {"type": "histogram", "count": self.count}
        if self.count:
            out.update(
                min=self.min, max=self.max, mean=self.mean,
                p50=self.p50, p95=self.p95, p99=self.p99,
            )
        return out

    def state_dict(self) -> dict[str, Any]:
        """Full (lossless) bucket state, JSON-portable."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": None if math.isinf(self.min) else self.min,
            "max": None if math.isinf(self.max) else self.max,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        bounds = tuple(float(b) for b in state["bounds"])
        if bounds != self.bounds:
            raise TelemetryError(
                f"histogram {self.name!r}: cannot load state with different buckets"
            )
        self.counts = [int(c) for c in state["counts"]]
        self.count = int(state["count"])
        self.total = float(state["total"])
        self.min = math.inf if state.get("min") is None else float(state["min"])
        self.max = -math.inf if state.get("max") is None else float(state["max"])

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another histogram's :meth:`state_dict` into this one.

        Bucket bounds must match exactly — merged observations stay
        bit-identical to having observed both series into one histogram.
        """
        bounds = tuple(float(b) for b in state["bounds"])
        if bounds != self.bounds:
            raise TelemetryError(
                f"histogram {self.name!r}: cannot merge state with different buckets"
            )
        for i, c in enumerate(state["counts"]):
            self.counts[i] += int(c)
        self.count += int(state["count"])
        self.total += float(state["total"])
        if state.get("min") is not None:
            self.min = min(self.min, float(state["min"]))
        if state.get("max") is not None:
            self.max = max(self.max, float(state["max"]))


class MetricsRegistry:
    """Name → instrument, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> LatencyHistogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = LatencyHistogram(name, buckets)
        return h

    def names(self) -> list[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def lookup(self, name: str) -> Counter | Gauge | LatencyHistogram | None:
        """The existing instrument called *name*, without creating one."""
        return (
            self._counters.get(name)
            or self._gauges.get(name)
            or self._histograms.get(name)
        )

    def counters(self) -> list[Counter]:
        return [self._counters[n] for n in sorted(self._counters)]

    def gauges(self) -> list[Gauge]:
        return [self._gauges[n] for n in sorted(self._gauges)]

    def histograms(self) -> list[LatencyHistogram]:
        return [self._histograms[n] for n in sorted(self._histograms)]

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All instruments as one JSON-friendly dict."""
        out: dict[str, dict[str, Any]] = {}
        for group in (self._counters, self._gauges, self._histograms):
            for name, instrument in group.items():
                out[name] = instrument.snapshot()
        return out

    def state_dict(self) -> dict[str, Any]:
        """Lossless, JSON-portable state of every instrument (sorted)."""
        return {
            "counters": {n: self._counters[n].value for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].value for n in sorted(self._gauges)},
            "histograms": {
                n: self._histograms[n].state_dict() for n in sorted(self._histograms)
            },
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Replace all instruments with the serialized *state*."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.merge_state(state)

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a serialized registry into this one.

        Counters add, gauges take the incoming value (last write wins),
        histograms merge bucket-by-bucket.  Used to fold worker-side
        telemetry and fleet rollup state back into a live registry.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, hstate in state.get("histograms", {}).items():
            h = self.histogram(name, buckets=tuple(hstate["bounds"]))
            h.merge_state(hstate)


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for the disabled path."""

    __slots__ = ()
    name = "null"
    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics(MetricsRegistry):
    """Registry whose instruments discard every update."""

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(  # type: ignore[override]
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> LatencyHistogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]
