"""Control-loop telemetry: spans, metrics, structured logs, trace export.

The paper's evaluation is built on *measured response times* of the four
orchestration stages; this package is how the reproduction measures its
own control loop.  One :class:`Tracer` (or the zero-cost
:class:`NullTracer`) threads through Monitor ingest, Decision ticks,
Arbitration planning, Actuation execution, the Savanna launcher, and the
staging hub; its spans export to Chrome ``trace_event`` JSON
(chrome://tracing / Perfetto) and its metrics registry carries the
per-stage latency histograms behind ``benchmarks/bench_stage_latency.py``.
"""

from repro.telemetry.config import TelemetrySpec, build_tracer
from repro.telemetry.events import JsonlEventLog
from repro.telemetry.export import chrome_trace_events, to_chrome_trace, write_chrome_trace
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Tracer, TraceSpan

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceSpan",
    "MetricsRegistry",
    "NullMetrics",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "DEFAULT_BUCKETS",
    "JsonlEventLog",
    "TelemetrySpec",
    "build_tracer",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
]
