"""Chrome ``trace_event`` export: open any run in chrome://tracing/Perfetto.

Closed spans become complete (``"ph": "X"``) events in microseconds;
nesting is preserved by putting every span on the thread track of its
*root* ancestor, so a plan execution renders as a bar with its per-op
child bars stacked underneath, exactly like a profiler flame chart.
Spans still open at finalize are emitted as begin-only (``"ph": "B"``)
events so an interrupted run (e.g. an orchestrator crash) still shows
what was in flight, and zero-duration spans are widened to a minimum
visible width.  The format reference is the Trace Event Format document
used by chrome://tracing and Perfetto.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.telemetry.tracer import Tracer, TraceSpan

_US = 1e6  # trace_event timestamps are microseconds

#: Minimum event width: zero-duration spans are real work in the
#: simulated clock but would be invisible (and mis-stack) at 0 µs.
_MIN_VISIBLE_US = 1.0


def _root_track(span: TraceSpan, by_id: dict[int, TraceSpan]) -> str:
    """Track label of the span's root ancestor (category/name)."""
    node = span
    while node.parent_id is not None and node.parent_id in by_id:
        node = by_id[node.parent_id]
    return f"{node.category}"


def chrome_trace_events(spans: Iterable[TraceSpan]) -> list[dict[str, Any]]:
    """Spans → ``traceEvents`` list, sorted by timestamp.

    Closed spans export as complete (``X``) events; spans still open at
    finalize export as begin-only (``B``) events flagged
    ``incomplete: true`` instead of being dropped.  Events are emitted
    in non-decreasing ``ts`` order with stable tie-breaking (outermost
    span first), which chrome://tracing requires for correct stacking.
    """
    all_spans = list(spans)
    by_id = {s.span_id: s for s in all_spans}
    tracks: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for span in all_spans:
        track = _root_track(span, by_id)
        tid = tracks.setdefault(track, len(tracks) + 1)
        args = {k: v for k, v in span.attrs.items()}
        event = {
            "name": span.name,
            "cat": span.category,
            "ts": span.start * _US,
            "pid": 1,
            "tid": tid,
            "args": args,
        }
        if span.end is None:
            event["ph"] = "B"
            args["incomplete"] = True
        else:
            event["ph"] = "X"
            event["dur"] = max(span.duration * _US, _MIN_VISIBLE_US)
            args["wall_ms"] = round(span.wall_duration * 1e3, 6)
        events.append(event)
    # Sort by start; ties broken by longer duration first so parents
    # precede their zero/short children on the same track (an open span
    # extends to the end of the run, so it sorts before any tie).
    events.sort(key=lambda e: (e["ts"], -e.get("dur", float("inf"))))
    meta: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "dyflow"},
        }
    ]
    for track, tid in sorted(tracks.items(), key=lambda kv: kv[1]):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
        )
    return meta + events


def to_chrome_trace(source: Tracer | Iterable[TraceSpan]) -> dict[str, Any]:
    """Build the full trace document (``{"traceEvents": [...]}``)."""
    spans = source.spans if isinstance(source, Tracer) else list(source)
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"clock": "run-time (simulated or relative wall) seconds"},
    }


def write_chrome_trace(path: str, source: Tracer | Iterable[TraceSpan]) -> str:
    """Write the trace document as JSON; returns *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(source), fh, separators=(",", ":"), default=str)
    return path
