"""Static analysis for DYFLOW: spec verifier + determinism self-lint.

Two engines share one typed-diagnostic core:

* :func:`verify_spec` analyzes a parsed :class:`~repro.xmlspec.model.DyflowSpec`
  (plus an optional machine model and workflow) entirely statically and
  reports dangling references, infeasible placements, shadowed or
  conflicting policies, arbitration cycles, and out-of-range parameters.
* :func:`run_selflint` AST-checks the repro source tree for the
  determinism invariants the journal and observability subsystems rely
  on (no wall-clock in core paths, named RNG streams only, no
  set-iteration hazards, no mutable stage-module state) and for the
  fork/thread-safety hazards of the campaign layer (shared class
  state, inherited file handles, pre-reseed RNG draws, wall-clock in
  fork workers, blocking I/O on the tick path).

The spec verifier includes a flow-sensitive abstract-interpretation
pass (:func:`analyze_dataflow`) whose findings carry event-sequence
witnesses, and the mechanical subset of findings is auto-repairable
via :func:`fix_xml_text` / ``python -m repro.lint --fix``.

Findings are :class:`Diagnostic` values with stable ``DY###`` codes and
deterministic ordering, renderable as text, JSON, or SARIF 2.1.0 (see
:mod:`repro.lint.render` and the ``python -m repro.lint`` CLI).  Both
runtimes run the spec verifier before tick zero when constructed with
``preflight="warn"`` or ``preflight="strict"``.
"""

from repro.errors import LintError, VerificationError
from repro.lint.dataflow import analyze_dataflow
from repro.lint.diagnostics import (
    CODES,
    CodeInfo,
    Diagnostic,
    FixHint,
    Severity,
    SourceLocation,
    WitnessEvent,
    make,
    max_severity,
    sort_diagnostics,
)
from repro.lint.fixes import FIXABLE_CODES, FixResult, fix_spec, fix_xml_text
from repro.lint.preflight import (
    PREFLIGHT_MODES,
    PreflightWarning,
    run_preflight,
    spec_from_orchestrator,
    spec_from_threaded,
)
from repro.lint.render import FORMATS, render, render_json, render_sarif, render_text
from repro.lint.selflint import run_selflint
from repro.lint.speclint import lint_xml_text, verify_spec

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "FIXABLE_CODES",
    "FORMATS",
    "FixHint",
    "FixResult",
    "LintError",
    "PREFLIGHT_MODES",
    "PreflightWarning",
    "Severity",
    "SourceLocation",
    "VerificationError",
    "WitnessEvent",
    "analyze_dataflow",
    "fix_spec",
    "fix_xml_text",
    "lint_xml_text",
    "make",
    "max_severity",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
    "run_preflight",
    "run_selflint",
    "sort_diagnostics",
    "spec_from_orchestrator",
    "spec_from_threaded",
    "verify_spec",
]
