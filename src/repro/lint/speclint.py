"""Static verification of a parsed :class:`DyflowSpec`.

The verifier never raises on spec content: every defect becomes a
:class:`~repro.lint.diagnostics.Diagnostic`.  It subsumes the checks
:meth:`DyflowSpec.validate` enforces with exceptions (so hand-built
specs that bypassed validation still lint), and adds the analyses a
schema cannot express: resource feasibility against a machine model,
threshold-interval subsumption and co-fire conflicts between policies,
rule-dependency cycles, and parameter-range sanity for the
``<resilience>``/``<telemetry>``/``<journal>``/``<observability>``
elements.

Checks that need context beyond the document take it as optional
arguments: *machine* (a :class:`~repro.cluster.machine.Machine`) enables
the DY2xx placement checks; *workflow* (a
:class:`~repro.wms.spec.WorkflowSpec` or a plain collection of task
names) enables the DY110/DY111 cross-checks and sharpens DY106.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable

from repro.core.actions import ActionType, actions_conflict
from repro.core.policy import PolicyApplication, PolicySpec
from repro.errors import ReproError
from repro.lint.diagnostics import Diagnostic, Severity, make, sort_diagnostics
from repro.xmlspec.model import DyflowSpec

# Pseudo-task published by the health engine; HEALTH-source bindings
# monitor the orchestrator itself and are exempt from workflow checks.
_HEALTH_SOURCE = "HEALTH"


# --------------------------------------------------------------------------- #
# threshold intervals
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _Interval:
    """The set of metric values satisfying one evaluation condition."""

    lo: float
    hi: float
    lo_open: bool
    hi_open: bool

    def is_empty(self) -> bool:
        if math.isnan(self.lo) or math.isnan(self.hi):
            return True
        if self.lo > self.hi:
            return True
        if self.lo == self.hi:
            return self.lo_open or self.hi_open or math.isinf(self.lo)
        return False

    def overlaps(self, other: "_Interval") -> bool:
        if self.is_empty() or other.is_empty():
            return False
        lo, lo_open = max(
            (self.lo, self.lo_open), (other.lo, other.lo_open)
        )
        hi, hi_open = min(
            (self.hi, not self.hi_open), (other.hi, not other.hi_open)
        )
        hi_open = not hi_open
        return not _Interval(lo, hi, lo_open, hi_open).is_empty()

    def subsumes(self, other: "_Interval") -> bool:
        """Is *other* a subset of self?"""
        if other.is_empty():
            return True
        if self.is_empty():
            return False
        lo_ok = self.lo < other.lo or (
            self.lo == other.lo and (not self.lo_open or other.lo_open)
        )
        hi_ok = self.hi > other.hi or (
            self.hi == other.hi and (not self.hi_open or other.hi_open)
        )
        return lo_ok and hi_ok


_INF = float("inf")


def fire_interval(eval_op: str, threshold: float) -> _Interval | None:
    """Value interval on which the condition holds; None when the
    condition is not interval-shaped (NE)."""
    op = eval_op.upper()
    if op == "GT":
        return _Interval(threshold, _INF, True, True)
    if op == "GE":
        return _Interval(threshold, _INF, False, True)
    if op == "LT":
        return _Interval(-_INF, threshold, True, True)
    if op == "LE":
        return _Interval(-_INF, threshold, True, False)
    if op == "EQ":
        return _Interval(threshold, threshold, False, False)
    return None  # NE: the complement of a point; not an interval


# --------------------------------------------------------------------------- #
# xml-path helpers
# --------------------------------------------------------------------------- #
def _sensor_path(sid: str) -> str:
    return f"monitor/sensors/sensor[@id='{sid}']"


def _policy_path(pid: str) -> str:
    return f"decision/policies/policy[@id='{pid}']"


def _apply_path(app: PolicyApplication) -> str:
    return (
        f"decision/apply-on[@workflowId='{app.workflow_id}']"
        f"/apply-policy[@policyId='{app.policy_id}']"
    )


def _rule_path(workflow_id: str) -> str:
    return f"arbitration/rules/rule-for[@workflowId='{workflow_id}']"


def _mt_path(task: str, workflow_id: str) -> str:
    return (
        f"monitor/monitor-tasks/monitor-task[@name='{task}']"
        f"[@workflowId='{workflow_id}']"
    )


# --------------------------------------------------------------------------- #
# the verifier
# --------------------------------------------------------------------------- #
def verify_spec(
    spec: DyflowSpec,
    machine=None,
    workflow=None,
) -> list[Diagnostic]:
    """Statically verify *spec*; returns deterministic diagnostics.

    *machine* is a :class:`~repro.cluster.machine.Machine` (e.g.
    ``summit()``); *workflow* is a
    :class:`~repro.wms.spec.WorkflowSpec` or an iterable of task names.
    Both are optional — context-dependent checks are skipped without
    them.
    """
    diags: list[Diagnostic] = []
    task_specs, task_names = _workflow_view(workflow)

    diags += _check_references(spec)
    diags += _check_usage(spec)
    diags += _check_workflow_refs(spec, task_names)
    diags += _check_bindings(spec)
    diags += _check_placement(spec, machine, task_specs)
    diags += _check_rule_cycles(spec)
    diags += _check_policy_interactions(spec)
    diags += _check_parameter_ranges(spec)
    diags += _check_tenants(spec)
    diags += _check_fleet_slos(spec)
    # Imported here: dataflow imports our interval math at module level,
    # so the top-level import must stay one-directional.
    from repro.lint.dataflow import analyze_dataflow

    diags += analyze_dataflow(spec, machine=machine, workflow=workflow)
    return sort_diagnostics(diags)


def _workflow_view(workflow) -> tuple[dict, set[str] | None]:
    """(task name -> TaskSpec or None, known task names or None)."""
    if workflow is None:
        return {}, None
    tasks = getattr(workflow, "tasks", None)
    if isinstance(tasks, dict):
        return dict(tasks), set(tasks)
    names = set(workflow)
    return {}, names


def _health_sensors(spec: DyflowSpec) -> set[str]:
    return {
        sid
        for sid, s in spec.sensors.items()
        if s.source_type.upper() == _HEALTH_SOURCE
    }


# -- DY101/102/103/104/105/107: dangling references ------------------------- #
def _check_references(spec: DyflowSpec) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for mt in spec.monitor_tasks:
        if mt.sensor_id not in spec.sensors:
            out.append(make(
                "DY101",
                f"monitor-task {mt.task!r} uses unknown sensor {mt.sensor_id!r}",
                xml_path=_mt_path(mt.task, mt.workflow_id),
            ))
    for policy in spec.policies.values():
        sensor = spec.sensors.get(policy.sensor_id)
        if sensor is None:
            out.append(make(
                "DY102",
                f"policy {policy.policy_id!r} assesses unknown sensor "
                f"{policy.sensor_id!r}",
                xml_path=_policy_path(policy.policy_id),
            ))
        else:
            grans = {g.granularity for g in sensor.group_by}
            if policy.granularity not in grans:
                out.append(make(
                    "DY104",
                    f"policy {policy.policy_id!r} wants granularity "
                    f"{policy.granularity!r} but sensor {policy.sensor_id!r} "
                    f"only groups by {sorted(grans)}",
                    xml_path=_policy_path(policy.policy_id),
                ))
    for app in spec.applications:
        if app.policy_id not in spec.policies:
            out.append(make(
                "DY103",
                f"apply-policy references unknown policy {app.policy_id!r}",
                xml_path=_apply_path(app),
            ))
    for rule in spec.rules.values():
        for pid in rule.policy_priorities:
            if pid not in spec.policies:
                out.append(make(
                    "DY105",
                    f"policy-priority for unknown policy {pid!r}",
                    xml_path=_rule_path(rule.workflow_id),
                ))
    for sid, sensor in spec.sensors.items():
        if sensor.join is None:
            continue
        other = sensor.join.other_sensor_id
        if other == sid:
            out.append(make(
                "DY107",
                f"sensor {sid!r} joins with itself",
                xml_path=_sensor_path(sid),
            ))
        elif other not in spec.sensors:
            out.append(make(
                "DY107",
                f"sensor {sid!r} joins with unknown sensor {other!r}",
                xml_path=_sensor_path(sid),
            ))
    return out


# -- DY106/108/109: dead constructs ----------------------------------------- #
def spec_task_names(spec: DyflowSpec) -> set[str]:
    """Every task name the document itself mentions."""
    names = {mt.task for mt in spec.monitor_tasks}
    for app in spec.applications:
        names.update(app.act_on_tasks)
        if app.assess_task:
            names.add(app.assess_task)
    for rule in spec.rules.values():
        for dep in rule.dependencies:
            names.add(dep.task)
            names.add(dep.parent)
    return names


def unmonitored_rule_tasks(spec: DyflowSpec) -> list[tuple[str, str]]:
    """(workflow_id, task) pairs for rule task refs naming nothing the
    document monitors or acts on — the latent parser gap the strict
    parse mode rejects (see :func:`repro.xmlspec.parse_dyflow_xml`)."""
    known = spec_task_names(spec)
    out: list[tuple[str, str]] = []
    for rule in spec.rules.values():
        for task in sorted(rule.task_priorities):
            if task not in known:
                out.append((rule.workflow_id, task))
    return out


def _check_usage(spec: DyflowSpec) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    used_sensors = {p.sensor_id for p in spec.policies.values()}
    used_sensors |= {mt.sensor_id for mt in spec.monitor_tasks}
    for sid, sensor in spec.sensors.items():
        if sensor.join is not None:
            used_sensors.add(sensor.join.other_sensor_id)
    for sid in spec.sensors:
        if sid not in used_sensors:
            out.append(make(
                "DY108",
                f"sensor {sid!r} is bound to no monitor-task and assessed "
                "by no policy",
                xml_path=_sensor_path(sid),
                data=(("sensor_id", sid),),
            ))
    applied = {app.policy_id for app in spec.applications}
    for pid in spec.policies:
        if pid not in applied:
            out.append(make(
                "DY109",
                f"policy {pid!r} is defined but never applied",
                xml_path=_policy_path(pid),
                data=(("policy_id", pid),),
            ))
    for workflow_id, task in unmonitored_rule_tasks(spec):
        out.append(make(
            "DY106",
            f"rule for workflow {workflow_id!r} prioritizes task {task!r}, "
            "which no monitor-task, apply-policy, or dependency mentions",
            xml_path=_rule_path(workflow_id),
        ))
    return out


# -- DY110/111 + workflow-sharpened DY106 ----------------------------------- #
def _check_workflow_refs(spec: DyflowSpec, task_names: set[str] | None) -> list[Diagnostic]:
    if task_names is None:
        return []
    out: list[Diagnostic] = []
    health = _health_sensors(spec)
    for mt in spec.monitor_tasks:
        if mt.sensor_id in health:
            continue  # monitors the orchestrator, not a workflow task
        if mt.task not in task_names:
            out.append(make(
                "DY110",
                f"monitor-task {mt.task!r} is not a task of the workflow "
                f"(tasks: {sorted(task_names)})",
                xml_path=_mt_path(mt.task, mt.workflow_id),
            ))
    for app in spec.applications:
        for target in app.act_on_tasks:
            if target not in task_names:
                out.append(make(
                    "DY111",
                    f"apply-policy {app.policy_id!r} acts on {target!r}, "
                    "which the workflow does not define",
                    xml_path=_apply_path(app),
                ))
        policy = spec.policies.get(app.policy_id)
        assessed_health = policy is not None and policy.sensor_id in health
        if app.assess_task and app.assess_task not in task_names and not assessed_health:
            out.append(make(
                "DY111",
                f"apply-policy {app.policy_id!r} assesses {app.assess_task!r}, "
                "which the workflow does not define",
                xml_path=_apply_path(app),
            ))
    for rule in spec.rules.values():
        for task in sorted(rule.task_priorities):
            if task not in task_names:
                out.append(make(
                    "DY106",
                    f"rule for workflow {rule.workflow_id!r} prioritizes "
                    f"{task!r}, which the workflow does not define",
                    xml_path=_rule_path(rule.workflow_id),
                ))
        for dep in rule.dependencies:
            for endpoint in (dep.task, dep.parent):
                if endpoint not in task_names:
                    out.append(make(
                        "DY106",
                        f"rule dependency references {endpoint!r}, which the "
                        "workflow does not define",
                        xml_path=_rule_path(rule.workflow_id),
                    ))
    return out


# -- DY112: policies no monitor binding can ever feed ------------------------ #
def _check_bindings(spec: DyflowSpec) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    health = _health_sensors(spec)
    bound: set[tuple[str, str]] = {(mt.sensor_id, mt.task) for mt in spec.monitor_tasks}
    bound_sensors = {mt.sensor_id for mt in spec.monitor_tasks}
    for idx, app in enumerate(spec.applications):
        policy = spec.policies.get(app.policy_id)
        if policy is None or policy.sensor_id not in spec.sensors:
            continue  # DY103/DY102 already covers it
        if policy.sensor_id in health:
            continue  # the health engine feeds HEALTH streams directly
        if policy.granularity in ("task", "node-task") and app.assess_task:
            if (policy.sensor_id, app.assess_task) not in bound:
                out.append(make(
                    "DY112",
                    f"policy {app.policy_id!r} assesses task "
                    f"{app.assess_task!r} via sensor {policy.sensor_id!r}, "
                    "but no monitor-task binds that sensor to that task — "
                    "the policy can never fire",
                    xml_path=_apply_path(app),
                    data=(("app_index", str(idx)), ("policy_id", app.policy_id)),
                ))
        elif policy.sensor_id not in bound_sensors:
            out.append(make(
                "DY112",
                f"policy {app.policy_id!r} assesses sensor "
                f"{policy.sensor_id!r}, which no monitor-task binds — "
                "the policy can never fire",
                xml_path=_apply_path(app),
                data=(("app_index", str(idx)), ("policy_id", app.policy_id)),
            ))
    return out


# -- DY201/202/203: resource feasibility ------------------------------------ #
def _check_placement(spec: DyflowSpec, machine, task_specs: dict) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    total_cores = machine.total_cores if machine is not None else None
    if machine is not None and task_specs:
        cores_per_node = machine.cores_per_node
        num_nodes = len(machine.nodes)
        initial = sum(t.nprocs for t in task_specs.values() if t.autostart)
        if initial > total_cores:
            out.append(make(
                "DY201",
                f"autostart tasks need {initial} cores but machine "
                f"{machine.name!r} has {total_cores}",
                xml_path="dyflow",
            ))
        for name, task in sorted(task_specs.items()):
            if task.nprocs > total_cores:
                out.append(make(
                    "DY202",
                    f"task {name!r} needs {task.nprocs} cores but machine "
                    f"{machine.name!r} has {total_cores} in total",
                    xml_path="dyflow",
                ))
            if task.procs_per_node is not None:
                if task.procs_per_node > cores_per_node:
                    out.append(make(
                        "DY202",
                        f"task {name!r} gangs {task.procs_per_node} procs "
                        f"per node but nodes have {cores_per_node} cores",
                        xml_path="dyflow",
                    ))
                elif math.ceil(task.nprocs / task.procs_per_node) > num_nodes:
                    need = math.ceil(task.nprocs / task.procs_per_node)
                    out.append(make(
                        "DY202",
                        f"task {name!r} needs {need} nodes at "
                        f"{task.procs_per_node} procs/node but machine "
                        f"{machine.name!r} has {num_nodes}",
                        xml_path="dyflow",
                    ))
    for app in spec.applications:
        policy = spec.policies.get(app.policy_id)
        if policy is None or policy.action not in (ActionType.ADDCPU, ActionType.RMCPU):
            continue
        params = dict(policy.default_params)
        params.update(app.action_params)
        adjust = params.get("adjust-by", 1)
        if not isinstance(adjust, (int, float)) or adjust <= 0:
            out.append(make(
                "DY203",
                f"apply-policy {app.policy_id!r}: adjust-by must be a "
                f"positive number, got {adjust!r}",
                xml_path=_apply_path(app),
            ))
            continue
        if total_cores is not None and adjust > total_cores:
            out.append(make(
                "DY203",
                f"apply-policy {app.policy_id!r}: adjust-by {adjust} exceeds "
                f"the machine's {total_cores} cores — the action can never "
                "be granted",
                xml_path=_apply_path(app),
            ))
            continue
        if (
            total_cores is not None
            and policy.action is ActionType.ADDCPU
            and task_specs
        ):
            for target in app.act_on_tasks:
                task = task_specs.get(target)
                if task is not None and task.nprocs + adjust > total_cores:
                    out.append(make(
                        "DY203",
                        f"ADDCPU on {target!r} would need "
                        f"{task.nprocs + int(adjust)} cores but machine has "
                        f"{total_cores}",
                        xml_path=_apply_path(app),
                    ))
    return out


# -- DY204: rule dependency cycles ------------------------------------------ #
def _check_rule_cycles(spec: DyflowSpec) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for rule in spec.rules.values():
        edges: dict[str, list[str]] = {}
        for dep in rule.dependencies:
            edges.setdefault(dep.parent, []).append(dep.task)
        cycle = _find_cycle(edges)
        if cycle is not None:
            out.append(make(
                "DY204",
                f"rule dependencies for workflow {rule.workflow_id!r} form "
                f"a cycle: {' -> '.join(cycle)} — arbitration would wait on "
                "itself",
                xml_path=_rule_path(rule.workflow_id),
            ))
    return out


def _find_cycle(edges: dict[str, list[str]]) -> list[str] | None:
    """First cycle in deterministic (sorted) DFS order, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[str, int] = {}
    stack: list[str] = []

    def visit(node: str) -> list[str] | None:
        color[node] = GRAY
        stack.append(node)
        for nxt in sorted(edges.get(node, [])):
            c = color.get(nxt, WHITE)
            if c == GRAY:
                return stack[stack.index(nxt):] + [nxt]
            if c == WHITE:
                found = visit(nxt)
                if found is not None:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(edges):
        if color.get(node, WHITE) == WHITE:
            found = visit(node)
            if found is not None:
                return found
    return None


# -- DY301/302/303: policy interaction analysis ----------------------------- #
def _check_policy_interactions(spec: DyflowSpec) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for pid, policy in spec.policies.items():
        if _unsatisfiable(policy):
            out.append(make(
                "DY303",
                f"policy {pid!r}: condition "
                f"{policy.eval_op.upper()} {policy.threshold} can never hold "
                "for a finite metric value",
                xml_path=_policy_path(pid),
            ))
    apps = [
        (app, spec.policies[app.policy_id])
        for app in spec.applications
        if app.policy_id in spec.policies
    ]
    for i, (app_a, pol_a) in enumerate(apps):
        for app_b, pol_b in apps[i + 1:]:
            if app_a.workflow_id != app_b.workflow_id:
                continue
            if pol_a.sensor_id != pol_b.sensor_id:
                continue
            if pol_a.granularity != pol_b.granularity:
                continue
            if app_a.assess_task != app_b.assess_task:
                continue
            shared = sorted(set(app_a.act_on_tasks) & set(app_b.act_on_tasks))
            if not shared:
                continue
            ia = fire_interval(pol_a.eval_op, pol_a.threshold)
            ib = fire_interval(pol_b.eval_op, pol_b.threshold)
            out += _subsumption(app_a, pol_a, app_b, pol_b, ia, ib, shared)
            out += _conflict(spec, app_a, pol_a, app_b, pol_b, ia, ib, shared)
    return out


def _unsatisfiable(policy: PolicySpec) -> bool:
    thr = policy.threshold
    if math.isnan(thr):
        return policy.eval_op.upper() != "NE"
    interval = fire_interval(policy.eval_op, thr)
    return interval is not None and interval.is_empty()


def _subsumption(app_a, pol_a, app_b, pol_b, ia, ib, shared) -> list[Diagnostic]:
    if pol_a.policy_id == pol_b.policy_id or pol_a.action != pol_b.action:
        return []
    if ia is None or ib is None:
        return []
    if ia.subsumes(ib):
        outer, inner = pol_a, pol_b
    elif ib.subsumes(ia):
        outer, inner = pol_b, pol_a
    else:
        return []
    return [make(
        "DY301",
        f"policy {inner.policy_id!r} ({inner.eval_op.upper()} "
        f"{inner.threshold}) is subsumed by {outer.policy_id!r} "
        f"({outer.eval_op.upper()} {outer.threshold}) on "
        f"{shared} — whenever it fires, the wider policy fires the same "
        f"{outer.action.value} too",
        xml_path=_policy_path(inner.policy_id),
        data=(
            ("policy_id", inner.policy_id),
            ("subsumed_by", outer.policy_id),
        ),
    )]


def _conflict(spec, app_a, pol_a, app_b, pol_b, ia, ib, shared) -> list[Diagnostic]:
    if not actions_conflict(pol_a.action, pol_b.action):
        return []
    # NE conditions overlap with everything except their excluded point.
    overlap = True if ia is None or ib is None else ia.overlaps(ib)
    if not overlap:
        return []
    rule = spec.rules.get(app_a.workflow_id)
    if rule is not None:
        ra = rule.policy_priorities.get(pol_a.policy_id)
        rb = rule.policy_priorities.get(pol_b.policy_id)
        if ra is not None and rb is not None and ra != rb:
            return []  # arbitration resolves the pair deterministically
    return [make(
        "DY302",
        f"policies {pol_a.policy_id!r} ({pol_a.action.value}) and "
        f"{pol_b.policy_id!r} ({pol_b.action.value}) can co-fire on "
        f"{shared} with contradictory actions and no policy-priority "
        "rule ranks them",
        xml_path=_apply_path(app_a),
    )]


# -- DY4xx: parameter ranges -------------------------------------------------- #
def _validate_part(part, code: str, xml_path: str) -> list[Diagnostic]:
    try:
        part.validate()
    except ReproError as err:
        return [make(code, str(err), xml_path=xml_path)]
    return []


def _check_parameter_ranges(spec: DyflowSpec) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    res = spec.resilience
    if res is not None:
        out += _validate_part(res, "DY407", "resilience")
        retry = res.retry
        if retry is not None and retry.backoff_max < retry.backoff_base:
            out.append(make(
                "DY401",
                f"retry backoff-max {retry.backoff_max} is below backoff-base "
                f"{retry.backoff_base}; every delay is clamped to the cap",
                xml_path="resilience/retry",
                data=(("backoff_base", repr(retry.backoff_base)),),
            ))
        wd = res.watchdog
        if wd is not None and wd.poll > wd.heartbeat_timeout > 0:
            out.append(make(
                "DY402",
                f"watchdog polls every {wd.poll}s but the heartbeat timeout "
                f"is {wd.heartbeat_timeout}s; hangs are detected up to a "
                "full poll late",
                xml_path="resilience/watchdog",
            ))
        q = res.quarantine
        if q is not None and 0 < q.cooldown < q.window:
            out.append(make(
                "DY406",
                f"quarantine cooldown {q.cooldown}s is shorter than its "
                f"failure window {q.window}s; nodes re-enter rotation while "
                "their failures still count",
                xml_path="resilience/quarantine",
            ))
        net = res.network
        if net is not None and net.enabled and net.max_retransmits == 0:
            # Effective drop rate per link: the base profile or any override.
            lossy = net.drop_prob > 0 or any(
                lo.drop_prob is not None and lo.drop_prob > 0 for lo in net.links
            )
            if lossy:
                out.append(make(
                    "DY408",
                    "network drop-prob is nonzero but max-retransmits is 0 "
                    "(fire-and-forget); dropped Monitor envelopes are lost "
                    "for good and never retransmitted",
                    xml_path="resilience/network",
                ))
        if net is not None and net.enabled and res.watchdog is not None:
            timeout = res.watchdog.heartbeat_timeout
            for i, w in enumerate(net.partitions):
                if w.duration > timeout > 0:
                    out.append(make(
                        "DY409",
                        f"partition window of {w.duration}s outlasts the "
                        f"watchdog heartbeat timeout ({timeout}s); healthy "
                        "tasks behind the partition will be declared hung "
                        "and killed",
                        xml_path=f"resilience/network/partition[{i}]",
                    ))
    if spec.journal is not None:
        out += _validate_part(spec.journal, "DY403", "journal")
    if spec.telemetry is not None:
        out += _validate_part(spec.telemetry, "DY405", "telemetry")
    obs = spec.observability
    if obs is not None:
        out += _validate_part(obs, "DY404", "observability")
        for i, det in enumerate(obs.anomalies):
            if det.min_points > det.window:
                out.append(make(
                    "DY404",
                    f"anomaly detector for {det.metric!r} needs "
                    f"{det.min_points} points but its window only holds "
                    f"{det.window}; it can never fire",
                    xml_path=f"observability/anomaly[{i}]",
                    severity=Severity.WARNING,
                ))
    return out


# -- DY41x: multi-tenant campaign service ------------------------------------ #
def _check_tenants(spec: DyflowSpec) -> list[Diagnostic]:
    ten = spec.tenants
    if ten is None:
        return []
    out = _validate_part(ten, "DY407", "tenants")
    capacity = ten.capacity_cores
    if capacity > 0:
        for i, t in enumerate(ten.tenants):
            if t.quota_cores > capacity:
                out.append(make(
                    "DY410",
                    f"tenant {t.tenant_id!r} quota-cores {t.quota_cores} "
                    f"exceeds the shared machine's capacity of {capacity} "
                    f"cores ({ten.nodes} nodes x {ten.cores_per_node}); the "
                    "quota can never be filled and admission behaves as "
                    "uncapped",
                    xml_path=f"tenants/tenant[{i}]",
                ))
    ex = ten.executor
    if ex is not None and ex.kill_prob > 0 and ex.max_attempts <= 1:
        out.append(make(
            "DY411",
            f"executor injects worker kills (kill-prob {ex.kill_prob}) but "
            f"max-attempts is {ex.max_attempts}; every killed cell is "
            "immediately poisoned instead of retried",
            xml_path="tenants/executor",
        ))
    return out


# -- DY412: tenant-scoped SLOs must name declared tenants --------------------- #
def _check_fleet_slos(spec: DyflowSpec) -> list[Diagnostic]:
    obs = spec.observability
    if obs is None:
        return []
    known = (
        {t.tenant_id for t in spec.tenants.tenants}
        if spec.tenants is not None else set()
    )
    out: list[Diagnostic] = []
    for i, slo in enumerate(obs.slos):
        if slo.tenant and slo.tenant not in known:
            hint = (
                f"declared tenants: {', '.join(sorted(known))}"
                if known else "no <tenants> section declares any tenant"
            )
            out.append(make(
                "DY412",
                f"SLO on {slo.metric!r} ({slo.stat}) references unknown "
                f"tenant {slo.tenant!r}; the objective can never fire ({hint})",
                xml_path=f"observability/slo[{i}]",
            ))
    return out


# --------------------------------------------------------------------------- #
# entry point used by the CLI: lint raw XML text
# --------------------------------------------------------------------------- #
def lint_xml_text(
    text: str,
    machine=None,
    workflow=None,
    filename: str | None = None,
) -> list[Diagnostic]:
    """Parse (without validation) and verify one XML document.

    A document that fails to parse yields a single ``DY100`` error
    instead of raising, so the CLI can lint a whole corpus in one pass.
    """
    from repro.errors import XmlSpecError
    from repro.xmlspec.parser import parse_dyflow_xml

    try:
        spec = parse_dyflow_xml(text, validate=False)
    except (XmlSpecError, ValueError) as err:
        # ValueError covers malformed numeric attributes (float("x"))
        # the parser coerces before its own validation runs.
        return [make("DY100", str(err), file=filename, xml_path=None if filename else "dyflow")]
    diags = verify_spec(spec, machine=machine, workflow=workflow)
    if filename is not None:
        diags = [
            replace(
                d,
                location=type(d.location)(
                    xml_path=d.location.xml_path, file=filename, line=d.location.line
                ),
            )
            for d in diags
        ]
    return diags


def count_at_or_above(diags: Iterable[Diagnostic], floor: Severity) -> int:
    return sum(1 for d in diags if d.severity >= floor)
