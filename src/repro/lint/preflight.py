"""Pre-flight verification for both runtimes.

Both :class:`~repro.runtime.sim_driver.DyflowOrchestrator` and
:class:`~repro.runtime.threaded.ThreadedDyflow` accept a
``preflight=`` setting:

``"off"``
    (default) no verification; identical behavior to earlier releases.
``"warn"``
    run the spec verifier before tick zero and emit a
    :class:`PreflightWarning` carrying the findings; the run proceeds.
``"strict"``
    run the verifier and raise :class:`repro.errors.VerificationError`
    before tick zero if any error-severity diagnostic is present.

Verification is pure analysis over already-configured state — it draws
no RNG stream and reads no clock — so enabling it never changes the
behavior (or the scenario fingerprint) of a spec that passes.  Because
it delegates to :func:`~repro.lint.speclint.verify_spec`, the
flow-sensitive dataflow diagnostics (DY205/DY304/DY413, with witnesses)
surface through preflight as well when a machine/workflow is attached.
"""

from __future__ import annotations

import warnings

from repro.errors import LintError, VerificationError
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.speclint import verify_spec
from repro.xmlspec.model import DyflowSpec, MonitorTaskSpec, RuleSpec

PREFLIGHT_MODES = ("off", "warn", "strict")


class PreflightWarning(UserWarning):
    """Pre-flight verification produced findings in ``warn`` mode."""


def check_mode(mode: str) -> str:
    if mode not in PREFLIGHT_MODES:
        raise LintError(
            f"unknown preflight mode {mode!r} (choose from {PREFLIGHT_MODES})"
        )
    return mode


def run_preflight(
    mode: str,
    spec: DyflowSpec,
    machine=None,
    workflow=None,
) -> list[Diagnostic]:
    """Verify *spec* under *mode*; returns the diagnostics it produced.

    Raises :class:`VerificationError` (strict mode, error findings) or
    emits a :class:`PreflightWarning` (warn mode, any findings).
    """
    if check_mode(mode) == "off":
        return []
    diags = verify_spec(spec, machine=machine, workflow=workflow)
    if mode == "strict":
        if any(d.severity is Severity.ERROR for d in diags):
            raise VerificationError(diags)
    elif diags:
        lines = [f"pre-flight verification found {len(diags)} issue(s):"]
        lines += [f"  {d.format()}" for d in diags]
        warnings.warn(PreflightWarning("\n".join(lines)), stacklevel=3)
    return diags


# --------------------------------------------------------------------------- #
# spec reconstruction from configured runtimes
# --------------------------------------------------------------------------- #
def spec_from_orchestrator(orch) -> DyflowSpec:
    """Rebuild the effective :class:`DyflowSpec` of a configured
    :class:`~repro.runtime.sim_driver.DyflowOrchestrator`."""
    workflow_id = orch.launcher.workflow.workflow_id
    monitor_tasks = [
        MonitorTaskSpec(
            task=binding.instance.task,
            workflow_id=binding.instance.workflow_id,
            sensor_id=binding.instance.spec.sensor_id,
        )
        for client in orch.clients
        for binding in client.bindings
    ]
    rules = {}
    if orch.rules is not None:
        rules[workflow_id] = RuleSpec(
            workflow_id=workflow_id,
            task_priorities=dict(orch.rules.task_priorities),
            policy_priorities=dict(orch.rules.policy_priorities),
            dependencies=list(orch.rules.dependencies),
        )
    return DyflowSpec(
        sensors=dict(orch._sensors),
        monitor_tasks=monitor_tasks,
        policies={p.policy_id: p for p in orch.decision.policies},
        applications=[rt.application for rt in orch.decision.runtimes],
        rules=rules,
        resilience=orch.launcher.resilience,
        telemetry=orch.telemetry,
        journal=orch._journal_spec,
        observability=orch.observability,
    )


def spec_from_threaded(run) -> DyflowSpec:
    """Rebuild the effective spec of a configured
    :class:`~repro.runtime.threaded.ThreadedDyflow`."""
    monitor_tasks = [
        MonitorTaskSpec(
            task=binding.instance.task,
            workflow_id=binding.instance.workflow_id,
            sensor_id=binding.instance.spec.sensor_id,
        )
        for binding in run.client.bindings
    ]
    return DyflowSpec(
        sensors=dict(run._sensors),
        monitor_tasks=monitor_tasks,
        policies={p.policy_id: p for p in run.decision.policies},
        applications=[rt.application for rt in run.decision.runtimes],
        rules={},
        resilience=run.resilience,
        telemetry=run.telemetry,
        journal=run._journal_spec,
        observability=run.observability,
    )


def preflight_orchestrator(orch, mode: str) -> list[Diagnostic]:
    """Verify a configured simulation orchestrator before tick zero."""
    if check_mode(mode) == "off":
        return []
    return run_preflight(
        mode,
        spec_from_orchestrator(orch),
        machine=orch.launcher.machine,
        workflow=orch.launcher.workflow,
    )


def preflight_threaded(run, mode: str) -> list[Diagnostic]:
    """Verify a configured threaded runtime before the first task starts."""
    if check_mode(mode) == "off":
        return []
    return run_preflight(mode, spec_from_threaded(run), workflow=set(run.specs))
