"""``python -m repro.lint`` — front end for both analysis engines.

Spec mode (default) lints DYFLOW XML documents::

    python -m repro.lint examples/specs/xgc.xml --machine summit

Self mode lints the repro source tree for determinism violations::

    python -m repro.lint --self --format sarif

Fix mode repairs the mechanical subset in place and reports the rest::

    python -m repro.lint --fix my_spec.xml

Exit codes: 0 — no findings at or above ``--fail-on`` (default:
``error``); 1 — findings at or above the threshold; 2 — usage error.
With ``--fix``, repaired findings do not count toward the exit code —
only what remains after fixing does.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.diagnostics import Diagnostic, Severity, sort_diagnostics
from repro.lint.render import FORMATS, render
from repro.lint.selflint import run_selflint
from repro.lint.speclint import lint_xml_text

_MACHINES = ("none", "summit", "deepthought2")


def _machine(name: str):
    if name == "none":
        return None
    from repro.cluster.machine import deepthought2, summit

    return {"summit": summit, "deepthought2": deepthought2}[name]()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="DYFLOW static analysis: spec verifier and determinism self-lint.",
    )
    parser.add_argument(
        "specs",
        nargs="*",
        metavar="SPEC.xml",
        help="DYFLOW XML documents to verify (spec mode)",
    )
    parser.add_argument(
        "--self",
        dest="self_mode",
        action="store_true",
        help="lint the repro source tree instead of XML specs",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="source root for --self (default: the installed repro package)",
    )
    parser.add_argument(
        "--machine",
        choices=_MACHINES,
        default="none",
        help="machine model for resource-feasibility checks (spec mode)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply safe auto-fixes to the spec files in place "
        "(dead-construct elimination, subsumed-policy removal, "
        "parameter clamping); repaired findings are reported but do "
        "not affect the exit code",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "info"),
        default="error",
        help="lowest severity that causes a nonzero exit (default: error)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.self_mode and args.specs:
        parser.error("--self takes no SPEC.xml arguments")
    if args.self_mode and args.fix:
        parser.error("--fix applies to XML specs, not --self")
    if not args.self_mode and not args.specs:
        parser.error("nothing to lint: pass SPEC.xml files or --self")

    diags: list[Diagnostic] = []
    if args.self_mode:
        diags = run_selflint(Path(args.root) if args.root else None)
    else:
        machine = _machine(args.machine)
        for spec_path in args.specs:
            path = Path(spec_path)
            try:
                text = path.read_text(encoding="utf-8")
            except OSError as err:
                parser.error(f"cannot read {spec_path}: {err}")
            if args.fix:
                from repro.lint.fixes import fix_xml_text

                result = fix_xml_text(
                    text, machine=machine, filename=path.as_posix()
                )
                if result.changed:
                    path.write_text(result.text, encoding="utf-8")
                diags += result.fixed
                diags += result.remaining
            else:
                diags += lint_xml_text(
                    text, machine=machine, filename=path.as_posix()
                )
        diags = sort_diagnostics(diags)

    report = render(diags, args.format)
    if args.output is not None:
        Path(args.output).write_text(report, encoding="utf-8")
    else:
        sys.stdout.write(report)

    floor = Severity(args.fail_on)
    return 1 if any(d.severity >= floor for d in diags if d.fix is None) else 0
