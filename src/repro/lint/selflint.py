"""Determinism self-lint: AST checks over the repro source tree.

The journal (bit-identical resume) and observability (byte-identical
reports) subsystems rest on invariants that no runtime assertion can
see.  This engine codifies them as ``DY5xx`` diagnostics:

DY501  no wall-clock reads (``time.time``/``perf_counter``/
       ``datetime.now`` ...) in deterministic core paths; the sim clock
       or the telemetry wall-clock shim must be used instead.  The
       telemetry package and the wall-clock threaded runtime are exempt
       by construction.
DY502  no global or unseeded stdlib ``random``; every stochastic choice
       must draw from a named stream in :mod:`repro.sim.rng`.
DY503  no iteration directly over a set display or ``set(...)`` call:
       barrier-journaled state replayed on another interpreter must not
       depend on set ordering.  Wrap in ``sorted(...)``.
DY504  no mutable module-level state in the four stage modules
       (monitor/decision/arbitration/actuation) — stage state must live
       on instances so it is journaled and resumable.

The campaign layer's fork-based executor and the threaded runtime add a
concurrency surface the determinism checks cannot see, covered by five
further codes:

DY505  no mutable class-level state in a module that imports
       ``threading`` — class attributes are shared across every
       instance and therefore every thread, unsynchronized.
DY506  no module-level ``open(...)`` in a module that imports
       ``multiprocessing`` — a fork inherits the file handle and two
       processes then share one file position.
DY507  no RNG draw in a fork-worker entry function before the
       per-cell reseed — the child would replay the parent's stream.
DY508  no wall-clock read inside a fork-worker entry function — child
       telemetry must carry deterministic times, and the file-level
       DY501 exemption for the supervisor does not extend to the child.
DY509  no blocking I/O (``open``/``input``/``time.sleep``/
       ``subprocess``) in the sim tick path: the ``sim/`` package and
       the four stage modules.

A finding on a line carrying a ``lint: ignore[<code>]`` comment (one
or more comma-separated codes) is suppressed; this is the escape hatch
for the telemetry shims the checks cannot prove safe.  A suppression
that suppresses nothing is itself reported (DY510), so stale
suppressions cannot hide regressions.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.lint.diagnostics import Diagnostic, make, sort_diagnostics

#: Paths (relative to the package root, ``/`` separated) where wall-clock
#: reads are legitimate: telemetry measures real latency, the threaded
#: runtime *is* wall-clock driven, and the campaign executor's process
#: supervisor times out real worker processes (its serial mode — the
#: deterministic path — never reads the clock).
WALLCLOCK_EXEMPT = ("telemetry/", "runtime/threaded.py", "campaign/executor.py")

#: The four control-loop stage modules (DY504 scope).
STAGE_MODULES = (
    "core/monitor.py",
    "core/decision.py",
    "core/arbitration.py",
    "core/actuation.py",
)

#: The one module allowed to touch stdlib ``random`` (it does not today,
#: but the named-stream factory is the only place that ever could).
RNG_MODULE = "sim/rng.py"

#: The sim tick path (DY509 scope): the discrete-event core plus the
#: four control-loop stages it drives every tick.  Blocking I/O here
#: stalls every workflow sharing the engine.
SIM_TICK_SCOPE = ("sim/",) + STAGE_MODULES

#: Attribute/function names that draw from an RNG stream (DY507).
_RNG_DRAW_FNS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "gauss", "normalvariate",
        "expovariate", "weibullvariate", "betavariate", "choice", "choices",
        "shuffle", "sample",
    }
)

#: Call-name substrings that mark the per-cell reseed point in a
#: fork-worker entry (DY507): everything drawn after one of these runs
#: comes from the child's own named streams.
_RESEED_MARKERS = ("reseed", "reset_worker")

_WALLCLOCK_TIME_FNS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
_WALLCLOCK_DT_FNS = frozenset({"now", "utcnow", "today"})

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Z0-9,\s]+)\]")

_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _suppressions(source: str) -> dict[int, set[str]]:
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            out[lineno] = {c.strip() for c in m.group(1).split(",") if c.strip()}
    return out


class _ImportNames:
    """Which local names resolve to the time/datetime/random modules or
    their relevant members, tracking ``import x as y`` aliases."""

    def __init__(self) -> None:
        self.time_modules: set[str] = set()
        self.datetime_modules: set[str] = set()
        self.datetime_classes: set[str] = set()
        self.time_fns: set[str] = set()
        self.random_lines: list[int] = []
        self.sleep_fns: set[str] = set()
        self.subprocess_modules: set[str] = set()
        self.imported_modules: set[str] = set()

    def visit(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imported_modules.add(alias.name.split(".")[0])
                    if alias.name == "time":
                        self.time_modules.add(local)
                    elif alias.name == "datetime":
                        self.datetime_modules.add(local)
                    elif alias.name == "subprocess":
                        self.subprocess_modules.add(local)
                    elif alias.name == "random" or alias.name.startswith("random."):
                        self.random_lines.append(node.lineno)
            elif isinstance(node, ast.ImportFrom):
                if node.module is not None:
                    self.imported_modules.add(node.module.split(".")[0])
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALLCLOCK_TIME_FNS:
                            self.time_fns.add(alias.asname or alias.name)
                        elif alias.name == "sleep":
                            self.sleep_fns.add(alias.asname or alias.name)
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name == "datetime":
                            self.datetime_classes.add(alias.asname or alias.name)
                elif node.module == "random":
                    self.random_lines.append(node.lineno)


def _check_wallclock(tree: ast.AST, names: _ImportNames) -> list[tuple[int, str]]:
    hits: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id in names.time_fns:
            hits.append((node.lineno, f"time.{fn.id}()"))
        elif isinstance(fn, ast.Attribute):
            base = fn.value
            if isinstance(base, ast.Name):
                if base.id in names.time_modules and fn.attr in _WALLCLOCK_TIME_FNS:
                    hits.append((node.lineno, f"time.{fn.attr}()"))
                elif base.id in names.datetime_classes and fn.attr in _WALLCLOCK_DT_FNS:
                    hits.append((node.lineno, f"datetime.{fn.attr}()"))
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id in names.datetime_modules
                and base.attr == "datetime"
                and fn.attr in _WALLCLOCK_DT_FNS
            ):
                hits.append((node.lineno, f"datetime.datetime.{fn.attr}()"))
    return hits


def _is_set_expr(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Set):
        return True
    if isinstance(expr, ast.SetComp):
        return True
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("set", "frozenset")
    ):
        return True
    return False


def _check_set_iteration(tree: ast.AST) -> list[int]:
    hits: list[int] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.For) and _is_set_expr(node.iter):
            hits.append(node.lineno)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter):
                    hits.append(node.lineno)
    return hits


def _is_mutable_value(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(expr, ast.Call):
        fn = expr.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        return name in _MUTABLE_FACTORIES
    return False


def _check_module_state(tree: ast.Module) -> list[tuple[int, str]]:
    hits: list[tuple[int, str]] = []
    for node in tree.body:
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id.startswith("__") and target.id.endswith("__"):
                continue  # __all__ and friends: mutable type, immutable use
            if _is_mutable_value(value):
                hits.append((node.lineno, target.id))
    return hits


# -- DY505-DY509: concurrency surface ---------------------------------------- #
def _check_class_state(tree: ast.Module) -> list[tuple[int, str, str]]:
    """Mutable class-level assignments: ``(line, class, attribute)``."""
    hits: list[tuple[int, str, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id.startswith("__") and target.id.endswith("__"):
                    continue  # __slots__ and friends
                if _is_mutable_value(value):
                    hits.append((stmt.lineno, node.name, target.id))
    return hits


def _check_fork_handles(tree: ast.Module) -> list[tuple[int, str]]:
    """Module-level ``NAME = open(...)``: ``(line, name)``."""
    hits: list[tuple[int, str]] = []
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "open"
        ):
            for target in targets:
                if isinstance(target, ast.Name):
                    hits.append((node.lineno, target.id))
    return hits


def _worker_entries(tree: ast.Module) -> list[ast.FunctionDef]:
    """Functions handed to ``Process(target=...)`` — fork-child entries."""
    targets: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        name = fn.attr if isinstance(fn, ast.Attribute) else (
            fn.id if isinstance(fn, ast.Name) else None
        )
        if name != "Process":
            continue
        for kw in node.keywords:
            if kw.arg == "target" and isinstance(kw.value, ast.Name):
                targets.add(kw.value.id)
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef) and node.name in targets
    ]


def _call_name(node: ast.Call) -> str | None:
    fn = node.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute):
        return fn.attr
    return None


def _check_worker_rng(entry: ast.FunctionDef) -> list[tuple[int, str]]:
    """RNG draws before the per-cell reseed inside a worker entry."""
    calls = sorted(
        (n for n in ast.walk(entry) if isinstance(n, ast.Call)),
        key=lambda n: (n.lineno, n.col_offset),
    )
    reseed_line: int | None = None
    for call in calls:
        name = _call_name(call) or ""
        if any(marker in name for marker in _RESEED_MARKERS):
            reseed_line = call.lineno
            break
    hits: list[tuple[int, str]] = []
    for call in calls:
        name = _call_name(call)
        if name in _RNG_DRAW_FNS and (
            reseed_line is None or call.lineno < reseed_line
        ):
            hits.append((call.lineno, f"{name}()"))
    return hits


def _check_tick_io(tree: ast.Module, names: _ImportNames) -> list[tuple[int, str]]:
    """Blocking-I/O calls: ``open``/``input``/``time.sleep``/``subprocess``."""
    hits: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        if isinstance(fn, ast.Name):
            if fn.id in ("open", "input"):
                hits.append((node.lineno, f"{fn.id}()"))
            elif fn.id in names.sleep_fns:
                hits.append((node.lineno, "time.sleep()"))
        elif isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
            base = fn.value.id
            if base in names.time_modules and fn.attr == "sleep":
                hits.append((node.lineno, "time.sleep()"))
            elif base in names.subprocess_modules:
                hits.append((node.lineno, f"subprocess.{fn.attr}()"))
    return hits


def lint_file(path: Path, rel: str) -> list[Diagnostic]:
    """Lint one source file; *rel* is its ``/``-separated path relative
    to the package root, used for scoping and reporting."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as err:
        # A file that does not parse cannot be certified deterministic.
        return [make(
            "DY501",
            f"file does not parse, determinism cannot be verified: {err.msg}",
            file=rel,
            line=err.lineno or 1,
        )]
    suppress = _suppressions(source)
    consumed: set[tuple[int, str]] = set()
    report = f"src/repro/{rel}"

    def keep(code: str, line: int) -> bool:
        if code in suppress.get(line, ()):
            consumed.add((line, code))
            return False
        return True

    out: list[Diagnostic] = []
    names = _ImportNames()
    names.visit(tree)

    if not rel.startswith(WALLCLOCK_EXEMPT):
        for line, what in _check_wallclock(tree, names):
            if keep("DY501", line):
                out.append(make(
                    "DY501",
                    f"{what} reads the wall clock in a deterministic path; "
                    "use the sim clock or a telemetry shim",
                    file=report,
                    line=line,
                ))
    if rel != RNG_MODULE:
        for line in names.random_lines:
            if keep("DY502", line):
                out.append(make(
                    "DY502",
                    "stdlib random imported; draw from a named stream in "
                    "repro.sim.rng instead",
                    file=report,
                    line=line,
                ))
    for line in _check_set_iteration(tree):
        if keep("DY503", line):
            out.append(make(
                "DY503",
                "iteration directly over a set: ordering is "
                "interpreter-dependent; wrap in sorted(...)",
                file=report,
                line=line,
            ))
    if rel in STAGE_MODULES:
        for line, name in _check_module_state(tree):
            if keep("DY504", line):
                out.append(make(
                    "DY504",
                    f"module-level mutable {name!r} in a stage module; stage "
                    "state must live on instances so the journal captures it",
                    file=report,
                    line=line,
                ))
    if "threading" in names.imported_modules:
        for line, cls, attr in _check_class_state(tree):
            if keep("DY505", line):
                out.append(make(
                    "DY505",
                    f"mutable class-level {attr!r} on {cls!r} in a "
                    "threading module is shared across every instance and "
                    "thread unsynchronized; move it into __init__",
                    file=report,
                    line=line,
                ))
    if "multiprocessing" in names.imported_modules:
        for line, name in _check_fork_handles(tree):
            if keep("DY506", line):
                out.append(make(
                    "DY506",
                    f"module-level file handle {name!r} is inherited by "
                    "forked workers; parent and child would share one file "
                    "position — open inside the worker instead",
                    file=report,
                    line=line,
                ))
        for entry in _worker_entries(tree):
            for line, what in _check_worker_rng(entry):
                if keep("DY507", line):
                    out.append(make(
                        "DY507",
                        f"{what} in fork-worker entry {entry.name!r} before "
                        "the per-cell reseed replays the parent's RNG "
                        "stream in every child",
                        file=report,
                        line=line,
                    ))
            for line, what in _check_wallclock(entry, names):
                if keep("DY508", line):
                    out.append(make(
                        "DY508",
                        f"{what} in fork-worker entry {entry.name!r}; child "
                        "telemetry must carry deterministic times — the "
                        "supervisor's wall-clock exemption does not extend "
                        "to the child",
                        file=report,
                        line=line,
                    ))
    if rel.startswith(SIM_TICK_SCOPE):
        for line, what in _check_tick_io(tree, names):
            if keep("DY509", line):
                out.append(make(
                    "DY509",
                    f"{what} blocks the sim tick path; every workflow "
                    "sharing the engine stalls behind it — move the I/O "
                    "off-tick or behind a buffered writer",
                    file=report,
                    line=line,
                ))
    for line in sorted(suppress):
        for code in sorted(suppress[line]):
            if (line, code) not in consumed:
                out.append(make(
                    "DY510",
                    f"suppression ignore[{code}] suppresses nothing; "
                    "remove the stale comment so it cannot hide a future "
                    "regression",
                    file=report,
                    line=line,
                ))
    return out


def package_root() -> Path:
    """Directory of the installed ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent


def run_selflint(root: Path | None = None) -> list[Diagnostic]:
    """Run every determinism check over the source tree at *root*
    (default: the installed ``repro`` package) and return deterministic
    diagnostics."""
    base = Path(root) if root is not None else package_root()
    files = sorted(
        p for p in base.rglob("*.py") if "__pycache__" not in p.parts
    )
    out: list[Diagnostic] = []
    for path in files:
        rel = path.relative_to(base).as_posix()
        out += lint_file(path, rel)
    return sort_diagnostics(out)
