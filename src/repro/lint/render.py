"""Render diagnostics as human text, JSON, or SARIF 2.1.0.

All three renderers consume the canonical sorted diagnostic list, so
repeated runs over the same input are byte-identical in every format.
"""

from __future__ import annotations

import json

from repro.errors import LintError
from repro.lint.diagnostics import CODES, Diagnostic, Severity, sort_diagnostics

FORMATS = ("text", "json", "sarif")

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-lint"
TOOL_URI = "https://example.org/dyflow-repro/docs/static-analysis.md"

_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def summarize(diags: list[Diagnostic]) -> dict[str, int]:
    counts = {"error": 0, "warning": 0, "info": 0}
    for d in diags:
        counts[d.severity.value] += 1
    return counts


def render_text(diags: list[Diagnostic]) -> str:
    diags = sort_diagnostics(diags)
    if not diags:
        return "no findings\n"
    lines: list[str] = []
    fixed = 0
    for d in diags:
        line = d.format()
        if d.fix is not None:
            line += f" [fixed: {d.fix.description}]"
            fixed += 1
        lines.append(line)
        for w in d.witness:
            lines.append(f"    witness {w.format()}")
    counts = summarize(diags)
    summary = (
        f"{len(diags)} finding(s): {counts['error']} error(s), "
        f"{counts['warning']} warning(s), {counts['info']} info"
    )
    if fixed:
        summary += f"; {fixed} fixed"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(diags: list[Diagnostic]) -> str:
    diags = sort_diagnostics(diags)
    doc = {
        "schema": "dyflow-lint-report/1",
        "summary": summarize(diags),
        "diagnostics": [d.to_dict() for d in diags],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _sarif_location(d: Diagnostic) -> dict:
    loc: dict = {}
    if d.location.file is not None:
        physical: dict = {
            "artifactLocation": {"uri": d.location.file, "uriBaseId": "SRCROOT"}
        }
        if d.location.line is not None:
            physical["region"] = {"startLine": d.location.line}
        loc["physicalLocation"] = physical
    if d.location.xml_path is not None:
        loc["logicalLocations"] = [
            {"fullyQualifiedName": d.location.xml_path, "kind": "element"}
        ]
    if not loc:
        loc["logicalLocations"] = [{"fullyQualifiedName": "<spec>", "kind": "module"}]
    return loc


def render_sarif(diags: list[Diagnostic]) -> str:
    """A single-run SARIF 2.1.0 log with the full stable rule catalog."""
    diags = sort_diagnostics(diags)
    rule_ids = sorted(CODES)
    rule_index = {code: i for i, code in enumerate(rule_ids)}
    rules = [
        {
            "id": code,
            "name": code,
            "shortDescription": {"text": CODES[code].title},
            "defaultConfiguration": {
                "level": _SARIF_LEVEL[CODES[code].default_severity]
            },
            "properties": {"engine": CODES[code].engine},
        }
        for code in rule_ids
    ]
    results = []
    for d in diags:
        result: dict = {
            "ruleId": d.code,
            "ruleIndex": rule_index[d.code],
            "level": _SARIF_LEVEL[d.severity],
            "message": {"text": d.message},
            "locations": [_sarif_location(d)],
        }
        if d.witness:
            result["properties"] = {
                "witness": [w.format() for w in d.witness]
            }
        if d.fix is not None and d.fix.replacement is not None:
            deleted: dict = {"charOffset": 0}
            if d.fix.span is not None:
                deleted["charLength"] = d.fix.span
            result["fixes"] = [
                {
                    "description": {"text": d.fix.description},
                    "artifactChanges": [
                        {
                            "artifactLocation": {
                                "uri": d.location.file or "<spec>",
                                "uriBaseId": "SRCROOT",
                            },
                            "replacements": [
                                {
                                    "deletedRegion": deleted,
                                    "insertedContent": {
                                        "text": d.fix.replacement
                                    },
                                }
                            ],
                        }
                    ],
                }
            ]
        results.append(result)
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def render(diags: list[Diagnostic], fmt: str) -> str:
    if fmt == "text":
        return render_text(diags)
    if fmt == "json":
        return render_json(diags)
    if fmt == "sarif":
        return render_sarif(diags)
    raise LintError(f"unknown output format {fmt!r} (choose from {FORMATS})")
