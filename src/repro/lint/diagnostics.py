"""The typed-diagnostic core shared by both analysis engines.

Every finding — from the spec verifier or the determinism self-lint —
is a :class:`Diagnostic` with a stable ``DY###`` code, a severity, a
source location (an XML path into the spec document or a ``file:line``
pair), and a message.  Diagnostics order deterministically so repeated
runs over the same input produce byte-identical reports in every output
format (text, JSON, SARIF).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import LintError


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``error > warning > info``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __ge__(self, other: "Severity") -> bool:
        return self.rank >= other.rank

    def __gt__(self, other: "Severity") -> bool:
        return self.rank > other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class SourceLocation:
    """Where a diagnostic anchors: an XML path or a ``file:line`` pair.

    Spec diagnostics use *xml_path* — a logical path into the document
    (e.g. ``decision/policies/policy[@id='INC']``); self-lint
    diagnostics use *file* and *line*.  Both may be absent for
    document-level findings.
    """

    xml_path: str | None = None
    file: str | None = None
    line: int | None = None

    def __str__(self) -> str:
        if self.file is not None:
            return f"{self.file}:{self.line}" if self.line is not None else self.file
        if self.xml_path is not None:
            return self.xml_path
        return "<spec>"

    def to_dict(self) -> dict:
        out: dict = {}
        if self.xml_path is not None:
            out["xml_path"] = self.xml_path
        if self.file is not None:
            out["file"] = self.file
        if self.line is not None:
            out["line"] = self.line
        return out


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one stable diagnostic code."""

    code: str
    title: str
    default_severity: Severity
    engine: str  # "spec" or "self"


def _spec(code: str, title: str, sev: Severity = Severity.ERROR) -> CodeInfo:
    return CodeInfo(code, title, sev, "spec")


def _self(code: str, title: str, sev: Severity = Severity.ERROR) -> CodeInfo:
    return CodeInfo(code, title, sev, "self")


#: The complete, stable code catalog.  Codes are never renumbered; a
#: retired check keeps its number reserved.  See docs/static-analysis.md.
CODES: dict[str, CodeInfo] = {
    c.code: c
    for c in (
        # -- document level ------------------------------------------------
        _spec("DY100", "spec failed to parse"),
        # -- cross-references (DY1xx) --------------------------------------
        _spec("DY101", "monitor-task uses an unknown sensor"),
        _spec("DY102", "policy assesses an unknown sensor"),
        _spec("DY103", "apply-policy references an unknown policy"),
        _spec("DY104", "policy granularity not produced by its sensor"),
        _spec("DY105", "policy-priority names an unknown policy"),
        _spec("DY106", "rule references a task nothing monitors or acts on",
              Severity.WARNING),
        _spec("DY107", "sensor join references an unknown sensor"),
        _spec("DY108", "sensor is never used by any policy", Severity.WARNING),
        _spec("DY109", "policy is never applied to any workflow", Severity.WARNING),
        _spec("DY110", "monitor-task names a task the workflow does not define"),
        _spec("DY111", "apply-policy targets a task the workflow does not define"),
        _spec("DY112", "policy can never fire: no monitor binding feeds it"),
        # -- resources and placement (DY2xx) -------------------------------
        _spec("DY201", "initial placement oversubscribes the machine"),
        _spec("DY202", "gang placement can never be satisfied"),
        _spec("DY203", "resource adjustment can never fit the machine"),
        _spec("DY204", "arbitration rule dependencies form a cycle"),
        # -- rule interaction (DY3xx) --------------------------------------
        _spec("DY301", "policy is shadowed by a subsuming policy", Severity.WARNING),
        _spec("DY302", "policies can co-fire with contradictory actions"),
        _spec("DY303", "policy condition is unsatisfiable"),
        # -- parameter ranges (DY4xx) --------------------------------------
        _spec("DY401", "retry backoff cap is below the backoff base", Severity.WARNING),
        _spec("DY402", "watchdog poll exceeds the heartbeat timeout", Severity.WARNING),
        _spec("DY403", "journal configuration out of range"),
        _spec("DY404", "SLO/anomaly configuration out of range"),
        _spec("DY405", "telemetry sample fraction out of range"),
        _spec("DY406", "quarantine cooldown shorter than its window", Severity.WARNING),
        _spec("DY407", "resilience configuration out of range"),
        _spec("DY408", "network drops messages but the retransmit budget is zero",
              Severity.WARNING),
        _spec("DY409", "partition window outlasts the watchdog heartbeat timeout",
              Severity.WARNING),
        _spec("DY410", "tenant quota exceeds the shared machine's capacity"),
        _spec("DY411", "executor injects worker kills but has no retry budget",
              Severity.WARNING),
        _spec("DY412", "observability SLO references an unknown tenant id"),
        # -- determinism self-lint (DY5xx) ----------------------------------
        _self("DY501", "wall-clock call in a deterministic core path"),
        _self("DY502", "global or unseeded RNG outside repro.sim.rng"),
        _self("DY503", "iteration over a set: order is not deterministic"),
        _self("DY504", "mutable module-level state in a stage module"),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One immutable finding.

    Sorting is total and deterministic: severity (errors first), then
    code, then location, then message.
    """

    code: str
    message: str
    severity: Severity
    location: SourceLocation = field(default_factory=SourceLocation)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise LintError(f"unknown diagnostic code {self.code!r}")

    @property
    def title(self) -> str:
        return CODES[self.code].title

    def sort_key(self) -> tuple:
        return (-self.severity.rank, self.code, str(self.location), self.message)

    def format(self) -> str:
        """``location: severity DY###: message``."""
        return f"{self.location}: {self.severity.value} {self.code}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location.to_dict(),
        }


def make(
    code: str,
    message: str,
    *,
    xml_path: str | None = None,
    file: str | None = None,
    line: int | None = None,
    severity: Severity | None = None,
) -> Diagnostic:
    """Build a diagnostic for a registered code (default severity unless
    overridden)."""
    info = CODES.get(code)
    if info is None:
        raise LintError(f"unknown diagnostic code {code!r}")
    return Diagnostic(
        code=code,
        message=message,
        severity=severity if severity is not None else info.default_severity,
        location=SourceLocation(xml_path=xml_path, file=file, line=line),
    )


def sort_diagnostics(diags: list[Diagnostic]) -> list[Diagnostic]:
    """The canonical deterministic ordering used by every renderer."""
    return sorted(diags, key=Diagnostic.sort_key)


def max_severity(diags: list[Diagnostic]) -> Severity | None:
    """The highest severity present, or None for a clean result."""
    if not diags:
        return None
    return max((d.severity for d in diags), key=lambda s: s.rank)
