"""The typed-diagnostic core shared by both analysis engines.

Every finding — from the spec verifier or the determinism self-lint —
is a :class:`Diagnostic` with a stable ``DY###`` code, a severity, a
source location (an XML path into the spec document or a ``file:line``
pair), and a message.  Diagnostics order deterministically so repeated
runs over the same input produce byte-identical reports in every output
format (text, JSON, SARIF).

Flow-sensitive findings additionally carry a **witness**: the ordered
event sequence of the abstract execution that triggers the defect (see
:mod:`repro.lint.dataflow`).  Fixable findings carry structured
``data`` key/value facts the auto-fix engine consumes
(:mod:`repro.lint.fixes`) and, once a fix is planned, a
:class:`FixHint` that renders as a SARIF ``fixes`` object.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import LintError


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``error > warning > info``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __ge__(self, other: "Severity") -> bool:
        return self.rank >= other.rank

    def __gt__(self, other: "Severity") -> bool:
        return self.rank > other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class SourceLocation:
    """Where a diagnostic anchors: an XML path or a ``file:line`` pair.

    Spec diagnostics use *xml_path* — a logical path into the document
    (e.g. ``decision/policies/policy[@id='INC']``); self-lint
    diagnostics use *file* and *line*.  Both may be absent for
    document-level findings.
    """

    xml_path: str | None = None
    file: str | None = None
    line: int | None = None

    def __str__(self) -> str:
        if self.file is not None:
            return f"{self.file}:{self.line}" if self.line is not None else self.file
        if self.xml_path is not None:
            return self.xml_path
        return "<spec>"

    def to_dict(self) -> dict:
        out: dict = {}
        if self.xml_path is not None:
            out["xml_path"] = self.xml_path
        if self.file is not None:
            out["file"] = self.file
        if self.line is not None:
            out["line"] = self.line
        return out


@dataclass(frozen=True)
class WitnessEvent:
    """One step of the abstract execution that demonstrates a finding.

    Dataflow diagnostics (DY205/DY304/DY413, see
    :mod:`repro.lint.dataflow`) attach an ordered tuple of these so the
    report shows *how* the defect is reached, not just that it exists.
    """

    step: int
    event: str
    detail: str = ""

    def to_dict(self) -> dict:
        out: dict = {"step": self.step, "event": self.event}
        if self.detail:
            out["detail"] = self.detail
        return out

    def format(self) -> str:
        tail = f" ({self.detail})" if self.detail else ""
        return f"[{self.step}] {self.event}{tail}"


@dataclass(frozen=True)
class FixHint:
    """A safe mechanical fix for one diagnostic.

    *description* says what the fix does; *replacement* is the full
    fixed document text (the SARIF renderer emits it as a
    whole-artifact replacement so code-scanning UIs can apply it);
    *span* is the character length of the original document, i.e. the
    deleted region the replacement substitutes.
    """

    description: str
    replacement: str | None = None
    span: int | None = None

    def to_dict(self) -> dict:
        out: dict = {"description": self.description}
        if self.replacement is not None:
            out["replacement"] = self.replacement
        if self.span is not None:
            out["span"] = self.span
        return out


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one stable diagnostic code."""

    code: str
    title: str
    default_severity: Severity
    engine: str  # "spec" or "self"


def _spec(code: str, title: str, sev: Severity = Severity.ERROR) -> CodeInfo:
    return CodeInfo(code, title, sev, "spec")


def _self(code: str, title: str, sev: Severity = Severity.ERROR) -> CodeInfo:
    return CodeInfo(code, title, sev, "self")


#: The complete, stable code catalog.  Codes are never renumbered; a
#: retired check keeps its number reserved.  See docs/static-analysis.md.
CODES: dict[str, CodeInfo] = {
    c.code: c
    for c in (
        # -- document level ------------------------------------------------
        _spec("DY100", "spec failed to parse"),
        # -- cross-references (DY1xx) --------------------------------------
        _spec("DY101", "monitor-task uses an unknown sensor"),
        _spec("DY102", "policy assesses an unknown sensor"),
        _spec("DY103", "apply-policy references an unknown policy"),
        _spec("DY104", "policy granularity not produced by its sensor"),
        _spec("DY105", "policy-priority names an unknown policy"),
        _spec("DY106", "rule references a task nothing monitors or acts on",
              Severity.WARNING),
        _spec("DY107", "sensor join references an unknown sensor"),
        _spec("DY108", "sensor is never used by any policy", Severity.WARNING),
        _spec("DY109", "policy is never applied to any workflow", Severity.WARNING),
        _spec("DY110", "monitor-task names a task the workflow does not define"),
        _spec("DY111", "apply-policy targets a task the workflow does not define"),
        _spec("DY112", "policy can never fire: no monitor binding feeds it"),
        # -- resources and placement (DY2xx) -------------------------------
        _spec("DY201", "initial placement oversubscribes the machine"),
        _spec("DY202", "gang placement can never be satisfied"),
        _spec("DY203", "resource adjustment can never fit the machine"),
        _spec("DY204", "arbitration rule dependencies form a cycle"),
        _spec("DY205", "placement feasible initially but an adjustment sequence "
              "oversubscribes the machine", Severity.WARNING),
        # -- rule interaction (DY3xx) --------------------------------------
        _spec("DY301", "policy is shadowed by a subsuming policy", Severity.WARNING),
        _spec("DY302", "policies can co-fire with contradictory actions"),
        _spec("DY303", "policy condition is unsatisfiable"),
        _spec("DY304", "policy is unreachable under the dominating threshold "
              "order", Severity.WARNING),
        # -- parameter ranges (DY4xx) --------------------------------------
        _spec("DY401", "retry backoff cap is below the backoff base", Severity.WARNING),
        _spec("DY402", "watchdog poll exceeds the heartbeat timeout", Severity.WARNING),
        _spec("DY403", "journal configuration out of range"),
        _spec("DY404", "SLO/anomaly configuration out of range"),
        _spec("DY405", "telemetry sample fraction out of range"),
        _spec("DY406", "quarantine cooldown shorter than its window", Severity.WARNING),
        _spec("DY407", "resilience configuration out of range"),
        _spec("DY408", "network drops messages but the retransmit budget is zero",
              Severity.WARNING),
        _spec("DY409", "partition window outlasts the watchdog heartbeat timeout",
              Severity.WARNING),
        _spec("DY410", "tenant quota exceeds the shared machine's capacity"),
        _spec("DY411", "executor injects worker kills but has no retry budget",
              Severity.WARNING),
        _spec("DY412", "observability SLO references an unknown tenant id"),
        _spec("DY413", "tenant quotas jointly unsatisfiable under fair-share "
              "admission", Severity.WARNING),
        # -- determinism self-lint (DY5xx) ----------------------------------
        _self("DY501", "wall-clock call in a deterministic core path"),
        _self("DY502", "global or unseeded RNG outside repro.sim.rng"),
        _self("DY503", "iteration over a set: order is not deterministic"),
        _self("DY504", "mutable module-level state in a stage module"),
        # -- concurrency self-lint (fork/thread safety) ---------------------
        _self("DY505", "mutable class-level state shared across threads"),
        _self("DY506", "module-level file handle inherited by forked workers"),
        _self("DY507", "RNG drawn in a fork-worker entry before the per-cell "
              "reseed"),
        _self("DY508", "wall-clock read inside a fork-worker entry"),
        _self("DY509", "blocking I/O inside the sim tick path"),
        _self("DY510", "suppression comment suppresses nothing", Severity.WARNING),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One immutable finding.

    Sorting is total and deterministic: severity (errors first), then
    code, then location, then message.  *witness* is the ordered
    abstract-execution trace for flow-sensitive findings; *data* holds
    structured facts the auto-fix engine consumes; *fix* is attached by
    the fix planner when a safe mechanical fix exists.
    """

    code: str
    message: str
    severity: Severity
    location: SourceLocation = field(default_factory=SourceLocation)
    witness: tuple[WitnessEvent, ...] = ()
    data: tuple[tuple[str, str], ...] = ()
    fix: FixHint | None = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise LintError(f"unknown diagnostic code {self.code!r}")

    @property
    def title(self) -> str:
        return CODES[self.code].title

    def datum(self, key: str) -> str | None:
        """The value of one structured fact, or None."""
        for k, v in self.data:
            if k == key:
                return v
        return None

    def with_fix(self, hint: FixHint) -> "Diagnostic":
        return replace(self, fix=hint)

    def sort_key(self) -> tuple:
        return (-self.severity.rank, self.code, str(self.location), self.message)

    def format(self) -> str:
        """``location: severity DY###: message``."""
        return f"{self.location}: {self.severity.value} {self.code}: {self.message}"

    def to_dict(self) -> dict:
        out = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location.to_dict(),
        }
        if self.witness:
            out["witness"] = [w.to_dict() for w in self.witness]
        if self.data:
            out["data"] = {k: v for k, v in self.data}
        if self.fix is not None:
            out["fix"] = self.fix.to_dict()
        return out


def make(
    code: str,
    message: str,
    *,
    xml_path: str | None = None,
    file: str | None = None,
    line: int | None = None,
    severity: Severity | None = None,
    witness: tuple[WitnessEvent, ...] = (),
    data: tuple[tuple[str, str], ...] = (),
) -> Diagnostic:
    """Build a diagnostic for a registered code (default severity unless
    overridden)."""
    info = CODES.get(code)
    if info is None:
        raise LintError(f"unknown diagnostic code {code!r}")
    return Diagnostic(
        code=code,
        message=message,
        severity=severity if severity is not None else info.default_severity,
        location=SourceLocation(xml_path=xml_path, file=file, line=line),
        witness=tuple(witness),
        data=tuple(data),
    )


def sort_diagnostics(diags: list[Diagnostic]) -> list[Diagnostic]:
    """The canonical deterministic ordering used by every renderer."""
    return sorted(diags, key=Diagnostic.sort_key)


def max_severity(diags: list[Diagnostic]) -> Severity | None:
    """The highest severity present, or None for a clean result."""
    if not diags:
        return None
    return max((d.severity for d in diags), key=lambda s: s.rank)
