"""Flow-sensitive spec analysis by abstract interpretation.

Where :mod:`repro.lint.speclint` checks each construct in isolation,
this pass symbolically *executes* the spec against the machine model:
it walks the resource timeline (initial placement, then every resource
adjustment the policies can grant) and the policy/threshold lattice
(which conditions imply which, and how arbitration orders the
winners).  That upgrades three point checks into flow-sensitive ones:

* **DY205** — the initial placement fits the machine, but some sequence
  of policy-granted ``ADDCPU`` adjustments drives total demand past
  capacity.  DY201 only sees tick zero; this sees the reachable future.
* **DY304** — a policy's firing interval is contained in a conflicting
  policy's interval and the arbitration rule ranks the wider policy
  strictly higher, so the narrow policy's action is deferred every
  single time: the policy is *reachable* as a condition but
  *unreachable* as an effect.  DY301 covers same-action shadowing;
  this covers conflicting-action domination through the priority order.
* **DY413** — every tenant quota individually fits the shared machine
  (so DY410 is silent), but the quotas are jointly unsatisfiable: no
  allocation lets all tenants hold their quota at once, so fair-share
  admission must starve someone below contract.

Every finding carries a **witness**: the ordered
:class:`~repro.lint.diagnostics.WitnessEvent` sequence of the abstract
execution that reaches the defect, rendered in reports and exported in
JSON/SARIF so the reader sees *how*, not just *that*.

The pass is pure static analysis — no RNG stream, no clock — so
enabling it (it runs inside :func:`repro.lint.speclint.verify_spec`,
and therefore inside runtime preflight) cannot perturb a scenario
fingerprint.
"""

from __future__ import annotations

import math

from repro.core.actions import ActionType, actions_conflict
from repro.lint.diagnostics import Diagnostic, WitnessEvent, make
from repro.lint.speclint import (
    _policy_path,
    _workflow_view,
    fire_interval,
)
from repro.xmlspec.model import DyflowSpec

#: Cap on emitted witness steps so a pathological spec cannot bloat
#: reports; the tail is elided with a summary event.
MAX_WITNESS_STEPS = 32


def analyze_dataflow(
    spec: DyflowSpec,
    machine=None,
    workflow=None,
) -> list[Diagnostic]:
    """Run the abstract-interpretation pass; returns diagnostics.

    *machine* (a :class:`~repro.cluster.machine.Machine`) enables the
    DY205 resource-timeline analysis; *workflow* supplies the task
    inventory it places.  DY304 and DY413 need only the document.
    The result is unsorted — callers merge it into their own
    deterministic ordering.
    """
    task_specs, _ = _workflow_view(workflow)
    out: list[Diagnostic] = []
    out += _check_adjustment_timeline(spec, machine, task_specs)
    out += _check_priority_domination(spec)
    out += _check_joint_quotas(spec)
    return out


# --------------------------------------------------------------------------- #
# DY205: the resource timeline after adjustments
# --------------------------------------------------------------------------- #
def _check_adjustment_timeline(
    spec: DyflowSpec, machine, task_specs: dict
) -> list[Diagnostic]:
    if machine is None or not task_specs:
        return []
    total = machine.total_cores
    running = {
        name: t.nprocs for name, t in task_specs.items() if t.autostart
    }
    initial = sum(running.values())
    if initial > total:
        return []  # already a DY201 error at tick zero

    # One abstract grant per (application, target): each ADDCPU the
    # Decision stage can suggest is granted once, in deterministic
    # order.  Repeated grants only make things worse, so a single
    # round is the minimal witness.
    grants: list[tuple[str, str, int]] = []
    for app in spec.applications:
        policy = spec.policies.get(app.policy_id)
        if policy is None or policy.action is not ActionType.ADDCPU:
            continue
        params = dict(policy.default_params)
        params.update(app.action_params)
        adjust = params.get("adjust-by", 1)
        if not isinstance(adjust, (int, float)) or adjust <= 0:
            continue  # DY203 territory
        if adjust > total:
            continue  # DY203 flags the single grant already
        for target in app.act_on_tasks:
            if target in running:
                grants.append((app.policy_id, target, int(adjust)))
    if not grants:
        return []
    grants.sort()

    demand = initial
    events = [WitnessEvent(
        0, "initial placement",
        f"{initial} of {total} cores on {machine.name!r}",
    )]
    crossed = False
    for pid, target, adjust in grants:
        demand += adjust
        step = len(events)
        if step < MAX_WITNESS_STEPS:
            events.append(WitnessEvent(
                step, "ADDCPU granted",
                f"policy {pid!r} on task {target!r}: +{adjust} -> {demand}",
            ))
        if demand > total:
            crossed = True
            break
    if not crossed:
        return []
    events.append(WitnessEvent(
        len(events), "oversubscribed", f"{demand} > {total} cores",
    ))
    return [make(
        "DY205",
        f"initial placement uses {initial} of {total} cores, but the "
        f"policies' ADDCPU adjustments can grow demand to {demand} — the "
        "adjustment sequence oversubscribes the machine and late grants "
        "will be rejected at arbitration time",
        xml_path="dyflow",
        witness=tuple(events),
        data=(
            ("initial_cores", str(initial)),
            ("capacity_cores", str(total)),
            ("peak_cores", str(demand)),
        ),
    )]


# --------------------------------------------------------------------------- #
# DY304: priority domination across the threshold lattice
# --------------------------------------------------------------------------- #
def _representative(interval) -> float:
    """A concrete metric value inside the interval, for the witness."""
    lo, hi = interval.lo, interval.hi
    if math.isinf(lo) and math.isinf(hi):
        return 0.0
    if math.isinf(hi):
        return lo + 1.0
    if math.isinf(lo):
        return hi - 1.0
    return (lo + hi) / 2.0


def _check_priority_domination(spec: DyflowSpec) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    apps = [
        (app, spec.policies[app.policy_id])
        for app in spec.applications
        if app.policy_id in spec.policies
    ]
    for i, (app_a, pol_a) in enumerate(apps):
        for app_b, pol_b in apps[i + 1:]:
            if app_a.workflow_id != app_b.workflow_id:
                continue
            if pol_a.policy_id == pol_b.policy_id:
                continue
            if pol_a.sensor_id != pol_b.sensor_id:
                continue
            if pol_a.granularity != pol_b.granularity:
                continue
            if app_a.assess_task != app_b.assess_task:
                continue
            if not (set(app_a.act_on_tasks) & set(app_b.act_on_tasks)):
                continue
            if not actions_conflict(pol_a.action, pol_b.action):
                continue
            # Instantaneous evaluation only: a history window decouples
            # the evaluated value from the raw stream, so containment of
            # the raw intervals proves nothing.
            if pol_a.history_window > 1 or pol_b.history_window > 1:
                continue
            ia = fire_interval(pol_a.eval_op, pol_a.threshold)
            ib = fire_interval(pol_b.eval_op, pol_b.threshold)
            if ia is None or ib is None:
                continue
            if ia.subsumes(ib):
                outer, inner, iv = (app_a, pol_a), (app_b, pol_b), ib
            elif ib.subsumes(ia):
                outer, inner, iv = (app_b, pol_b), (app_a, pol_a), ia
            else:
                continue
            diag = _domination_diag(spec, outer, inner, iv)
            if diag is not None:
                out.append(diag)
    return out


def _domination_diag(spec, outer, inner, inner_iv) -> Diagnostic | None:
    app_out, pol_out = outer
    app_in, pol_in = inner
    if inner_iv.is_empty():
        return None  # DY303 covers unsatisfiable conditions
    # The wider policy must evaluate at least as often, else the narrow
    # one can fire in a Decision batch the wider sits out.
    if pol_out.frequency > pol_in.frequency:
        return None
    rule = spec.rules.get(app_in.workflow_id)
    if rule is None:
        return None
    pri_out = rule.policy_priorities.get(pol_out.policy_id)
    pri_in = rule.policy_priorities.get(pol_in.policy_id)
    if pri_out is None or pri_in is None or pri_out >= pri_in:
        return None  # unranked or non-dominating: DY302's concern
    value = _representative(inner_iv)
    shared = sorted(set(app_out.act_on_tasks) & set(app_in.act_on_tasks))
    events = (
        WitnessEvent(
            0, "metric sample",
            f"sensor {pol_in.sensor_id!r} delivers value {value:g}",
        ),
        WitnessEvent(
            1, "both policies fire",
            f"{pol_in.policy_id!r} ({pol_in.eval_op.upper()} "
            f"{pol_in.threshold:g}) and {pol_out.policy_id!r} "
            f"({pol_out.eval_op.upper()} {pol_out.threshold:g}) — the "
            "wider interval contains the narrow one",
        ),
        WitnessEvent(
            2, "arbitration orders by priority",
            f"{pol_out.policy_id!r} (priority {pri_out}) ahead of "
            f"{pol_in.policy_id!r} (priority {pri_in})",
        ),
        WitnessEvent(
            3, "conflicting action deferred",
            f"{pol_out.action.value} wins on {shared}; "
            f"{pol_in.action.value} from {pol_in.policy_id!r} is dropped",
        ),
        WitnessEvent(
            4, "generalizes",
            f"every value firing {pol_in.policy_id!r} also fires "
            f"{pol_out.policy_id!r}, so the defeat repeats",
        ),
    )
    return make(
        "DY304",
        f"policy {pol_in.policy_id!r} ({pol_in.eval_op.upper()} "
        f"{pol_in.threshold:g}, {pol_in.action.value}) can never take "
        f"effect: whenever it fires, {pol_out.policy_id!r} "
        f"({pol_out.eval_op.upper()} {pol_out.threshold:g}, "
        f"{pol_out.action.value}) fires too, their actions conflict, and "
        f"the rule ranks {pol_out.policy_id!r} strictly higher",
        xml_path=_policy_path(pol_in.policy_id),
        witness=events,
        data=(
            ("policy_id", pol_in.policy_id),
            ("dominating_policy_id", pol_out.policy_id),
        ),
    )


# --------------------------------------------------------------------------- #
# DY413: joint tenant-quota satisfiability
# --------------------------------------------------------------------------- #
def _check_joint_quotas(spec: DyflowSpec) -> list[Diagnostic]:
    ten = spec.tenants
    if ten is None:
        return []
    capacity = ten.capacity_cores
    if capacity <= 0:
        return []
    capped = [
        t for t in ten.tenants
        if 0 < t.quota_cores <= capacity  # > capacity is DY410
    ]
    if len(capped) < 2:
        return []
    joint = sum(t.quota_cores for t in capped)
    if joint <= capacity:
        return []
    events = [WitnessEvent(
        0, "shared machine",
        f"capacity {capacity} cores ({ten.nodes} nodes x "
        f"{ten.cores_per_node})",
    )]
    demand = 0
    for t in capped:
        demand += t.quota_cores
        step = len(events)
        if step < MAX_WITNESS_STEPS:
            events.append(WitnessEvent(
                step, "tenant saturates quota",
                f"{t.tenant_id!r}: +{t.quota_cores} -> {demand}",
            ))
        if demand > capacity:
            break
    events.append(WitnessEvent(
        len(events), "joint demand exceeds capacity",
        f"{joint} quota cores > {capacity}; fair-share admission must "
        "hold at least one tenant below its contracted quota",
    ))
    return [make(
        "DY413",
        f"tenant quotas sum to {joint} cores but the shared machine has "
        f"{capacity}; each quota fits alone, yet they are jointly "
        "unsatisfiable — under fair-share admission some tenant can "
        "never reach its contracted quota while the others hold theirs",
        xml_path="tenants",
        witness=tuple(events),
        data=(
            ("joint_quota_cores", str(joint)),
            ("capacity_cores", str(capacity)),
        ),
    )]
