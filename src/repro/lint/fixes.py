"""Safe auto-fixes for the mechanical subset of spec diagnostics.

``python -m repro.lint --fix`` (and the :func:`fix_xml_text` API)
rewrites a spec document through :func:`repro.xmlspec.write_dyflow_xml`
to repair defects whose fix is provably behavior-preserving:

* **dead-construct elimination** — DY108 unused sensors, DY109
  never-applied policies, DY112 applications no monitor binding can
  ever feed: none of them can influence a run, so removal is safe;
* **threshold-interval subsumption** — DY301: a policy whose every
  firing is matched by a wider policy suggesting the *same* action with
  the *same* parameters on a superset of its targets is removed (the
  fixer re-proves full coverage before touching anything — a partial
  overlap is reported but left alone);
* **parameter-range clamping** — DY401 raises ``backoff-max`` to
  ``backoff-base`` (the runtime clamps every delay there anyway) and
  DY405 clamps a telemetry ``sample`` above 1.0 back to 1.0.

Fixes cascade deterministically — deleting a dead application (DY112)
strands its policy (DY109), which strands its sensor (DY108) — so the
engine loops fix rounds to a **fixed point**: the returned document
re-parses and re-lints free of every fixed code in one CLI invocation.
A document with nothing to fix is returned as the *same string object*,
so clean specs are byte-identical and their fingerprints untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.lint.diagnostics import Diagnostic, FixHint, make, sort_diagnostics
from repro.lint.speclint import verify_spec
from repro.xmlspec.model import DyflowSpec

#: Codes the engine knows how to repair.  Everything else is reported
#: untouched — a fix we cannot prove safe is not a fix.
FIXABLE_CODES = frozenset(
    {"DY108", "DY109", "DY112", "DY301", "DY401", "DY405"}
)

#: Cascade depth bound.  Each round fixes at least one construct, and a
#: document has finitely many, so this is a defensive backstop only.
MAX_ROUNDS = 32


@dataclass(frozen=True)
class FixResult:
    """Outcome of one auto-fix pass over one document.

    *text* is the fixed document — the **same object** as the input
    when nothing was fixed.  *fixed* holds the repaired diagnostics,
    each carrying a :class:`FixHint` (description + full replacement
    text) for SARIF ``fixes`` rendering.  *remaining* is the re-lint of
    the emitted text: what the fixer could not or would not touch.
    """

    text: str
    fixed: tuple[Diagnostic, ...]
    remaining: tuple[Diagnostic, ...]
    rounds: int

    @property
    def changed(self) -> bool:
        return bool(self.fixed)


def fix_spec(
    spec: DyflowSpec, machine=None, workflow=None
) -> tuple[list[Diagnostic], list[Diagnostic], int]:
    """Fix *spec* in place to a fixed point.

    Returns ``(fixed, remaining, rounds)`` where *fixed* are the
    repaired diagnostics (hint attached) and *remaining* is the final
    clean-round lint result.
    """
    fixed: list[Diagnostic] = []
    for rounds in range(1, MAX_ROUNDS + 1):
        diags = verify_spec(spec, machine=machine, workflow=workflow)
        round_fixed = _apply_round(spec, diags)
        if not round_fixed:
            return fixed, diags, rounds - 1
        fixed += round_fixed
    raise AssertionError(
        f"auto-fix did not converge in {MAX_ROUNDS} rounds"
    )  # pragma: no cover - each round strictly shrinks the document


def fix_xml_text(
    text: str,
    machine=None,
    workflow=None,
    filename: str | None = None,
) -> FixResult:
    """Parse, fix, and re-emit one XML document.

    A document that fails to parse is returned untouched with the
    single DY100 as *remaining*.  A document with nothing fixable is
    returned as the same string object (byte-identical guarantee).
    """
    from repro.errors import XmlSpecError
    from repro.lint.speclint import lint_xml_text
    from repro.xmlspec.parser import parse_dyflow_xml
    from repro.xmlspec.writer import write_dyflow_xml

    try:
        spec = parse_dyflow_xml(text, validate=False)
    except (XmlSpecError, ValueError) as err:
        diag = make(
            "DY100", str(err),
            file=filename, xml_path=None if filename else "dyflow",
        )
        return FixResult(text=text, fixed=(), remaining=(diag,), rounds=0)

    fixed, _, rounds = fix_spec(spec, machine=machine, workflow=workflow)
    if not fixed:
        remaining = lint_xml_text(
            text, machine=machine, workflow=workflow, filename=filename
        )
        return FixResult(
            text=text, fixed=(), remaining=tuple(remaining), rounds=rounds
        )

    new_text = write_dyflow_xml(spec)
    # The fixed-point guarantee, enforced rather than assumed: the
    # emitted document must re-parse and re-lint free of every code we
    # claim to have fixed.
    remaining = lint_xml_text(
        new_text, machine=machine, workflow=workflow, filename=filename
    )
    fixed_codes = {d.code for d in fixed}
    leftovers = [d for d in remaining if d.code in fixed_codes]
    assert not leftovers, (
        f"auto-fix left {sorted({d.code for d in leftovers})} findings "
        "in its own output"
    )
    span = len(text)
    fixed = [
        replace(
            d,
            fix=FixHint(
                description=d.fix.description,
                replacement=new_text,
                span=span,
            ),
            location=d.location if filename is None else type(d.location)(
                xml_path=d.location.xml_path, file=filename,
                line=d.location.line,
            ),
        )
        for d in fixed
    ]
    return FixResult(
        text=new_text,
        fixed=tuple(sort_diagnostics(fixed)),
        remaining=tuple(remaining),
        rounds=rounds,
    )


# --------------------------------------------------------------------------- #
# one fix round
# --------------------------------------------------------------------------- #
def _apply_round(spec: DyflowSpec, diags: list[Diagnostic]) -> list[Diagnostic]:
    """Apply every provably-safe fix visible in *diags*; returns the
    diagnostics that were fixed, hint attached."""
    fixed: list[Diagnostic] = []
    drop_apps: list[int] = []
    drop_policies: list[str] = []
    drop_sensors: list[str] = []

    for d in sort_diagnostics([d for d in diags if d.code in FIXABLE_CODES]):
        if d.code == "DY112":
            idx = d.datum("app_index")
            if idx is not None and int(idx) < len(spec.applications):
                drop_apps.append(int(idx))
                fixed.append(d.with_fix(FixHint(
                    f"remove apply-policy of {d.datum('policy_id')!r}: no "
                    "monitor binding can ever feed it",
                )))
        elif d.code == "DY301":
            pid = d.datum("policy_id")
            outer = d.datum("subsumed_by")
            if (
                pid in spec.policies
                and pid not in drop_policies
                and _dy301_removable(spec, pid, outer)
            ):
                drop_policies.append(pid)
                fixed.append(d.with_fix(FixHint(
                    f"remove policy {pid!r}: every firing is matched by "
                    f"the wider {outer!r} with identical effect",
                )))
        elif d.code == "DY109":
            pid = d.datum("policy_id")
            if pid in spec.policies and pid not in drop_policies:
                drop_policies.append(pid)
                fixed.append(d.with_fix(FixHint(
                    f"remove policy {pid!r}: it is applied to no workflow",
                )))
        elif d.code == "DY108":
            sid = d.datum("sensor_id")
            if sid in spec.sensors and sid not in drop_sensors:
                drop_sensors.append(sid)
                fixed.append(d.with_fix(FixHint(
                    f"remove sensor {sid!r}: nothing binds or assesses it",
                )))
        elif d.code == "DY401":
            hint = _fix_backoff_cap(spec)
            if hint is not None:
                fixed.append(d.with_fix(hint))
        elif d.code == "DY405":
            hint = _fix_telemetry_sample(spec)
            if hint is not None:
                fixed.append(d.with_fix(hint))

    for idx in sorted(set(drop_apps), reverse=True):
        del spec.applications[idx]
    for pid in drop_policies:
        _remove_policy(spec, pid)
    for sid in drop_sensors:
        del spec.sensors[sid]
    return fixed


def _remove_policy(spec: DyflowSpec, pid: str) -> None:
    spec.policies.pop(pid, None)
    spec.applications[:] = [
        a for a in spec.applications if a.policy_id != pid
    ]
    # A dangling priority entry would turn the fix into a DY105 error.
    for rule in spec.rules.values():
        rule.policy_priorities.pop(pid, None)


def _dy301_removable(spec: DyflowSpec, inner_pid: str, outer_pid: str | None) -> bool:
    """Is removing *inner_pid* provably behavior-preserving?

    DY301 fires per application *pair* on a non-empty target
    intersection; removal is only safe when **every** application of
    the inner policy is fully covered: same workflow and assess task, a
    superset of its act-on targets, and identical merged action
    parameters.  Anything less would drop real effects.
    """
    inner = spec.policies.get(inner_pid)
    outer = spec.policies.get(outer_pid) if outer_pid else None
    if inner is None or outer is None:
        return False
    inner_apps = [a for a in spec.applications if a.policy_id == inner_pid]
    outer_apps = [a for a in spec.applications if a.policy_id == outer_pid]
    if not inner_apps:
        return False
    for ia in inner_apps:
        merged_in = dict(inner.default_params)
        merged_in.update(ia.action_params)
        covered = any(
            oa.workflow_id == ia.workflow_id
            and oa.assess_task == ia.assess_task
            and set(ia.act_on_tasks) <= set(oa.act_on_tasks)
            and _merged(outer, oa) == merged_in
            for oa in outer_apps
        )
        if not covered:
            return False
    return True


def _merged(policy, app) -> dict:
    out = dict(policy.default_params)
    out.update(app.action_params)
    return out


def _fix_backoff_cap(spec: DyflowSpec) -> FixHint | None:
    res = spec.resilience
    retry = res.retry if res is not None else None
    if retry is None or retry.backoff_max >= retry.backoff_base:
        return None
    spec.resilience = replace(
        res, retry=replace(retry, backoff_max=retry.backoff_base)
    )
    return FixHint(
        f"raise retry backoff-max to backoff-base {retry.backoff_base!r} "
        "(the runtime clamps every delay there anyway)",
    )


def _fix_telemetry_sample(spec: DyflowSpec) -> FixHint | None:
    tel = spec.telemetry
    if tel is None or not tel.sample > 1.0:
        return None  # sample <= 0 has no faithful mechanical clamp
    spec.telemetry = replace(tel, sample=1.0)
    return FixHint(
        f"clamp telemetry sample {tel.sample!r} to 1.0 (keep every span)",
    )
