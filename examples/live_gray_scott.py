#!/usr/bin/env python
"""Live orchestration: real numerical kernels under the threaded driver.

Runs an actual NumPy Gray-Scott solver with a real isosurface analysis on
*wall-clock* time, with the DYFLOW stages (Monitor → Decision →
Arbitration/Actuation) running as threads connected by queues, exactly
as in the paper's Fig. 2 implementation.

Two live behaviours are demonstrated:

* **Monitoring** — the analysis' real loop times stream through a
  TAU-style PACE sensor into the Decision stage.
* **Failure recovery (§4.5 live)** — the analysis crashes mid-run (an
  injected software failure); Savanna-style status records carry the
  exit code to the STATUS sensor, and RESTART_ON_FAILURE brings the
  analysis back while the solver keeps running.

Run:  python examples/live_gray_scott.py   (takes ~15 wall seconds)
"""

import time

import numpy as np

from repro.api import (
    ActionType,
    GrayScottSolver,
    GroupBySpec,
    isosurface_cell_count,
    LiveTaskSpec,
    PolicyApplication,
    PolicySpec,
    SensorSpec,
    ThreadedDyflow,
)

GRID = (256, 256)
TOTAL_STEPS = 40
CRASH_AT_STEP = 12


def main() -> None:
    solver = GrayScottSolver.preset("stripes", shape=GRID, seed=3)
    latest = {"field": solver.snapshot()["v"]}
    crashed = {"done": False}
    cells = []

    # Each step pairs real compute with a wall-clock pace of ~0.2 s so the
    # run unfolds on a human timescale (a real solver step would).
    def sim_work(step: int, _nworkers: int) -> None:
        solver.step(20)
        latest["field"] = solver.snapshot()["v"]
        time.sleep(0.15)

    def analysis_work(step: int, _nworkers: int) -> None:
        if step == CRASH_AT_STEP and not crashed["done"]:
            crashed["done"] = True
            raise RuntimeError("injected software failure (buffer overrun)")
        field = latest["field"]
        count = sum(isosurface_cell_count(field, iso) for iso in (0.1, 0.2, 0.3))
        cells.append(count)
        time.sleep(0.15)

    runner = ThreadedDyflow(
        "LIVE-GS",
        [
            LiveTaskSpec("Solver", sim_work, total_steps=TOTAL_STEPS),
            LiveTaskSpec("Isosurface", analysis_work, total_steps=TOTAL_STEPS),
        ],
        poll_interval=0.1,
        warmup=0.5,
        settle=0.5,
    )
    runner.add_sensor(SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
    runner.monitor_task("Isosurface", "PACE")
    runner.add_sensor(SensorSpec("STATUS", "ERRORSTATUS", (GroupBySpec("task", "FIRST"),)))
    runner.monitor_task("Isosurface", "STATUS", var=None)
    runner.add_policy(
        PolicySpec("RESTART_ON_FAILURE", "STATUS", "GT", 0.0, ActionType.RESTART,
                   frequency=0.5)
    )
    runner.apply_policy(
        PolicyApplication("RESTART_ON_FAILURE", "LIVE-GS", ("Isosurface",),
                          assess_task="Isosurface")
    )

    print(f"live run: Gray-Scott {GRID} solver + isosurface analysis "
          f"(injected crash at analysis step {CRASH_AT_STEP})")
    runner.start()
    finished = runner.wait_until_done(timeout=120.0)
    runner.stop()

    print(f"\nall tasks finished: {finished}; solver advanced {solver.step_count} PDE steps")
    print(f"isosurface analysis ran {runner._incarnations.get('Isosurface', 0)} incarnations "
          f"(1 crash + 1 DYFLOW restart expected)")
    print("\nactions DYFLOW applied:")
    for t, action in runner.applied_actions:
        print(f"  t={t:6.1f}s  {action}")
    status = runner.hub.filesystem.read("status/LIVE-GS/Isosurface")
    print("\nexit-status records the STATUS sensor observed:")
    for record in status:
        print(f"  t={record['time']:6.1f}s  incarnation {record['incarnation']} "
              f"exit code {record['code']}")
    pace = [v for u in runner.server.history if u.task == "Isosurface" and u.var == "looptime"
            for v in [u.value]]
    if pace:
        print(f"\nanalysis pace: mean {np.mean(pace)*1e3:.1f} ms/step over {len(pace)} "
              f"observed steps; active isosurface cells grew to {max(cells):,}")


if __name__ == "__main__":
    main()
