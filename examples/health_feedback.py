#!/usr/bin/env python
"""Health feedback: a policy that reacts to the orchestrator's own SLOs.

The observability engine evaluates SLOs over the control loop's metrics
and publishes the results back into the Monitor stage as ordinary sensor
streams (source type ``HEALTH``, pseudo-task ``__dyflow__``).  Policies
can therefore react to *orchestrator* health exactly as they react to
application metrics.

Here a pace policy grows the under-provisioned analysis through
stop-and-relaunch plans; each plan's end-to-end response takes tens of
seconds, so the ``plan.response p95 < 10 s`` SLO fires, and a second
policy — bound to the HEALTH stream — responds by delivering an in-place
RECONFIG that throttles the simulation's step scale (trading resolution
for pace instead of yet another costly restart).

Run:  python examples/health_feedback.py
"""

from repro.api import (
    HEALTH_TASK,
    ActionType,
    Allocation,
    AmdahlModel,
    ConstantModel,
    CouplingType,
    DependencySpec,
    DyflowOrchestrator,
    GroupBySpec,
    IterativeApp,
    ObservabilitySpec,
    PolicyApplication,
    PolicySpec,
    RngRegistry,
    RuntimeOptions,
    Savanna,
    SensorSpec,
    SimEngine,
    SloSpec,
    TaskSpec,
    TelemetrySpec,
    WorkflowSpec,
    summit,
)


def build(seed: int = 1):
    engine = SimEngine()
    machine = summit(num_nodes=4)
    allocation = Allocation("alloc-0", machine, machine.nodes, walltime_limit=7200.0)
    workflow = WorkflowSpec(
        "HEALTH-DEMO",
        [
            TaskSpec("Sim", lambda: IterativeApp(ConstantModel(8.0), total_steps=60), nprocs=40),
            TaskSpec("Analysis", lambda: IterativeApp(AmdahlModel(serial=4, parallel=240)), nprocs=12),
        ],
        [DependencySpec("Analysis", "Sim", CouplingType.TIGHT)],
    )
    launcher = Savanna(engine, workflow, allocation, rng=RngRegistry(seed=seed))

    # The orchestrator watches itself: once a stop-and-relaunch plan has
    # executed, its end-to-end response (~40 s of graceful teardown and
    # relaunch) violates this objective and the alert stream flips to 1.0.
    observability = ObservabilitySpec(
        eval_every=5.0,
        slos=(
            SloSpec(
                metric="plan.response", stat="p95",
                op="LT", threshold=10.0, severity="warning",
            ),
        ),
    )
    orch = DyflowOrchestrator(
        launcher, warmup=40.0, settle=40.0, record_history=True,
        options=RuntimeOptions(telemetry=TelemetrySpec(enabled=True),
                               observability=observability),
    )

    # Application monitoring: the usual pace sensor on the analysis.
    orch.add_sensor(SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
    orch.monitor_task("Analysis", "PACE", var="looptime")
    orch.add_policy(
        PolicySpec(
            "INC_ON_PACE", "PACE", eval_op="GT", threshold=12.0,
            action=ActionType.ADDCPU, history_window=4, history_op="AVG", frequency=5.0,
        )
    )
    orch.apply_policy(
        PolicyApplication("INC_ON_PACE", "HEALTH-DEMO", ("Analysis",),
                          assess_task="Analysis", action_params={"adjust-by": 12})
    )

    # Self-monitoring: subscribe to the SLO's alert stream and throttle
    # the simulation in place while the objective is violated.
    orch.add_sensor(SensorSpec("ORCH_HEALTH", "HEALTH", (GroupBySpec("task", "MAX"),)))
    orch.monitor_task(HEALTH_TASK, "ORCH_HEALTH", var="alert.plan.response.p95")
    orch.add_policy(
        PolicySpec(
            "THROTTLE_ON_SLO", "ORCH_HEALTH", eval_op="GT", threshold=0.5,
            action=ActionType.RECONFIG, history_window=1, frequency=10.0,
        )
    )
    orch.apply_policy(
        PolicyApplication("THROTTLE_ON_SLO", "HEALTH-DEMO", ("Sim",),
                          assess_task=HEALTH_TASK, action_params={"step-scale": 0.8})
    )
    return engine, launcher, orch


def main() -> None:
    engine, launcher, orch = build()
    launcher.launch_workflow()
    orch.start(stop_when=launcher.all_idle)
    engine.run(until=10_000)
    orch.finalize_telemetry()

    print(f"workflow finished at t={engine.now:.0f}s (simulated)")
    for alert in orch.health.alerts:
        print(f"  alert @ t={alert.time:6.1f}s  {alert.kind:8s}  {alert.source}: {alert.message}")
    for plan in orch.plans:
        ops = "; ".join(op.describe() for op in plan.ordered_ops())
        print(f"  plan @ t={plan.created:6.1f}s  {ops}")
    reconfigs = [p for p in orch.plans if any(op.op == "reconfig_task" for op in p.ops)]
    print(f"in-place reconfigurations delivered: {len(reconfigs)}")


if __name__ == "__main__":
    main()
