#!/usr/bin/env python
"""The paper's §4.4 experiment: correcting resource under-provisioning.

Reproduces Figures 8 and 9 — the Gray-Scott in-situ workflow starts with
an under-provisioned Isosurface analysis that gates every task near 40 s
per timestep; two PACE policies restore the pace into the desired
[24, 36] s interval by growing Isosurface twice, victimizing PDF_Calc
and FFT.

Run:  python examples/insitu_rebalancing.py [summit|deepthought2]
"""

import sys

from repro.api import ANALYSIS_TASKS, render_gantt, run_gray_scott_experiment


def main(machine: str = "summit") -> None:
    print(f"running the Gray-Scott experiment on {machine} (simulated)...")
    result = run_gray_scott_experiment(machine, use_dyflow=True)
    static = run_gray_scott_experiment(machine, use_dyflow=False, enforce_walltime=True)

    print()
    print(render_gantt(result.trace, end_time=result.makespan))
    print()
    print("adjustments:")
    for plan in result.plans:
        if not any("INC_ON_PACE" in a for a in plan.accepted):
            continue
        iso = [o for o in plan.ops if o.task == "Isosurface" and o.op == "start_task"]
        size = iso[0].resources.total_cores if iso else "-"
        print(f"  t={plan.created:7.1f}s  Isosurface -> {size} procs  "
              f"victims={plan.victims}  response={plan.response_time:.1f}s "
              f"({plan.stop_share():.0%} graceful termination)")
    print()
    print("average time per timestep, as Decision received it (Fig. 9):")
    for task in ("GrayScott",) + ANALYSIS_TASKS:
        series = result.pace_series(task)
        if series:
            print(f"  {task:<11}", " ".join(f"{v:4.0f}" for _t, v in series))
    print()
    limit = result.meta["time_limit"]
    print(f"with DYFLOW: finished in {result.makespan:.0f}s (limit {limit:.0f}s)")
    rows = {r['task']: r for r in static.summary_rows()}
    print(f"without:     hit the walltime at {static.meta['timeout_at']:.0f}s with "
          f"GrayScott at step {rows['GrayScott']['last_step']}/50 (killed)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "summit")
