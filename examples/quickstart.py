#!/usr/bin/env python
"""Quickstart: orchestrate a two-task in-situ workflow with one policy.

Builds a simulation + analysis pipeline on a simulated Summit allocation,
monitors the analysis' pace with a TAU-style sensor, and lets DYFLOW grow
the analysis when its sliding-average loop time exceeds a threshold.

Run:  python examples/quickstart.py
"""

from repro.api import (
    ActionType,
    Allocation,
    AmdahlModel,
    ConstantModel,
    CouplingType,
    DependencySpec,
    DyflowOrchestrator,
    GroupBySpec,
    IterativeApp,
    PolicyApplication,
    PolicySpec,
    RngRegistry,
    Savanna,
    SensorSpec,
    SimEngine,
    summit,
    TaskSpec,
    WorkflowSpec,
)


def main() -> None:
    # 1. A machine and an allocation (the batch-scheduler path is in
    #    repro.cluster.BatchScheduler; here we allocate directly).
    engine = SimEngine()
    machine = summit(num_nodes=4)
    allocation = Allocation("alloc-0", machine, machine.nodes, walltime_limit=7200.0)

    # 2. The workflow: a simulation streaming to one analysis, tightly
    #    coupled in situ.  The analysis starts under-provisioned: at
    #    12 processes one step takes 4 + 240/12 = 24 s, while the
    #    simulation produces a step every 8 s.
    workflow = WorkflowSpec(
        "QUICKSTART",
        [
            TaskSpec("Sim", lambda: IterativeApp(ConstantModel(8.0), total_steps=40), nprocs=40),
            TaskSpec("Analysis", lambda: IterativeApp(AmdahlModel(serial=4, parallel=240)), nprocs=12),
        ],
        [DependencySpec("Analysis", "Sim", CouplingType.TIGHT)],
    )
    launcher = Savanna(engine, workflow, allocation, rng=RngRegistry(seed=1))

    # 3. DYFLOW: one sensor, one policy.
    orch = DyflowOrchestrator(launcher, warmup=40.0, settle=40.0, record_history=True)
    orch.add_sensor(SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
    orch.monitor_task("Analysis", "PACE", var="looptime")
    orch.add_policy(
        PolicySpec(
            "INC_ON_PACE", "PACE", eval_op="GT", threshold=12.0,
            action=ActionType.ADDCPU, history_window=4, history_op="AVG", frequency=5.0,
        )
    )
    orch.apply_policy(
        PolicyApplication("INC_ON_PACE", "QUICKSTART", ("Analysis",),
                          assess_task="Analysis", action_params={"adjust-by": 12})
    )

    # 4. Run to completion.
    launcher.launch_workflow()
    orch.start(stop_when=launcher.all_idle)
    engine.run(until=10_000)

    # 5. What happened?
    print(f"workflow finished at t={engine.now:.0f}s (simulated)")
    for plan in orch.plans:
        ops = "; ".join(op.describe() for op in plan.ordered_ops())
        print(f"  plan @ t={plan.created:6.1f}s  response={plan.response_time:5.2f}s  {ops}")
    final = launcher.record("Analysis").current
    print(f"Analysis ended with {final.nprocs} processes "
          f"(started with 12), state={final.state.value}")
    pace = [(round(u.time), round(u.value, 1)) for u in orch.server.history]
    print(f"observed pace series: {pace}")


if __name__ == "__main__":
    main()
