#!/usr/bin/env python
"""Kill the orchestrator mid-campaign, resume it from the journal.

The Gray-Scott experiment runs with a write-ahead journal enabled; at
t=300 s and t=700 s the controller process "dies" (everything it holds
in memory is gone — the launcher, the running tasks and the tracer
survive, as they would on a real machine).  Each time, a replacement
orchestrator is bootstrapped from the same XML spec and resumed from the
journal.  A reference run that ignores the crash requests produces a
bit-identical :func:`~repro.api.scenario_fingerprint`: recovery is
*exactly-once* and *deterministic*, not merely "eventually consistent".

Run:  python examples/crash_resume.py [journal-dir] [events-jsonl]

With an *events-jsonl* path the crashed run records telemetry and
appends its JSONL event log there, ready for the report CLI::

    python -m repro.observability.report events.jsonl --require-critical-path
"""

import shutil
import sys
import tempfile

from repro.api import (
    JournalSpec,
    TelemetrySpec,
    read_journal,
    run_gray_scott_experiment,
    scenario_fingerprint,
)

CRASH_TIMES = (300.0, 700.0)


def main(journal_dir: str | None = None, events_path: str | None = None) -> None:
    own_dir = journal_dir is None
    if own_dir:
        journal_dir = tempfile.mkdtemp(prefix="dyflow-journal-")
    spec = JournalSpec(dir=journal_dir, fsync="batch", batch_every=64, snapshot_every=20)

    print("reference run (no crashes)...")
    ref = run_gray_scott_experiment(
        crash_times=CRASH_TIMES, ignore_crash_requests=True
    )
    print(f"  makespan {ref.makespan:.2f}s, fingerprint {scenario_fingerprint(ref)[:16]}...")

    print(f"crash run (controller dies at {CRASH_TIMES[0]:.0f}s and "
          f"{CRASH_TIMES[1]:.0f}s, journal in {journal_dir})...")
    telemetry = (
        TelemetrySpec(enabled=True, jsonl_path=events_path)
        if events_path is not None else None
    )
    res = run_gray_scott_experiment(
        journal=spec, crash_times=CRASH_TIMES, telemetry=telemetry
    )
    print(f"  makespan {res.makespan:.2f}s, fingerprint {scenario_fingerprint(res)[:16]}...")
    print(f"  controller crashes survived: {len(res.meta['crashes'])} "
          f"at {[round(t, 1) for t in res.meta['crashes']]}")

    state = read_journal(spec.dir)
    kinds = {}
    for rec in state.records:
        kinds[rec["kind"]] = kinds.get(rec["kind"], 0) + 1
    print(f"  journal: epoch {state.epoch}, "
          f"{sum(kinds.values())} live records after the last snapshot")

    identical = scenario_fingerprint(res) == scenario_fingerprint(ref)
    print()
    if identical and res.makespan == ref.makespan:
        print("RESUME OK: crashed run is bit-identical to the reference")
    else:
        print("RESUME MISMATCH: crashed run diverged from the reference")
        raise SystemExit(1)
    if events_path is not None:
        print(f"event log written to {events_path}")
    if own_dir:
        shutil.rmtree(journal_dir, ignore_errors=True)


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else None,
        sys.argv[2] if len(sys.argv) > 2 else None,
    )
