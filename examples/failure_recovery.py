#!/usr/bin/env python
"""The paper's §4.5 experiment: resilience to node failure.

Reproduces Figure 11 — ten minutes into a LAMMPS-style molecular-dynamics
run a compute node dies, killing the co-located workflow (simulation +
three analyses).  The STATUS sensor observes the exit codes Savanna
saved; RESTART_ON_FAILURE restarts everything excluding the failed node,
and the simulation resumes from its last checkpoint (step 412).

Run:  python examples/failure_recovery.py [summit|deepthought2]
"""

import sys

from repro.api import render_gantt, run_lammps_experiment


def main(machine: str = "summit") -> None:
    print(f"running the LAMMPS failure experiment on {machine} (simulated)...")
    result = run_lammps_experiment(machine, use_dyflow=True)
    no_dyflow = run_lammps_experiment(machine, use_dyflow=False)

    print()
    print(render_gantt(result.trace, end_time=result.makespan))
    print()
    print(f"node {result.meta['failed_node']} failed at "
          f"t={result.meta['failure_time']:.0f}s; every task died (exit 137)")
    plan = [p for p in result.plans if p.ops][0]
    print(f"DYFLOW restart plan at t={plan.created:.1f}s, response {plan.response_time:.2f}s:")
    for op in plan.ordered_ops():
        print(f"  {op.describe()}")
    print(f"simulation resumed from checkpoint step {result.meta['restart_step']} "
          f"(paper: 412) and completed all 1000 steps: {result.meta['sim_completed']}")
    print()
    rows = {r["task"]: r for r in no_dyflow.summary_rows()}
    print("without DYFLOW the workflow never recovers:")
    for task, row in rows.items():
        print(f"  {task:<9} state={row['state']:<9} exit={row['exit_code']} "
              f"last step {row['last_step']}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "summit")
