#!/usr/bin/env python
"""The paper's §4.3 fusion experiment: XGC1 ↔ XGCa alternation.

Reproduces Figure 6 — two codes alternating every 100 global timesteps
toward a 500-step target, a science-driven SWITCH at step 374, and a
STOP past step 500 — entirely from the Figure-7-style XML specification.

Run:  python examples/fusion_alternation.py [summit|deepthought2]
"""

import sys

from repro.api import XGC_XML, render_gantt, run_xgc_experiment


def main(machine: str = "summit") -> None:
    print(f"running the XGC1-XGCa experiment on {machine} (simulated)...")
    result = run_xgc_experiment(machine, use_dyflow=True)
    baseline = run_xgc_experiment(machine, use_dyflow=False)

    print()
    print(render_gantt(result.trace, end_time=result.makespan))
    print()
    print("dynamic events:")
    for plan in result.plans:
        ops = "; ".join(op.describe() for op in plan.ordered_ops())
        print(f"  t={plan.created:7.1f}s  response={plan.response_time:5.2f}s  {ops}")
    print()
    print(f"global steps simulated: {result.meta['final_progress']} (target 500)")
    print(f"XGC1 runs: {[(round(a), round(b)) for a, b in result.task_runs('XGC1')]}")
    print(f"XGCA runs: {[(round(a), round(b)) for a, b in result.task_runs('XGCA')]}")
    ratio = baseline.makespan / result.makespan
    print(f"with DYFLOW: {result.makespan:.0f}s; XGC1-only: {baseline.makespan:.0f}s "
          f"-> the static run is {100 * (ratio - 1):.0f}% slower (paper: ~25%)")
    print()
    print("the XML that drove all of this is repro.experiments.XGC_XML "
          f"({len(XGC_XML.splitlines())} lines, mirrors the paper's Fig. 7)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "summit")
