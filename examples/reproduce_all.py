#!/usr/bin/env python
"""Run every experiment from the paper's §4 and print paper-vs-measured.

The one-command reproduction: all three workflows on both machine
models, plus the §4.6 cost analysis — about twenty comparisons against
the claims in the paper, each marked ✓/✗.

Run:  python examples/reproduce_all.py        (~15 wall seconds)
"""

from repro.api import build_report, format_report


def main() -> None:
    print("running all experiments on summit and deepthought2 models...\n")
    report = build_report()
    print(format_report(report))


if __name__ == "__main__":
    main()
