#!/usr/bin/env python
"""Cheetah-style campaign: sweep initial provisioning, watch DYFLOW converge.

Cheetah was built for co-design studies that sweep resource-allocation
trade-offs (paper §3).  This example composes a campaign over the
Isosurface analysis' *initial* process count and runs the same
PACE-policy orchestration on every point: however badly the user
provisions the analysis at submission time, DYFLOW converges it to a
size whose pace sits inside the desired band.

Run:  python examples/campaign_sweep.py
"""

from repro.api import (
    ActionType,
    Allocation,
    AmdahlModel,
    Campaign,
    ConstantModel,
    CouplingType,
    DependencySpec,
    DyflowOrchestrator,
    GroupBySpec,
    IterativeApp,
    PolicyApplication,
    PolicySpec,
    RngRegistry,
    Savanna,
    SensorSpec,
    SimEngine,
    summit,
    Sweep,
    TaskSpec,
    WorkflowSpec,
)

INC_THRESHOLD, DEC_THRESHOLD = 16.0, 10.5


def build_workflow(iso_procs: int) -> WorkflowSpec:
    return WorkflowSpec(
        f"SWEEP-{iso_procs}",
        [
            TaskSpec("Sim", lambda: IterativeApp(ConstantModel(10.0), total_steps=60), nprocs=40),
            TaskSpec("Iso", lambda: IterativeApp(AmdahlModel(serial=2.0, parallel=360.0)),
                     nprocs=iso_procs),
        ],
        [DependencySpec("Iso", "Sim", CouplingType.TIGHT)],
    )


def run_point(workflow: WorkflowSpec, iso_procs: int) -> dict:
    engine = SimEngine()
    machine = summit(4)
    allocation = Allocation("a0", machine, machine.nodes, walltime_limit=1e9)
    launcher = Savanna(engine, workflow, allocation, rng=RngRegistry(iso_procs))
    orch = DyflowOrchestrator(launcher, warmup=40.0, settle=40.0, record_history=True)
    orch.add_sensor(SensorSpec("PACE", "TAUADIOS2", (GroupBySpec("task", "MAX"),)))
    orch.monitor_task("Iso", "PACE", var="looptime")
    wf_id = workflow.workflow_id
    orch.add_policy(PolicySpec("INC", "PACE", "GT", INC_THRESHOLD, ActionType.ADDCPU,
                               history_window=4, history_op="AVG", frequency=5.0))
    orch.add_policy(PolicySpec("DEC", "PACE", "LT", DEC_THRESHOLD, ActionType.RMCPU,
                               history_window=4, history_op="AVG", frequency=5.0))
    for pid in ("INC", "DEC"):
        orch.apply_policy(PolicyApplication(pid, wf_id, ("Iso",), assess_task="Iso",
                                            action_params={"adjust-by": 12}))
    launcher.launch_workflow()
    orch.start(stop_when=launcher.all_idle)
    engine.run(until=50_000)
    final = launcher.record("Iso").current
    tail = [u.value for u in orch.server.history if u.task == "Iso"][-5:]
    return {
        "initial": iso_procs,
        "final": final.nprocs,
        "adjustments": len(orch.plans),
        "makespan": engine.now,
        "final_pace": sum(tail) / len(tail) if tail else float("nan"),
    }


def main() -> None:
    campaign = Campaign(
        "provisioning-sweep",
        build_workflow,
        sweeps=[Sweep("iso_procs", [12, 24, 36, 60, 96])],
    )
    print(f"campaign {campaign.name}: {campaign.size()} runs")
    print(f"{'run':<22} {'initial':>8} {'final':>6} {'plans':>6} {'pace(s)':>8}  band [{DEC_THRESHOLD},{INC_THRESHOLD}]")
    for run_id, params, workflow in campaign.runs():
        out = run_point(workflow, params["iso_procs"])
        in_band = DEC_THRESHOLD - 1 <= out["final_pace"] <= INC_THRESHOLD + 1
        print(f"{run_id:<22} {out['initial']:>8} {out['final']:>6} "
              f"{out['adjustments']:>6} {out['final_pace']:>8.1f}  "
              f"{'converged' if in_band else 'out of band'}")


if __name__ == "__main__":
    main()
